//! Fuzzing + generation throughput harness.
//!
//! Measures, and writes to `BENCH_fuzzing.json` (see EXPERIMENTS.md):
//!
//! * execs/sec of the dm-driver campaign, sequentially and under
//!   [`ShardedCampaign`] at 1, 2, 4 and 8 worker threads over the
//!   default 8-shard decomposition, verifying that the thread count
//!   does not change `coverage`/`crashes` (merge invariance);
//! * the cross-shard seed-hub ablation: the same sharded workload
//!   with exchange on vs off, comparing coverage-per-exec and
//!   verifying exchange-on results are also thread-count invariant;
//! * the deep-chain workload (`workloads.deep_chain`): the
//!   four-driver suite whose coverage sits behind 3-4-call producer
//!   chains, re-running the hub ablation where saturation no longer
//!   masks the union lift (exchange-on coverage-per-exec ≥
//!   exchange-off is a hard gate failure) and verifying the campaign
//!   — triage report included — stays thread-count invariant;
//! * crash triage on that workload (`triage`): signatures found, mean
//!   raw→minimized shrink ratio (gate-failed below 2×), minimization
//!   replays/sec, a `reproducible` flag asserting every minimized
//!   reproducer still triggers its signature under lowered dispatch,
//!   and a `thread_invariant` flag over the full triage report;
//! * handlers/sec of parallel [`KernelGpt::generate_all`] over the
//!   flagship corpus at 1, 2, 4 and 8 worker threads, verifying the
//!   reports are bit-identical at every thread count;
//! * cold-vs-warm compiled-spec construction time through
//!   [`SpecCache`] (the warm path is an `Arc` clone);
//! * the lowering ablation: generation-only, end-to-end execution and
//!   mutation throughput of the AST walk vs the lowered-IR hot path,
//!   plus a `bit_identical` flag asserting the lowered path's program
//!   streams and execution outcomes equal the AST walk's (hard gate
//!   failure when false);
//! * campaign durability (`durability`): snapshot size, per-checkpoint
//!   write and restore latency, the wall-clock overhead of per-epoch
//!   checkpointing, a `resume_identical` flag asserting that
//!   interrupt-at-a-boundary + resume — under a seed-derived fault
//!   plan — reproduces the uninterrupted campaign bit for bit, and
//!   the exec fuel watchdog (`fuel_exhausted` starved-run count plus a
//!   `fuel_deterministic` flag; both gated);
//! * the distributed fabric (`fabric`): the deep-chain exchange-on
//!   campaign run through the full coordinator/worker protocol stack
//!   (leases, delta frames, boundary-synchronized merge) over
//!   in-memory channel transports at 1, 2 and 4 workers — a
//!   `worker_invariant` flag asserting the merged result is
//!   bit-identical to the single-process campaign at every worker
//!   count (gated), plus delta bytes shipped per epoch boundary and
//!   the coordinator's merge time;
//! * the multi-tenant service (`tenancy`): three deep-chain tenants
//!   sharing one [`TenantService`] and one worker pool, one of them
//!   declaring an exec quota of half the campaign — a
//!   `tenant_invariant` flag asserting every tenant's merged result
//!   (the budget-cut one included) is bit-identical to its
//!   single-process reference (gated), plus per-tenant exec,
//!   coverage, corpus and grant accounting (exact-compared by the
//!   gate) and the starved tenant's cut boundary;
//! * the flight recorder (`trace`): the deep-chain exchange-on
//!   campaign with per-exec tracing on (the default ring of 32) vs
//!   off, best-of-3 wall clock on both sides → `capture_overhead_pct`
//!   (gated); the retained trace volume as amortized bits per
//!   campaign exec (gated at 16), mean encoded bits per traced exec,
//!   and bits per retired block (the cbp reference point is 0.1–1.2
//!   bits/branch); and a `replay_identical` flag (gated, hard)
//!   asserting that tracing did not change the campaign result, that
//!   every retained trace re-executed bit-identically from its
//!   header, and that every crash signature of the traced run has a
//!   pinned trace replaying to the same signature.
//!
//! The committed `BENCH_baseline.json` is this file's output at the
//! CI smoke workload (`--execs 20000`); `bench_gate` compares a fresh
//! run against it.
//!
//! Usage: `cargo run --release -p kgpt-bench --bin fuzz_bench --
//! [--execs N] [--gen-reps N] [--out PATH]`

use kgpt_core::KernelGpt;
use kgpt_csrc::{deepchain, KernelCorpus};
use kgpt_extractor::find_handlers;
use kgpt_fabric::{
    run_worker, ChannelTransport, Coordinator, CoordinatorOpts, FabricStats, HealthOpts,
    ServiceOpts, TenantQuota, TenantService, TenantSpec, Transport, WorkerOpts,
};
use kgpt_fuzzer::reference::{ast_execute, ast_execute_with, AstGenerator, AstScratch};
use kgpt_fuzzer::{
    cfg_successors, execute_with, minimize_program, reference_run, replay_trace, Campaign,
    CampaignConfig, CampaignResult, CampaignSnapshot, ExecScratch, FaultPlan, Generator, Program,
    ShardedCampaign, TraceStore,
};
use kgpt_llm::{ModelKind, OracleModel};
use kgpt_syzlang::{SpecCache, SpecDb, SpecFile};
use kgpt_vkernel::VKernel;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const THREAD_POINTS: &[usize] = &[1, 2, 4, 8];

struct Point {
    threads: usize,
    secs: f64,
    rate: f64,
}

fn main() {
    let mut execs: u64 = 100_000;
    let mut gen_reps: u32 = 1;
    let mut out = String::from("BENCH_fuzzing.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--execs" => {
                execs = args.next().and_then(|v| v.parse().ok()).expect("--execs N");
            }
            "--gen-reps" => {
                gen_reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--gen-reps N");
            }
            "--out" => out = args.next().expect("--out PATH"),
            other => panic!("unknown argument {other}"),
        }
    }

    let kc = KernelCorpus::from_blueprints(vec![kgpt_csrc::flagship::dm()]);
    let suite = vec![kc.blueprints()[0].ground_truth_spec()];
    let kernel = VKernel::boot(vec![kgpt_csrc::flagship::dm()]);
    let cfg = CampaignConfig {
        execs,
        seed: 1,
        ..CampaignConfig::default()
    };

    // Warm up caches / page tables off the record.
    let warm = CampaignConfig {
        execs: (execs / 20).max(500),
        ..cfg.clone()
    };
    let _ = Campaign::new(&kernel, &suite, kc.consts(), warm).run();

    // Sequential baseline (the pre-sharding code path).
    let t0 = Instant::now();
    let seq = Campaign::new(&kernel, &suite, kc.consts(), cfg.clone()).run();
    let seq_secs = t0.elapsed().as_secs_f64();
    let seq_rate = execs as f64 / seq_secs;
    println!(
        "sequential       : {execs} execs in {seq_secs:.3}s = {seq_rate:>10.0} execs/sec ({} blocks, {} crashes)",
        seq.blocks(),
        seq.unique_crashes()
    );

    let mut points: Vec<Point> = Vec::new();
    let mut reference: Option<CampaignResult> = None;
    let mut merge_invariant = true;
    for &threads in THREAD_POINTS {
        let t0 = Instant::now();
        let r = ShardedCampaign::new(&kernel, &suite, kc.consts(), cfg.clone())
            .with_shards(8)
            .with_threads(threads)
            .run();
        let secs = t0.elapsed().as_secs_f64();
        let rate = execs as f64 / secs;
        println!(
            "sharded x{threads:<7} : {execs} execs in {secs:.3}s = {rate:>10.0} execs/sec ({} blocks, {} crashes)",
            r.blocks(),
            r.unique_crashes()
        );
        if let Some(reference) = &reference {
            if reference.coverage != r.coverage || reference.crashes != r.crashes {
                merge_invariant = false;
                eprintln!("MERGE INVARIANCE VIOLATED at threads={threads}");
            }
        } else {
            reference = Some(r.clone());
        }
        points.push(Point {
            threads,
            secs,
            rate,
        });
    }
    let reference = reference.expect("at least one point");
    assert!(merge_invariant, "thread count changed campaign results");

    let speedup = points.last().expect("points").rate / points[0].rate;
    println!(
        "scaling 1->8 threads: {speedup:.2}x on {} available cores; merge invariant: {merge_invariant}",
        std::thread::available_parallelism().map_or(0, usize::from)
    );

    // ---- Seed-hub ablation: exchange on vs off, same workload ----
    // The exchange-off numbers are the sharded reference above (the
    // hub is off in `cfg`); exchange-on is measured at two thread
    // counts to assert the hub keeps the thread-invariance contract.
    const HUB_EPOCH: u64 = 128;
    const HUB_TOP_K: usize = 4;
    let hub_cfg = CampaignConfig {
        hub_epoch: HUB_EPOCH,
        hub_top_k: HUB_TOP_K,
        ..cfg.clone()
    };
    let t0 = Instant::now();
    let hub_on = ShardedCampaign::new(&kernel, &suite, kc.consts(), hub_cfg.clone())
        .with_shards(8)
        .with_threads(1)
        .run();
    let hub_secs = t0.elapsed().as_secs_f64();
    let hub_rate = execs as f64 / hub_secs;
    let hub_check = ShardedCampaign::new(&kernel, &suite, kc.consts(), hub_cfg)
        .with_shards(8)
        .with_threads(4)
        .run();
    let hub_invariant =
        hub_on.coverage == hub_check.coverage && hub_on.crashes == hub_check.crashes;
    assert!(
        hub_invariant,
        "thread count changed the exchange-on campaign result"
    );
    let off_cpe = reference.blocks() as f64 / execs as f64;
    let on_cpe = hub_on.blocks() as f64 / execs as f64;
    println!(
        "hub exchange off : {} blocks over {execs} execs = {off_cpe:.6} blocks/exec (corpus {})",
        reference.blocks(),
        reference.corpus_size
    );
    println!(
        "hub exchange on  : {} blocks over {execs} execs = {on_cpe:.6} blocks/exec (corpus {}, epoch {HUB_EPOCH}, top-k {HUB_TOP_K}, thread invariant: {hub_invariant})",
        hub_on.blocks(),
        hub_on.corpus_size
    );
    // The on-vs-off ordering is enforced by `bench_gate` (hard
    // failure), not asserted here: the harness must still write its
    // JSON on a violation so CI reports a gate finding, not a panic.
    if hub_on.blocks() < reference.blocks() {
        eprintln!(
            "HUB YIELD BELOW EXCHANGE-OFF: on {} vs off {} (bench_gate will fail)",
            hub_on.blocks(),
            reference.blocks()
        );
    }
    // Convergence checkpoint at a fifth of the budget: the virtual
    // kernel's coverage surface saturates quickly, so the hub's
    // benefit shows as *earlier* corpus convergence, not as a larger
    // final union. Both sides are deterministic and exact-compared
    // against the baseline by the gate.
    let early_execs = (execs / 5).max(8);
    let early = |hub_epoch: u64| {
        ShardedCampaign::new(
            &kernel,
            &suite,
            kc.consts(),
            CampaignConfig {
                execs: early_execs,
                hub_epoch,
                hub_top_k: HUB_TOP_K,
                ..cfg.clone()
            },
        )
        .with_shards(8)
        .with_threads(1)
        .run()
    };
    let early_off = early(0);
    let early_on = early(HUB_EPOCH);
    println!(
        "hub early ({early_execs} execs): exchange on {} blocks / corpus {} vs off {} blocks / corpus {}",
        early_on.blocks(),
        early_on.corpus_size,
        early_off.blocks(),
        early_off.corpus_size
    );

    // ---- Deep-chain workload: hub ablation + crash triage ----
    // The dm smoke workload saturates its coverage surface, so the
    // hub ablation above can only show convergence speed. The
    // four-driver deep-chain suite keeps most blocks behind valid
    // calls on fds 3-4 producer hops down, where rare seeds matter:
    // the union lift is measurable and gated (on >= off, hard).
    const DC_EPOCH: u64 = 128;
    const DC_TOP_K: usize = 4;
    let dc_kc = KernelCorpus::from_blueprints(deepchain::suite());
    let dc_suite: Vec<SpecFile> = dc_kc
        .blueprints()
        .iter()
        .map(|bp| bp.ground_truth_spec())
        .collect();
    let dc_kernel = VKernel::boot(deepchain::suite());
    let dc_cfg = |hub_epoch: u64| CampaignConfig {
        execs,
        seed: 1,
        max_prog_len: 12,
        hub_epoch,
        hub_top_k: DC_TOP_K,
        ..CampaignConfig::default()
    };
    let dc_run = |hub_epoch: u64, threads: usize| {
        ShardedCampaign::new(&dc_kernel, &dc_suite, dc_kc.consts(), dc_cfg(hub_epoch))
            .with_shards(8)
            .with_threads(threads)
            .run()
    };
    let dc_off = dc_run(0, 1);
    let t0 = Instant::now();
    let dc_on = dc_run(DC_EPOCH, 1);
    let dc_secs = t0.elapsed().as_secs_f64();
    let dc_rate = execs as f64 / dc_secs;
    let dc_check = dc_run(DC_EPOCH, 4);
    // Thread invariance covers the whole campaign result, the triage
    // report (reproducers, minimization, first-seen stamps) included.
    let dc_invariant = dc_on.coverage == dc_check.coverage
        && dc_on.crashes == dc_check.crashes
        && dc_on.triage == dc_check.triage;
    assert!(
        dc_invariant,
        "thread count changed the deep-chain campaign result"
    );
    let dc_off_cpe = dc_off.blocks() as f64 / execs as f64;
    let dc_on_cpe = dc_on.blocks() as f64 / execs as f64;
    println!(
        "deep-chain off   : {} blocks = {dc_off_cpe:.6} blocks/exec (corpus {}, {} crash titles)",
        dc_off.blocks(),
        dc_off.corpus_size,
        dc_off.unique_crashes()
    );
    println!(
        "deep-chain on    : {} blocks = {dc_on_cpe:.6} blocks/exec (corpus {}, epoch {DC_EPOCH}, top-k {DC_TOP_K}, thread invariant: {dc_invariant})",
        dc_on.blocks(),
        dc_on.corpus_size
    );
    if dc_on.blocks() < dc_off.blocks() {
        eprintln!(
            "DEEP-CHAIN HUB YIELD BELOW EXCHANGE-OFF: on {} vs off {} (bench_gate will fail)",
            dc_on.blocks(),
            dc_off.blocks()
        );
    }

    // ---- Crash triage on the deep-chain campaign ----
    // Every minimized reproducer must re-trigger its signature under
    // lowered dispatch; the mean raw→minimized shrink ratio is gated
    // at 2x. Minimization throughput is measured by re-shrinking the
    // captured raw reproducers standalone.
    let (dc_db, dc_lowered) = SpecCache::global().get_or_build_lowered(&dc_suite, dc_kc.consts());
    let _ = dc_db;
    let mut dc_scratch = ExecScratch::from_lowered(std::sync::Arc::clone(&dc_lowered));
    let mut reproducible = true;
    for e in dc_on.triage.entries() {
        execute_with(&dc_kernel, &e.minimized, &mut dc_scratch);
        if dc_scratch.crash().map(|c| c.signature) != Some(e.signature) {
            reproducible = false;
            eprintln!(
                "MINIMIZED REPRODUCER LOST ITS SIGNATURE: {} (bench_gate will fail)",
                e.title
            );
        }
    }
    // One minimization pass over all signatures is only a few hundred
    // replays (~sub-millisecond) — far too small a timing window for a
    // gated rate. Repeat it a fixed number of times so the measurement
    // spans hundreds of milliseconds like the other gated rates; the
    // equality assert runs on every pass (it is free determinism
    // coverage), the rate divides by the total replay count.
    const MIN_TIMING_REPS: u32 = 2000;
    let t0 = Instant::now();
    let mut min_execs = 0u64;
    for _ in 0..MIN_TIMING_REPS {
        for e in dc_on.triage.entries() {
            let (out, repro) = minimize_program(&dc_kernel, &mut dc_scratch, &e.raw, e.signature);
            min_execs += out.execs;
            assert!(repro, "campaign reproducer went stale standalone");
            assert_eq!(
                out.program, e.minimized,
                "standalone minimization diverged from the campaign's"
            );
        }
    }
    let min_rate = min_execs as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    let shrink = dc_on.triage.mean_shrink_ratio();
    let (raw_calls, min_calls) = dc_on.triage.call_totals();
    println!(
        "triage           : {} signatures, shrink {shrink:.2}x ({raw_calls} -> {min_calls} calls), {} replays at {min_rate:.0} execs/sec (reproducible: {reproducible})",
        dc_on.triage.len(),
        dc_on.triage.total_minimize_execs()
    );
    if shrink < 2.0 {
        eprintln!("MEAN SHRINK RATIO BELOW 2x: {shrink:.3} (bench_gate will fail)");
    }

    // ---- Generation throughput (parallel generate_all) ----
    let gen_kc = KernelCorpus::flagship_only();
    let gen_handlers = find_handlers(gen_kc.corpus());
    let model = OracleModel::new(ModelKind::Gpt4, 0);
    // Untimed warm-up so one-time costs (cold global-SpecCache
    // compiles of the merged suite inside validate_merged) are not
    // charged to the first thread point.
    let _ = KernelGpt::new(&model, gen_kc.corpus())
        .with_threads(1)
        .generate_all(&gen_handlers, gen_kc.consts());
    let mut gen_points: Vec<Point> = Vec::new();
    let mut gen_reference = None;
    let mut bit_identical = true;
    for &threads in THREAD_POINTS {
        let engine = KernelGpt::new(&model, gen_kc.corpus()).with_threads(threads);
        let t0 = Instant::now();
        let mut report = engine.generate_all(&gen_handlers, gen_kc.consts());
        for _ in 1..gen_reps {
            report = engine.generate_all(&gen_handlers, gen_kc.consts());
        }
        let secs = t0.elapsed().as_secs_f64() / f64::from(gen_reps.max(1));
        let rate = gen_handlers.len() as f64 / secs;
        println!(
            "generate x{threads:<6} : {} handlers in {secs:.3}s = {rate:>8.1} handlers/sec ({} valid)",
            gen_handlers.len(),
            report.valid_count()
        );
        match &gen_reference {
            Some(reference) => {
                if *reference != report {
                    bit_identical = false;
                    eprintln!("GENERATION REPORT DIVERGED at threads={threads}");
                }
            }
            None => gen_reference = Some(report),
        }
        gen_points.push(Point {
            threads,
            secs,
            rate,
        });
    }
    let gen_reference = gen_reference.expect("at least one generation point");
    assert!(bit_identical, "thread count changed the generation report");

    // ---- Compiled-spec cache: cold build vs warm lookup ----
    const COLD_ITERS: u32 = 50;
    const WARM_ITERS: u32 = 20_000;
    let t0 = Instant::now();
    for _ in 0..COLD_ITERS {
        std::hint::black_box(SpecDb::from_files(suite.clone()));
    }
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3 / f64::from(COLD_ITERS);
    let cache = SpecCache::new();
    let _ = cache.get_or_build(&suite);
    let t0 = Instant::now();
    for _ in 0..WARM_ITERS {
        std::hint::black_box(cache.get_or_build(&suite));
    }
    let warm_ms = t0.elapsed().as_secs_f64() * 1e3 / f64::from(WARM_ITERS);
    let warm_speedup = cold_ms / warm_ms.max(1e-9);
    println!(
        "spec cache       : cold build {cold_ms:.4}ms vs warm lookup {warm_ms:.4}ms = {warm_speedup:.0}x ({} hits, {} misses)",
        cache.hits(),
        cache.misses()
    );
    assert_eq!(cache.misses(), 1, "warm lookups must not recompile");

    // ---- Lowering ablation: AST walk vs lowered-IR hot path ----
    // Bit-identity first: program streams, mutation chains, and
    // execution outcomes must be equal on both paths.
    let (low_db, lowered) = SpecCache::global().get_or_build_lowered(&suite, kc.consts());
    let mut bit = true;
    {
        let mut lg = Generator::from_lowered(std::sync::Arc::clone(&lowered), 1234);
        let mut ag = AstGenerator::new(&low_db, kc.consts(), 1234);
        let mut scratch = ExecScratch::from_lowered(std::sync::Arc::clone(&lowered));
        let mut lp = Program::default();
        let mut ap = Program::default();
        for i in 0..2000u32 {
            let (l, a) = if i % 4 == 0 {
                (lg.gen_program(8), ag.gen_program(8))
            } else {
                (lg.mutate(&lp, 8), ag.mutate(&ap, 8))
            };
            if l != a {
                bit = false;
                eprintln!("LOWERED PROGRAM STREAM DIVERGED at step {i}");
                break;
            }
            if i < 300 {
                let ast = ast_execute(&kernel, &low_db, kc.consts(), &l);
                execute_with(&kernel, &l, &mut scratch);
                if scratch.rets != ast.rets
                    || *scratch.coverage() != ast.coverage
                    || scratch.crash() != ast.crash.as_ref()
                {
                    bit = false;
                    eprintln!("LOWERED EXECUTION DIVERGED at step {i}");
                    break;
                }
            }
            lp = l;
            ap = a;
        }
    }
    let lowering_bit_identical = bit;
    // Gen-only throughput, both paths, same seed and draw sequence.
    let gen_n = execs.max(1);
    let t0 = Instant::now();
    let mut ag = AstGenerator::new(&low_db, kc.consts(), 42);
    for _ in 0..gen_n {
        std::hint::black_box(ag.gen_program(8));
    }
    let gen_ast_rate = gen_n as f64 / t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let mut lg = Generator::from_lowered(std::sync::Arc::clone(&lowered), 42);
    for _ in 0..gen_n {
        std::hint::black_box(lg.gen_program(8));
    }
    let gen_low_rate = gen_n as f64 / t0.elapsed().as_secs_f64();
    // End-to-end exec throughput over a fixed pre-generated ring.
    let ring: Vec<Program> = {
        let mut g = Generator::from_lowered(std::sync::Arc::clone(&lowered), 7);
        (0..512).map(|_| g.gen_program(8)).collect()
    };
    let t0 = Instant::now();
    let mut ast_scratch = AstScratch::new(&low_db, kc.consts());
    for i in 0..execs {
        ast_execute_with(&kernel, &ring[(i % 512) as usize], &mut ast_scratch);
    }
    let exec_ast_rate = execs as f64 / t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let mut low_scratch = ExecScratch::from_lowered(std::sync::Arc::clone(&lowered));
    for i in 0..execs {
        execute_with(&kernel, &ring[(i % 512) as usize], &mut low_scratch);
    }
    let exec_low_rate = execs as f64 / t0.elapsed().as_secs_f64();
    // Mutation throughput (chained, so the deep-clone cost of the AST
    // path and the prefix-clone cost of the lowered path both show).
    let t0 = Instant::now();
    let mut ag = AstGenerator::new(&low_db, kc.consts(), 9);
    let mut p = ring[0].clone();
    for _ in 0..execs {
        p = ag.mutate(&p, 8);
    }
    let mut_ast_rate = execs as f64 / t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let mut lg = Generator::from_lowered(std::sync::Arc::clone(&lowered), 9);
    let mut p = ring[0].clone();
    for _ in 0..execs {
        p = lg.mutate(&p, 8);
    }
    std::hint::black_box(p.len());
    let mut_low_rate = execs as f64 / t0.elapsed().as_secs_f64();
    println!(
        "lowering gen     : ast {gen_ast_rate:>10.0} vs lowered {gen_low_rate:>10.0} progs/sec ({:.2}x)",
        gen_low_rate / gen_ast_rate
    );
    println!(
        "lowering exec    : ast {exec_ast_rate:>10.0} vs lowered {exec_low_rate:>10.0} execs/sec ({:.2}x)",
        exec_low_rate / exec_ast_rate
    );
    println!(
        "lowering mutate  : ast {mut_ast_rate:>10.0} vs lowered {mut_low_rate:>10.0} mutations/sec ({:.2}x, bit identical: {lowering_bit_identical})",
        mut_low_rate / mut_ast_rate
    );
    // The gate hard-fails on a false flag; still write the JSON so CI
    // reports a gate finding rather than a harness panic.
    if !lowering_bit_identical {
        eprintln!("LOWERED PATH NOT BIT-IDENTICAL (bench_gate will fail)");
    }

    // ---- Durability: checkpoint/resume + exec fuel watchdog ----
    // Overhead is plain vs per-epoch-checkpointed wall clock over the
    // deep-chain exchange-on campaign, measured back to back so runner
    // noise hits both sides alike. Resume identity is checked under a
    // seed-derived fault plan (write retries, torn writes, bitrot and
    // a shard abort stacked on the first boundary; later boundaries
    // stay clean so recovery always has an intact generation).
    let same_result = |a: &CampaignResult, b: &CampaignResult| {
        a.coverage == b.coverage
            && a.crashes == b.crashes
            && a.corpus_size == b.corpus_size
            && a.triage == b.triage
            && a.fuel_exhausted == b.fuel_exhausted
            && a.execs == b.execs
    };
    let ckpt_path = std::env::temp_dir().join(format!("kgpt-bench-{}.ckpt", std::process::id()));
    // Best-of-3 on both sides: one epoch of virtual-kernel compute is
    // only a few ms, so a single scheduler hiccup would swamp the
    // ratio. The minimum is the least-noisy estimate of true cost.
    const OVERHEAD_ROUNDS: u32 = 3;
    let mut plain_secs = f64::INFINITY;
    let mut ckpt_secs = f64::INFINITY;
    let mut plain = None;
    let mut ckpt_full = None;
    for _ in 0..OVERHEAD_ROUNDS {
        let t0 = Instant::now();
        plain = Some(dc_run(DC_EPOCH, 1));
        plain_secs = plain_secs.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        ckpt_full = Some(
            ShardedCampaign::new(&dc_kernel, &dc_suite, dc_kc.consts(), dc_cfg(DC_EPOCH))
                .with_shards(8)
                .with_threads(1)
                .with_checkpoint(&ckpt_path)
                .run(),
        );
        ckpt_secs = ckpt_secs.min(t0.elapsed().as_secs_f64());
    }
    let (plain, ckpt_full) = (plain.expect("rounds > 0"), ckpt_full.expect("rounds > 0"));
    let overhead_pct = ((ckpt_secs / plain_secs.max(1e-9) - 1.0) * 100.0).max(0.0);
    let ckpt_bytes = std::fs::metadata(&ckpt_path).map_or(0, |m| m.len());
    // Per-checkpoint write/restore latency, timed standalone over the
    // final (largest) snapshot so the window spans milliseconds.
    const CKPT_IO_REPS: u32 = 100;
    let snap = CampaignSnapshot::load(&ckpt_path).expect("load final checkpoint");
    let io_path = ckpt_path.with_extension("io");
    let t0 = Instant::now();
    for _ in 0..CKPT_IO_REPS {
        snap.save(&io_path).expect("save checkpoint");
    }
    let write_ms = t0.elapsed().as_secs_f64() * 1e3 / f64::from(CKPT_IO_REPS);
    let t0 = Instant::now();
    for _ in 0..CKPT_IO_REPS {
        std::hint::black_box(CampaignSnapshot::load(&io_path).expect("reload checkpoint"));
    }
    let restore_ms = t0.elapsed().as_secs_f64() * 1e3 / f64::from(CKPT_IO_REPS);
    // Interrupt after the second surviving checkpoint under the fault
    // plan, resume from disk, and demand the uninterrupted result.
    let faulted = ShardedCampaign::new(&dc_kernel, &dc_suite, dc_kc.consts(), dc_cfg(DC_EPOCH))
        .with_shards(8)
        .with_threads(1)
        .with_checkpoint(&ckpt_path)
        .with_faults(FaultPlan::from_seed(0xC0FFEE, 1, 8))
        .with_halt_after(2)
        .run();
    let _ = faulted;
    let resumed = ShardedCampaign::new(&dc_kernel, &dc_suite, dc_kc.consts(), dc_cfg(DC_EPOCH))
        .with_shards(8)
        .with_threads(1)
        .resume(&ckpt_path)
        .expect("resume from checkpoint");
    let resume_identical = same_result(&dc_on, &plain)
        && same_result(&dc_on, &ckpt_full)
        && same_result(&dc_on, &resumed);
    let _ = std::fs::remove_file(&ckpt_path);
    let _ = std::fs::remove_file(ckpt_path.with_extension("ckpt.prev"));
    let _ = std::fs::remove_file(&io_path);
    let _ = std::fs::remove_file(io_path.with_extension("io.prev"));
    println!(
        "durability       : snapshot {ckpt_bytes} bytes, write {write_ms:.3}ms, restore {restore_ms:.3}ms, checkpoint overhead {overhead_pct:.1}% (resume identical: {resume_identical})"
    );
    if !resume_identical {
        eprintln!("INTERRUPT+RESUME DIVERGED FROM THE UNINTERRUPTED RUN (bench_gate will fail)");
    }
    // Fuel watchdog: a starved budget must terminate programs
    // gracefully and count exhaustions as a pure function of the
    // config — identical across runs and thread counts.
    const FUEL_BUDGET: u64 = 64;
    let starved_cfg = CampaignConfig {
        exec_fuel: FUEL_BUDGET,
        ..dc_cfg(DC_EPOCH)
    };
    let starved_run = |threads: usize| {
        ShardedCampaign::new(&dc_kernel, &dc_suite, dc_kc.consts(), starved_cfg.clone())
            .with_shards(8)
            .with_threads(threads)
            .run()
    };
    let starved = starved_run(1);
    let starved_again = starved_run(4);
    let fuel_exhausted = starved.fuel_exhausted;
    let fuel_deterministic = fuel_exhausted > 0 && same_result(&starved, &starved_again);
    println!(
        "fuel watchdog    : {fuel_exhausted} exhaustions at a {FUEL_BUDGET}-unit budget (deterministic: {fuel_deterministic})"
    );
    if !fuel_deterministic {
        eprintln!("FUEL EXHAUSTION NONDETERMINISTIC OR NEVER TRIPPED (bench_gate will fail)");
    }

    // ---- Distributed fabric: the same campaign across workers ----
    // The deep-chain exchange-on campaign again, but through the full
    // fabric protocol stack: a coordinator handing out shard-range
    // leases and merging per-epoch worker deltas over in-memory
    // channel transports. The merged result must be bit-identical to
    // the single-process `dc_on` at every worker count (gated), and
    // the wire cost — delta bytes shipped per epoch boundary, time
    // inside the merge — is recorded.
    let fabric_fp = SpecCache::fingerprint(&dc_suite);
    let fabric_run = |workers: u32, force_full: bool| {
        std::thread::scope(|scope| {
            let coordinator = Coordinator::new(
                dc_cfg(DC_EPOCH),
                CoordinatorOpts {
                    shards: 8,
                    workers,
                    lease_timeout: Duration::from_secs(60),
                    spec_fp: fabric_fp,
                },
            );
            let dc_kernel = &dc_kernel;
            let dc_lowered = &dc_lowered;
            let mut accept = || -> Option<Box<dyn Transport>> {
                let (coord_end, worker_end) = ChannelTransport::pair();
                let lowered = std::sync::Arc::clone(dc_lowered);
                scope.spawn(move || {
                    let opts = WorkerOpts {
                        force_full_deltas: force_full,
                        ..WorkerOpts::default()
                    };
                    run_worker(Box::new(worker_end), opts, |fp| {
                        (fp == fabric_fp).then_some((dc_kernel, lowered))
                    })
                    .expect("fabric worker");
                });
                Some(Box::new(coord_end))
            };
            coordinator.run(&mut accept).expect("fabric coordinator")
        })
    };
    struct FabricPoint {
        workers: u32,
        secs: f64,
        stats: FabricStats,
    }
    let mut fabric_points: Vec<FabricPoint> = Vec::new();
    let mut fabric_invariant = true;
    for workers in [1u32, 2, 4] {
        let t0 = Instant::now();
        let (result, stats) = fabric_run(workers, false);
        let secs = t0.elapsed().as_secs_f64();
        if !same_result(&dc_on, &result) {
            fabric_invariant = false;
            eprintln!(
                "FABRIC RESULT DIVERGED FROM THE SINGLE-PROCESS CAMPAIGN AT {workers} WORKERS \
                 (bench_gate will fail)"
            );
        }
        fabric_points.push(FabricPoint {
            workers,
            secs,
            stats,
        });
    }
    // The forced-full run measures what every boundary cost before
    // true delta frames: the same campaign, every delta a complete
    // snapshot frame. Its result must be identical too (same merge,
    // fatter wire).
    let (full_result, full_stats) = fabric_run(1, true);
    if !same_result(&dc_on, &full_result) {
        fabric_invariant = false;
        eprintln!(
            "FABRIC FORCED-FULL RESULT DIVERGED FROM THE SINGLE-PROCESS CAMPAIGN \
             (bench_gate will fail)"
        );
    }
    // The single-worker run is the canonical wire-cost measurement:
    // more workers split the same per-shard deltas over more frames,
    // changing only the per-frame header overhead.
    let fabric_ref = &fabric_points[0].stats;
    let fabric_boundaries = fabric_ref.boundaries;
    let fabric_delta_per_epoch = fabric_ref.delta_bytes / fabric_ref.boundaries.max(1);
    let fabric_full_per_epoch = full_stats.delta_bytes / full_stats.boundaries.max(1);
    let fabric_shrink = fabric_full_per_epoch as f64 / fabric_delta_per_epoch.max(1) as f64;
    let fabric_merge_ms = fabric_ref.merge_nanos as f64 / 1e6;
    let fabric_expired: u64 = fabric_points
        .iter()
        .map(|p| p.stats.expired_leases)
        .chain(std::iter::once(full_stats.expired_leases))
        .sum();
    if fabric_expired > 0 {
        eprintln!("FABRIC LEASES EXPIRED IN A CLEAN RUN (bench_gate will fail)");
    }
    println!(
        "fabric           : {fabric_boundaries} boundaries, {fabric_delta_per_epoch} delta bytes/epoch (full: {fabric_full_per_epoch}, shrink {fabric_shrink:.1}x), merge {fabric_merge_ms:.3}ms, worker invariant: {fabric_invariant}"
    );
    for p in &fabric_points {
        println!(
            "fabric x{:<8} : {:.3}s wall, {} delta bytes, merge {:.3}ms ({} redelivered, {} rejected)",
            p.workers,
            p.secs,
            p.stats.delta_bytes,
            p.stats.merge_nanos as f64 / 1e6,
            p.stats.redelivered_frames,
            p.stats.rejected_frames,
        );
    }

    // ---- Multi-tenant service: budgets, fairness, accounting ----
    // Three deep-chain tenants (seeds 1..3) share one `TenantService`
    // and one worker pool at two slots each; tenant 1 declares an
    // exec quota of half the campaign and must be cut gracefully at a
    // boundary, bit-identical to an unlimited run halted there. The
    // per-tenant accounting is exact-compared by the gate.
    let tenancy_quota = execs / 2;
    let tenancy_cfgs: Vec<CampaignConfig> = (1..=3u64)
        .map(|seed| CampaignConfig {
            seed,
            ..dc_cfg(DC_EPOCH)
        })
        .collect();
    let tenancy_refs: Vec<_> = tenancy_cfgs
        .iter()
        .enumerate()
        .map(|(i, config)| {
            let quota = (i == 1).then_some(tenancy_quota);
            reference_run(&dc_kernel, &dc_lowered, config, 8, quota)
        })
        .collect();
    let tenancy_t0 = Instant::now();
    let (tenant_results, tenancy_stats) = std::thread::scope(|scope| {
        let mut service = TenantService::new(ServiceOpts {
            lease_timeout: Duration::from_secs(60),
            health: HealthOpts::default(),
        });
        for (i, config) in tenancy_cfgs.iter().enumerate() {
            service.admit(TenantSpec {
                name: format!("tenant-{i}"),
                config: config.clone(),
                shards: 8,
                workers: 2,
                spec_fp: fabric_fp,
                quota: if i == 1 {
                    TenantQuota::execs(tenancy_quota)
                } else {
                    TenantQuota::unlimited()
                },
            });
        }
        let dc_kernel = &dc_kernel;
        let dc_lowered = &dc_lowered;
        let mut accept = || -> Option<Box<dyn Transport>> {
            let (service_end, worker_end) = ChannelTransport::pair();
            let lowered = std::sync::Arc::clone(dc_lowered);
            scope.spawn(move || {
                run_worker(Box::new(worker_end), WorkerOpts::default(), |fp| {
                    (fp == fabric_fp).then_some((dc_kernel, lowered))
                })
                .expect("tenant worker");
            });
            Some(Box::new(service_end))
        };
        service.run(&mut accept).expect("tenant service")
    });
    let tenancy_secs = tenancy_t0.elapsed().as_secs_f64();
    let mut tenancy_invariant = true;
    for (i, (reference, tenant)) in tenancy_refs.iter().zip(&tenant_results).enumerate() {
        if !same_result(&reference.result, &tenant.result)
            || tenant.boundaries != reference.boundaries
            || tenant.budget_exhausted != reference.budget_exhausted
        {
            tenancy_invariant = false;
            eprintln!(
                "TENANT {i} DIVERGED FROM ITS SINGLE-PROCESS REFERENCE (bench_gate will fail)"
            );
        }
    }
    if !tenant_results[1].budget_exhausted {
        tenancy_invariant = false;
        eprintln!("STARVED TENANT WAS NOT BUDGET-TERMINATED (bench_gate will fail)");
    }
    let starved = &tenant_results[1];
    println!(
        "tenancy          : 3 tenants over one pool, invariant: {tenancy_invariant}, starved \
         tenant cut at boundary {} ({} of {} exec quota), grants {:?}",
        starved.boundaries, starved.usage.execs, tenancy_quota, tenancy_stats.grants_per_tenant,
    );

    // ---- Flight recorder: capture overhead + time-travel replay ----
    // The deep-chain exchange-on campaign with the default per-shard
    // trace ring vs a `trace_ring: 0` ablation, best-of-3 wall clock
    // back to back so runner noise hits both sides alike. Tracing
    // must not change the result; every retained trace must replay
    // bit-identically from its header; and every crash signature the
    // traced campaign found must have a pinned trace replaying to the
    // same signature.
    let trace_ring = CampaignConfig::default().trace_ring;
    let untraced_cfg = CampaignConfig {
        trace_ring: 0,
        ..dc_cfg(DC_EPOCH)
    };
    let mut traced_secs = f64::INFINITY;
    let mut untraced_secs = f64::INFINITY;
    let mut traced: Option<(CampaignResult, Vec<TraceStore>)> = None;
    let mut untraced: Option<CampaignResult> = None;
    for _ in 0..OVERHEAD_ROUNDS {
        let t0 = Instant::now();
        untraced = Some(
            ShardedCampaign::new(&dc_kernel, &dc_suite, dc_kc.consts(), untraced_cfg.clone())
                .with_shards(8)
                .with_threads(1)
                .run(),
        );
        untraced_secs = untraced_secs.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        traced = Some(
            ShardedCampaign::new(&dc_kernel, &dc_suite, dc_kc.consts(), dc_cfg(DC_EPOCH))
                .with_shards(8)
                .with_threads(1)
                .run_traced(),
        );
        traced_secs = traced_secs.min(t0.elapsed().as_secs_f64());
    }
    let (traced_result, trace_stores) = traced.expect("rounds > 0");
    let untraced_result = untraced.expect("rounds > 0");
    let capture_overhead_pct = ((traced_secs / untraced_secs.max(1e-9) - 1.0) * 100.0).max(0.0);
    let mut replay_identical = true;
    if !same_result(&traced_result, &untraced_result) {
        replay_identical = false;
        eprintln!("TRACING CHANGED THE CAMPAIGN RESULT (bench_gate will fail)");
    }
    let trace_tables = cfg_successors(&dc_kernel);
    let mut traces_replayed = 0u64;
    let mut replay_blocks = 0u64;
    let mut trace_retained = 0u64;
    let mut trace_pinned = 0u64;
    let mut trace_stream_bytes = 0u64;
    let mut trace_stream_bits = 0u64;
    let replay_t0 = Instant::now();
    for store in &trace_stores {
        trace_retained += store.retained() as u64;
        trace_pinned += store.pinned_len() as u64;
        trace_stream_bytes += store.stream_bytes();
        trace_stream_bits += store.stream_bits();
        for trace in store.iter() {
            match replay_trace(&dc_kernel, &mut dc_scratch, &trace_tables, trace, fabric_fp) {
                Ok(o) if o.identical => {
                    traces_replayed += 1;
                    replay_blocks += o.blocks;
                }
                Ok(_) => {
                    replay_identical = false;
                    eprintln!(
                        "TRACE REPLAY DIVERGED: shard {} exec {} (bench_gate will fail)",
                        trace.shard, trace.exec
                    );
                }
                Err(e) => {
                    replay_identical = false;
                    eprintln!(
                        "TRACE REPLAY FAILED: shard {} exec {}: {e} (bench_gate will fail)",
                        trace.shard, trace.exec
                    );
                }
            }
        }
    }
    let replay_secs = replay_t0.elapsed().as_secs_f64();
    let trace_crash_sigs = traced_result.triage.len() as u64;
    for e in traced_result.triage.entries() {
        let pinned = trace_stores.iter().find_map(|s| s.pinned_for(&e.signature));
        let Some(trace) = pinned else {
            replay_identical = false;
            eprintln!(
                "CRASH SIGNATURE WITHOUT A PINNED TRACE: {} (bench_gate will fail)",
                e.title
            );
            continue;
        };
        let replays_to_sig =
            replay_trace(&dc_kernel, &mut dc_scratch, &trace_tables, trace, fabric_fp)
                .is_ok_and(|o| o.identical && o.live_crash == Some(e.signature));
        if !replays_to_sig {
            replay_identical = false;
            eprintln!(
                "PINNED TRACE DID NOT REPLAY TO ITS SIGNATURE: {} (bench_gate will fail)",
                e.title
            );
        }
    }
    let trace_bits_per_exec = trace_stream_bytes as f64 * 8.0 / execs as f64;
    let trace_bits_per_traced = trace_stream_bits as f64 / trace_retained.max(1) as f64;
    let trace_bits_per_block = trace_stream_bits as f64 / replay_blocks.max(1) as f64;
    println!(
        "trace            : {trace_retained} retained ({trace_pinned} pinned), {trace_stream_bytes} stream bytes = {trace_bits_per_exec:.3} bits/exec amortized ({trace_bits_per_traced:.1} bits/traced exec, {trace_bits_per_block:.3} bits/block), capture overhead {capture_overhead_pct:.1}%, replay identical: {replay_identical}"
    );
    println!(
        "trace replay     : {traces_replayed} traces ({replay_blocks} blocks) in {replay_secs:.3}s"
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"fuzzing\",");
    let _ = writeln!(json, "  \"workload\": \"dm ground-truth suite\",");
    let _ = writeln!(json, "  \"execs\": {execs},");
    let _ = writeln!(json, "  \"shards\": 8,");
    let _ = writeln!(
        json,
        "  \"available_cores\": {},",
        std::thread::available_parallelism().map_or(0, usize::from)
    );
    let _ = writeln!(
        json,
        "  \"sequential\": {{ \"secs\": {seq_secs:.6}, \"execs_per_sec\": {seq_rate:.1} }},"
    );
    let _ = writeln!(json, "  \"sharded\": [");
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{ \"threads\": {}, \"secs\": {:.6}, \"execs_per_sec\": {:.1} }}{}",
            p.threads,
            p.secs,
            p.rate,
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedup_1_to_8_threads\": {speedup:.3},");
    let _ = writeln!(json, "  \"merge_invariant\": {merge_invariant},");
    let _ = writeln!(json, "  \"blocks\": {},", reference.blocks());
    let _ = writeln!(
        json,
        "  \"unique_crashes\": {},",
        reference.unique_crashes()
    );
    let _ = writeln!(json, "  \"hub\": {{");
    let _ = writeln!(json, "    \"epoch\": {HUB_EPOCH},");
    let _ = writeln!(json, "    \"top_k\": {HUB_TOP_K},");
    let _ = writeln!(json, "    \"thread_invariant\": {hub_invariant},");
    let _ = writeln!(
        json,
        "    \"off\": {{ \"blocks\": {}, \"unique_crashes\": {}, \"corpus_size\": {}, \"coverage_per_exec\": {off_cpe:.8} }},",
        reference.blocks(),
        reference.unique_crashes(),
        reference.corpus_size
    );
    let _ = writeln!(
        json,
        "    \"on\": {{ \"blocks\": {}, \"unique_crashes\": {}, \"corpus_size\": {}, \"coverage_per_exec\": {on_cpe:.8}, \"secs\": {hub_secs:.6}, \"execs_per_sec\": {hub_rate:.1} }},",
        hub_on.blocks(),
        hub_on.unique_crashes(),
        hub_on.corpus_size
    );
    let _ = writeln!(
        json,
        "    \"early\": {{ \"execs\": {early_execs}, \"off_blocks\": {}, \"off_corpus_size\": {}, \"on_blocks\": {}, \"on_corpus_size\": {} }}",
        early_off.blocks(),
        early_off.corpus_size,
        early_on.blocks(),
        early_on.corpus_size
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"workloads\": {{");
    let _ = writeln!(json, "    \"deep_chain\": {{");
    let _ = writeln!(
        json,
        "      \"suite\": \"deep-chain ground-truth (4 drivers)\","
    );
    let _ = writeln!(json, "      \"execs\": {execs},");
    let _ = writeln!(json, "      \"shards\": 8,");
    let _ = writeln!(json, "      \"max_prog_len\": 12,");
    let _ = writeln!(json, "      \"epoch\": {DC_EPOCH},");
    let _ = writeln!(json, "      \"top_k\": {DC_TOP_K},");
    let _ = writeln!(json, "      \"thread_invariant\": {dc_invariant},");
    let _ = writeln!(
        json,
        "      \"off\": {{ \"blocks\": {}, \"unique_crashes\": {}, \"corpus_size\": {}, \"coverage_per_exec\": {dc_off_cpe:.8} }},",
        dc_off.blocks(),
        dc_off.unique_crashes(),
        dc_off.corpus_size
    );
    let _ = writeln!(
        json,
        "      \"on\": {{ \"blocks\": {}, \"unique_crashes\": {}, \"corpus_size\": {}, \"coverage_per_exec\": {dc_on_cpe:.8}, \"secs\": {dc_secs:.6}, \"execs_per_sec\": {dc_rate:.1} }}",
        dc_on.blocks(),
        dc_on.unique_crashes(),
        dc_on.corpus_size
    );
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"triage\": {{");
    let _ = writeln!(
        json,
        "    \"workload\": \"deep-chain exchange-on campaign\","
    );
    let _ = writeln!(json, "    \"signatures\": {},", dc_on.triage.len());
    let _ = writeln!(json, "    \"thread_invariant\": {dc_invariant},");
    let _ = writeln!(json, "    \"reproducible\": {reproducible},");
    let _ = writeln!(json, "    \"mean_shrink_ratio\": {shrink:.4},");
    let _ = writeln!(json, "    \"raw_calls\": {raw_calls},");
    let _ = writeln!(json, "    \"minimized_calls\": {min_calls},");
    let _ = writeln!(
        json,
        "    \"minimize_execs\": {},",
        dc_on.triage.total_minimize_execs()
    );
    let _ = writeln!(json, "    \"minimize_execs_per_sec\": {min_rate:.1}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"generation\": {{");
    let _ = writeln!(
        json,
        "    \"workload\": \"flagship corpus, oracle gpt-4, seed 0\","
    );
    let _ = writeln!(json, "    \"handlers\": {},", gen_handlers.len());
    let _ = writeln!(
        json,
        "    \"valid_count\": {},",
        gen_reference.valid_count()
    );
    let _ = writeln!(json, "    \"bit_identical\": {bit_identical},");
    let _ = writeln!(json, "    \"points\": [");
    for (i, p) in gen_points.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{ \"threads\": {}, \"secs\": {:.6}, \"handlers_per_sec\": {:.2} }}{}",
            p.threads,
            p.secs,
            p.rate,
            if i + 1 < gen_points.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"spec_cache\": {{");
    let _ = writeln!(json, "    \"suite\": \"dm ground-truth\",");
    let _ = writeln!(json, "    \"cold_build_ms\": {cold_ms:.6},");
    let _ = writeln!(json, "    \"warm_lookup_ms\": {warm_ms:.6},");
    let _ = writeln!(json, "    \"warm_speedup\": {warm_speedup:.1}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"lowering\": {{");
    let _ = writeln!(json, "    \"workload\": \"dm ground-truth suite\",");
    let _ = writeln!(json, "    \"bit_identical\": {lowering_bit_identical},");
    let _ = writeln!(
        json,
        "    \"gen\": {{ \"ast_progs_per_sec\": {gen_ast_rate:.1}, \"lowered_progs_per_sec\": {gen_low_rate:.1}, \"speedup\": {:.3} }},",
        gen_low_rate / gen_ast_rate
    );
    let _ = writeln!(
        json,
        "    \"exec\": {{ \"ast_execs_per_sec\": {exec_ast_rate:.1}, \"lowered_execs_per_sec\": {exec_low_rate:.1}, \"speedup\": {:.3} }},",
        exec_low_rate / exec_ast_rate
    );
    let _ = writeln!(
        json,
        "    \"mutation\": {{ \"ast_mutations_per_sec\": {mut_ast_rate:.1}, \"lowered_mutations_per_sec\": {mut_low_rate:.1}, \"speedup\": {:.3} }}",
        mut_low_rate / mut_ast_rate
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"durability\": {{");
    let _ = writeln!(
        json,
        "    \"workload\": \"deep-chain exchange-on campaign\","
    );
    let _ = writeln!(json, "    \"resume_identical\": {resume_identical},");
    let _ = writeln!(json, "    \"checkpoint_bytes\": {ckpt_bytes},");
    let _ = writeln!(json, "    \"write_ms\": {write_ms:.6},");
    let _ = writeln!(json, "    \"restore_ms\": {restore_ms:.6},");
    let _ = writeln!(json, "    \"checkpoint_overhead_pct\": {overhead_pct:.3},");
    let _ = writeln!(json, "    \"fuel_budget\": {FUEL_BUDGET},");
    let _ = writeln!(json, "    \"fuel_exhausted\": {fuel_exhausted},");
    let _ = writeln!(json, "    \"fuel_deterministic\": {fuel_deterministic}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"fabric\": {{");
    let _ = writeln!(
        json,
        "    \"workload\": \"deep-chain exchange-on campaign\","
    );
    let _ = writeln!(json, "    \"execs\": {execs},");
    let _ = writeln!(json, "    \"shards\": 8,");
    let _ = writeln!(json, "    \"epoch\": {DC_EPOCH},");
    let _ = writeln!(json, "    \"worker_invariant\": {fabric_invariant},");
    let _ = writeln!(json, "    \"boundaries\": {fabric_boundaries},");
    let _ = writeln!(
        json,
        "    \"delta_bytes_per_epoch\": {fabric_delta_per_epoch},"
    );
    let _ = writeln!(
        json,
        "    \"delta_full_bytes_per_epoch\": {fabric_full_per_epoch},"
    );
    let _ = writeln!(json, "    \"delta_shrink\": {fabric_shrink:.3},");
    let _ = writeln!(json, "    \"merge_ms\": {fabric_merge_ms:.3},");
    let _ = writeln!(json, "    \"expired_leases\": {fabric_expired},");
    let _ = writeln!(json, "    \"points\": [");
    for (i, p) in fabric_points.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{ \"workers\": {}, \"secs\": {:.6}, \"delta_bytes\": {}, \"merge_ms\": {:.3} }}{}",
            p.workers,
            p.secs,
            p.stats.delta_bytes,
            p.stats.merge_nanos as f64 / 1e6,
            if i + 1 < fabric_points.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"tenancy\": {{");
    let _ = writeln!(
        json,
        "    \"workload\": \"deep-chain exchange-on campaign, three tenants\","
    );
    let _ = writeln!(json, "    \"execs\": {execs},");
    let _ = writeln!(json, "    \"shards\": 8,");
    let _ = writeln!(json, "    \"workers_per_tenant\": 2,");
    let _ = writeln!(json, "    \"tenant_invariant\": {tenancy_invariant},");
    let _ = writeln!(json, "    \"starved_quota\": {tenancy_quota},");
    let _ = writeln!(json, "    \"starved_execs\": {},", starved.usage.execs);
    let _ = writeln!(json, "    \"starved_boundaries\": {},", starved.boundaries);
    let _ = writeln!(
        json,
        "    \"budget_exhausted\": {},",
        starved.budget_exhausted
    );
    let _ = writeln!(json, "    \"grants\": {},", tenancy_stats.grants);
    let _ = writeln!(json, "    \"secs\": {tenancy_secs:.6},");
    for (i, tenant) in tenant_results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"tenant_{i}\": {{ \"execs\": {}, \"blocks\": {}, \"unique_crashes\": {}, \"corpus\": {}, \"boundaries\": {}, \"grants\": {} }}{}",
            tenant.result.execs,
            tenant.result.blocks(),
            tenant.result.unique_crashes(),
            tenant.result.corpus_size,
            tenant.boundaries,
            tenancy_stats.grants_per_tenant[i],
            if i + 1 < tenant_results.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"trace\": {{");
    let _ = writeln!(
        json,
        "    \"workload\": \"deep-chain exchange-on campaign\","
    );
    let _ = writeln!(json, "    \"execs\": {execs},");
    let _ = writeln!(json, "    \"shards\": 8,");
    let _ = writeln!(json, "    \"ring\": {trace_ring},");
    let _ = writeln!(json, "    \"retained\": {trace_retained},");
    let _ = writeln!(json, "    \"pinned\": {trace_pinned},");
    let _ = writeln!(json, "    \"stream_bytes\": {trace_stream_bytes},");
    let _ = writeln!(json, "    \"bits_per_exec\": {trace_bits_per_exec:.4},");
    let _ = writeln!(
        json,
        "    \"stream_bits_per_exec\": {trace_bits_per_traced:.4},"
    );
    let _ = writeln!(json, "    \"bits_per_block\": {trace_bits_per_block:.4},");
    let _ = writeln!(
        json,
        "    \"capture_overhead_pct\": {capture_overhead_pct:.3},"
    );
    let _ = writeln!(json, "    \"replay_identical\": {replay_identical},");
    let _ = writeln!(json, "    \"crash_sigs\": {trace_crash_sigs},");
    let _ = writeln!(json, "    \"traces_replayed\": {traces_replayed},");
    let _ = writeln!(json, "    \"replay_secs\": {replay_secs:.6}");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    std::fs::write(&out, json).expect("write bench json");
    println!("wrote {out}");
}
