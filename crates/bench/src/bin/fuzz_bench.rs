//! Fuzzing-throughput harness.
//!
//! Measures execs/sec of the dm-driver campaign, sequentially and
//! under [`ShardedCampaign`] at 1, 2, 4 and 8 worker threads over the
//! default 8-shard decomposition, verifies that the thread count does
//! not change `coverage`/`crashes` (the merge-invariance contract),
//! and writes the scaling curve to `BENCH_fuzzing.json` so future
//! changes have a recorded perf trajectory (see EXPERIMENTS.md).
//!
//! Usage: `cargo run --release -p kgpt-bench --bin fuzz_bench --
//! [--execs N] [--out PATH]`

use kgpt_csrc::KernelCorpus;
use kgpt_fuzzer::{Campaign, CampaignConfig, CampaignResult, ShardedCampaign};
use kgpt_vkernel::VKernel;
use std::fmt::Write as _;
use std::time::Instant;

const THREAD_POINTS: &[usize] = &[1, 2, 4, 8];

struct Point {
    threads: usize,
    secs: f64,
    execs_per_sec: f64,
}

fn main() {
    let mut execs: u64 = 100_000;
    let mut out = String::from("BENCH_fuzzing.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--execs" => {
                execs = args.next().and_then(|v| v.parse().ok()).expect("--execs N");
            }
            "--out" => out = args.next().expect("--out PATH"),
            other => panic!("unknown argument {other}"),
        }
    }

    let kc = KernelCorpus::from_blueprints(vec![kgpt_csrc::flagship::dm()]);
    let suite = vec![kc.blueprints()[0].ground_truth_spec()];
    let kernel = VKernel::boot(vec![kgpt_csrc::flagship::dm()]);
    let cfg = CampaignConfig {
        execs,
        seed: 1,
        ..CampaignConfig::default()
    };

    // Warm up caches / page tables off the record.
    let warm = CampaignConfig {
        execs: (execs / 20).max(500),
        ..cfg.clone()
    };
    let _ = Campaign::new(&kernel, suite.clone(), kc.consts(), warm).run();

    // Sequential baseline (the pre-sharding code path).
    let t0 = Instant::now();
    let seq = Campaign::new(&kernel, suite.clone(), kc.consts(), cfg.clone()).run();
    let seq_secs = t0.elapsed().as_secs_f64();
    let seq_rate = execs as f64 / seq_secs;
    println!(
        "sequential       : {execs} execs in {seq_secs:.3}s = {seq_rate:>10.0} execs/sec ({} blocks, {} crashes)",
        seq.blocks(),
        seq.unique_crashes()
    );

    let mut points: Vec<Point> = Vec::new();
    let mut reference: Option<CampaignResult> = None;
    let mut merge_invariant = true;
    for &threads in THREAD_POINTS {
        let t0 = Instant::now();
        let r = ShardedCampaign::new(&kernel, suite.clone(), kc.consts(), cfg.clone())
            .with_shards(8)
            .with_threads(threads)
            .run();
        let secs = t0.elapsed().as_secs_f64();
        let rate = execs as f64 / secs;
        println!(
            "sharded x{threads:<7} : {execs} execs in {secs:.3}s = {rate:>10.0} execs/sec ({} blocks, {} crashes)",
            r.blocks(),
            r.unique_crashes()
        );
        if let Some(reference) = &reference {
            if reference.coverage != r.coverage || reference.crashes != r.crashes {
                merge_invariant = false;
                eprintln!("MERGE INVARIANCE VIOLATED at threads={threads}");
            }
        } else {
            reference = Some(r.clone());
        }
        points.push(Point {
            threads,
            secs,
            execs_per_sec: rate,
        });
    }
    let reference = reference.expect("at least one point");
    assert!(merge_invariant, "thread count changed campaign results");

    let speedup = points.last().expect("points").execs_per_sec / points[0].execs_per_sec;
    println!(
        "scaling 1->8 threads: {speedup:.2}x on {} available cores; merge invariant: {merge_invariant}",
        std::thread::available_parallelism().map_or(0, usize::from)
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"fuzzing\",");
    let _ = writeln!(json, "  \"workload\": \"dm ground-truth suite\",");
    let _ = writeln!(json, "  \"execs\": {execs},");
    let _ = writeln!(json, "  \"shards\": 8,");
    let _ = writeln!(
        json,
        "  \"available_cores\": {},",
        std::thread::available_parallelism().map_or(0, usize::from)
    );
    let _ = writeln!(
        json,
        "  \"sequential\": {{ \"secs\": {seq_secs:.6}, \"execs_per_sec\": {seq_rate:.1} }},"
    );
    let _ = writeln!(json, "  \"sharded\": [");
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{ \"threads\": {}, \"secs\": {:.6}, \"execs_per_sec\": {:.1} }}{}",
            p.threads,
            p.secs,
            p.execs_per_sec,
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedup_1_to_8_threads\": {speedup:.3},");
    let _ = writeln!(json, "  \"merge_invariant\": {merge_invariant},");
    let _ = writeln!(json, "  \"blocks\": {},", reference.blocks());
    let _ = writeln!(json, "  \"unique_crashes\": {}", reference.unique_crashes());
    let _ = writeln!(json, "}}");
    std::fs::write(&out, json).expect("write bench json");
    println!("wrote {out}");
}
