//! # kgpt-syzdescribe
//!
//! A faithful model of **SyzDescribe** (Hao et al., S&P '23), the
//! rule-based static-analysis baseline KernelGPT is compared against.
//!
//! The rules implemented here are the ones the paper documents —
//! including their known failure modes, which the evaluation depends
//! on reproducing:
//!
//! * device name from `miscdevice.name` **only** — `.nodename` is not
//!   modelled, so the device-mapper path comes out wrong (Figure 2c);
//! * `device_create` format strings are copied literally, so indexed
//!   names (`controlC%i`) produce unopenable paths (Table 5 "Err");
//! * the **post-transform** command value is used when the handler
//!   rewrites `cmd` (`cmd = _IOC_NR(command)`), which fails the magic
//!   check at runtime (Figure 2c "Wrong CMD value");
//! * struct fields are recovered positionally as `field_0 …` with no
//!   semantic relations (no `len[...]`, no flags, no ranges — Figure 5);
//! * commands whose argument type is ambiguous are described twice with
//!   different types (the duplicate-description inflation of §5.2.1);
//! * sockets are not supported at all (`N/A` columns);
//! * lookup-table dispatch and runtime-registered tables are not
//!   followed (only `switch`/`if` chains, plus direct delegation).

use kgpt_csrc::ast::{CItemKind, CStructDef, CType, CaseLabel, Expr, Stmt};
use kgpt_csrc::Corpus;
use kgpt_extractor::{HandlerKind, OpHandler};
use kgpt_syzlang as syz;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use syz::{ConstExpr, Dir, IntBits, Item, Param, Resource, SpecFile, Syscall, Type};

/// Outcome of the static generator on one handler.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StaticOutcome {
    /// Handler ops-variable.
    pub ops_var: String,
    /// Driver or socket.
    pub kind: HandlerKind,
    /// Generated spec (`None` for sockets and for handlers the rules
    /// cannot process).
    pub spec: Option<SpecFile>,
    /// Whether the spec validates in the merged suite.
    pub valid: bool,
    /// Validation errors (if any).
    pub errors: Vec<String>,
}

impl StaticOutcome {
    /// Syscalls described.
    #[must_use]
    pub fn syscall_count(&self) -> usize {
        self.spec.as_ref().map_or(0, |s| s.syscalls().count())
    }

    /// Types described.
    #[must_use]
    pub fn type_count(&self) -> usize {
        self.spec.as_ref().map_or(0, |s| s.structs().count())
    }
}

/// Run SyzDescribe over a set of handlers and validate the merged
/// output. The rules are deterministic, so merged validation compiles
/// through the global [`syz::SpecCache`] — sweeps that re-describe
/// the same handlers (Table 5/6 harnesses) validate against a cached
/// database instead of re-parsing the suite per call.
#[must_use]
pub fn describe_all(
    corpus: &Corpus,
    handlers: &[OpHandler],
    consts: &syz::ConstDb,
) -> Vec<StaticOutcome> {
    let mut outcomes: Vec<StaticOutcome> = handlers
        .iter()
        .map(|h| StaticOutcome {
            ops_var: h.ops_var.clone(),
            kind: h.kind,
            spec: describe_one(corpus, h),
            valid: false,
            errors: Vec::new(),
        })
        .collect();
    let files: Vec<SpecFile> = outcomes.iter().filter_map(|o| o.spec.clone()).collect();
    let db = syz::SpecCache::global().get_or_build(&files);
    let errors = syz::validate::validate(&db, consts);
    for o in &mut outcomes {
        let Some(spec) = &o.spec else { continue };
        let own: BTreeSet<String> = spec.items.iter().map(|i| i.name()).collect();
        o.errors = errors
            .iter()
            .filter(|e| own.contains(&e.item))
            .map(ToString::to_string)
            .collect();
        o.valid = o.errors.is_empty();
    }
    outcomes
}

/// Generate a description for one handler with the static rules.
#[must_use]
pub fn describe_one(corpus: &Corpus, handler: &OpHandler) -> Option<SpecFile> {
    if handler.kind == HandlerKind::Socket {
        return None; // not supported
    }
    let prefix = prefix_of(&handler.ops_var);
    let fd_res = format!("fd_{prefix}");
    let mut items = vec![Item::Resource(Resource {
        name: fd_res.clone(),
        base: "fd".into(),
        values: Vec::new(),
    })];
    // RULE: device path = miscdevice .name, else device_create /
    // proc_create literal, else guess /dev/<prefix>.
    let path = device_path_rule(corpus, handler).unwrap_or(format!("/dev/{prefix}"));
    items.push(Item::Syscall(Syscall {
        base: "openat".into(),
        variant: Some(prefix.clone()),
        params: vec![
            Param::new("dir", Type::sym_const("AT_FDCWD", IntBits::I64)),
            Param::new(
                "file",
                Type::ptr(Dir::In, Type::StringLit { values: vec![path] }),
            ),
            Param::new(
                "flags",
                Type::Const {
                    value: ConstExpr::Num(2),
                    bits: IntBits::I64,
                },
            ),
            Param::new(
                "mode",
                Type::Const {
                    value: ConstExpr::Num(0),
                    bits: IntBits::I64,
                },
            ),
        ],
        ret: Some(fd_res.clone()),
    }));
    // RULE: follow the registered ioctl fn through direct delegation
    // (bounded), then read switch/if-chain labels. Lookup tables and
    // runtime tables are invisible to the rules.
    let mut cmds: Vec<(ConstExpr, Option<String>, Option<String>)> = Vec::new();
    if let Some(entry) = &handler.ioctl_fn {
        let mut seen = BTreeSet::new();
        collect_cases(corpus, entry, &mut cmds, &mut seen, 0);
    }
    let mut structs_needed: BTreeSet<String> = BTreeSet::new();
    let mut counter = 0usize;
    for (label, _handler_fn, struct_arg) in &cmds {
        counter += 1;
        let cmd_ty = Type::Const {
            value: label.clone(),
            bits: IntBits::I64,
        };
        match struct_arg {
            Some(sname) => {
                structs_needed.insert(sname.clone());
                items.push(Item::Syscall(Syscall {
                    base: "ioctl".into(),
                    variant: Some(variant_for(label, counter)),
                    params: vec![
                        Param::new("fd", Type::Resource(fd_res.clone())),
                        Param::new("cmd", cmd_ty.clone()),
                        Param::new(
                            "arg",
                            Type::ptr(Dir::In, Type::Named(format!("{prefix}_{sname}"))),
                        ),
                    ],
                    ret: None,
                }));
                // FAILURE MODE: ambiguous rules ALSO emit a second
                // buffer-typed variant for the same command.
                items.push(Item::Syscall(Syscall {
                    base: "ioctl".into(),
                    variant: Some(format!("{}_2", variant_for(label, counter))),
                    params: vec![
                        Param::new("fd", Type::Resource(fd_res.clone())),
                        Param::new("cmd", cmd_ty),
                        Param::new("arg", Type::ptr(Dir::In, Type::buffer())),
                    ],
                    ret: None,
                }));
            }
            None => {
                items.push(Item::Syscall(Syscall {
                    base: "ioctl".into(),
                    variant: Some(variant_for(label, counter)),
                    params: vec![
                        Param::new("fd", Type::Resource(fd_res.clone())),
                        Param::new("cmd", cmd_ty),
                        Param::new("arg", Type::ptr(Dir::In, Type::buffer())),
                    ],
                    ret: None,
                }));
            }
        }
    }
    if cmds.is_empty() {
        return None; // nothing recovered — the handler is unsupported
    }
    // RULE: struct recovery with positional field names, no semantics.
    let mut emitted: BTreeSet<String> = BTreeSet::new();
    let mut queue: Vec<String> = structs_needed.into_iter().collect();
    while let Some(name) = queue.pop() {
        if !emitted.insert(name.clone()) {
            continue;
        }
        if let Some(def) = corpus.struct_def(&name) {
            let (sd, nested) = lower_struct(&prefix, def);
            items.push(Item::Struct(sd));
            queue.extend(nested);
        }
    }
    Some(SpecFile {
        name: format!("{prefix}_syzdescribe.txt"),
        items,
    })
}

fn prefix_of(ops_var: &str) -> String {
    ops_var
        .trim_start_matches('_')
        .trim_end_matches("_fops")
        .to_string()
}

fn variant_for(label: &ConstExpr, counter: usize) -> String {
    match label {
        ConstExpr::Sym(s) => s.clone(),
        ConstExpr::Num(n) => format!("{n:x}_{counter}"),
    }
}

fn device_path_rule(_corpus: &Corpus, handler: &OpHandler) -> Option<String> {
    for usage in &handler.usage {
        // Parse each usage item; rules only look at miscdevice.name and
        // registration calls.
        let Ok(file) = kgpt_csrc::parser::cparse("usage.c", usage) else {
            continue;
        };
        for item in &file.items {
            match &item.kind {
                CItemKind::Var(v) if v.ty.base == "struct miscdevice" => {
                    // THE documented failure: `.name`, never `.nodename`.
                    if let Some(n) = v
                        .init
                        .as_ref()
                        .and_then(|i| i.init_field("name"))
                        .and_then(Expr::as_str)
                    {
                        return Some(format!("/dev/{n}"));
                    }
                }
                CItemKind::Function(f) => {
                    let mut found = None;
                    kgpt_csrc::ast::walk_exprs(&f.body, &mut |e| {
                        if let Expr::Call { func, args } = e {
                            if func == "device_create" {
                                // Literal copy — `%i` kept verbatim.
                                if let Some(s) =
                                    args.iter().find_map(|a| a.as_str().map(str::to_string))
                                {
                                    found = Some(format!("/dev/{s}"));
                                }
                            } else if func == "proc_create" {
                                if let Some(s) =
                                    args.iter().find_map(|a| a.as_str().map(str::to_string))
                                {
                                    found = Some(format!("/proc/{s}"));
                                }
                            }
                        }
                    });
                    if found.is_some() {
                        return found;
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Collect `(label, handler_fn, struct_arg)` rows from switch/if
/// dispatch, following direct delegation up to 2 hops.
fn collect_cases(
    corpus: &Corpus,
    func: &str,
    out: &mut Vec<(ConstExpr, Option<String>, Option<String>)>,
    seen: &mut BTreeSet<String>,
    depth: usize,
) {
    if depth > 2 || !seen.insert(func.to_string()) {
        return;
    }
    let Some(f) = corpus.function(func) else {
        return;
    };
    if f.is_proto {
        return;
    }
    let mut found_cases = false;
    kgpt_csrc::ast::walk_stmts(&f.body, &mut |s| match s {
        Stmt::Switch { cases, .. } => {
            for case in cases {
                for label in &case.labels {
                    if let CaseLabel::Expr(e) = label {
                        found_cases = true;
                        if let Some(row) = case_row(e, &case.body) {
                            out.push(row);
                        }
                    }
                }
            }
        }
        Stmt::If {
            cond: Expr::Binary { op: "==", lhs, rhs },
            then,
            ..
        } => {
            if matches!(lhs.as_ref(), Expr::Ident(i) if i == "cmd") {
                found_cases = true;
                if let Some(row) = case_row(rhs, then) {
                    out.push(row);
                }
            }
        }
        _ => {}
    });
    if !found_cases {
        // Direct delegation only: `return g(...)`.
        let mut tails = Vec::new();
        kgpt_csrc::ast::walk_stmts(&f.body, &mut |s| {
            if let Stmt::Return(Some(Expr::Call { func: g, .. })) = s {
                tails.push(g.clone());
            }
        });
        for g in tails {
            collect_cases(corpus, &g, out, seen, depth + 1);
        }
    }
}

fn case_row(label: &Expr, body: &[Stmt]) -> Option<(ConstExpr, Option<String>, Option<String>)> {
    // THE cmd-value failure mode: the label expression is evaluated
    // *as written post-transform* — `_IOC_NR(CMD)` becomes the bare
    // command number, not the full encoded value.
    let value = match label {
        Expr::Ident(n) => ConstExpr::Sym(n.clone()),
        Expr::Num(n) => ConstExpr::Num(*n),
        Expr::Call { func, args } if func == "_IOC_NR" => {
            // Rules know the _IOC_NR bit layout; they extract the nr —
            // which is the wrong value to pass from userspace.
            match args.first()? {
                Expr::Ident(n) => ConstExpr::Sym(format!("_IOC_NR_{n}")),
                Expr::Num(n) => ConstExpr::Num(*n & 0xff),
                _ => return None,
            }
        }
        Expr::Binary { op: "&", lhs, rhs } => match (lhs.as_ref(), rhs.as_ref()) {
            (Expr::Ident(n), Expr::Num(_)) => ConstExpr::Sym(format!("MASKED_{n}")),
            _ => return None,
        },
        _ => return None,
    };
    let mut handler_fn = None;
    let mut struct_arg = None;
    kgpt_csrc::ast::walk_stmts(body, &mut |s| {
        if let Stmt::Return(Some(Expr::Call { func, args })) = s {
            handler_fn = Some(func.clone());
            for a in args {
                if let Expr::Cast { ty, .. } = a {
                    if let Some(tag) = ty.struct_tag() {
                        struct_arg = Some(tag.to_string());
                    }
                }
            }
        }
    });
    Some((value, handler_fn, struct_arg))
}

/// Positional lowering: `field_N`, widths preserved, no semantics;
/// unions collapse to byte arrays. Returns nested struct names.
fn lower_struct(prefix: &str, def: &CStructDef) -> (syz::StructDef, Vec<String>) {
    let mut nested = Vec::new();
    if def.is_union {
        return (
            syz::StructDef {
                name: format!("{prefix}_{}", def.name),
                fields: vec![syz::Field::new(
                    "field_0",
                    Type::Array {
                        elem: Box::new(Type::int(IntBits::I8)),
                        len: syz::ArrayLen::Fixed(8),
                    },
                )],
                is_union: false,
                packed: false,
            },
            nested,
        );
    }
    let fields = def
        .fields
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let ty = lower_type(prefix, &f.ty, &mut nested);
            syz::Field::new(format!("field_{i}"), ty)
        })
        .collect();
    (
        syz::StructDef {
            name: format!("{prefix}_{}", def.name),
            fields,
            is_union: false,
            packed: false,
        },
        nested,
    )
}

fn lower_type(prefix: &str, ty: &CType, nested: &mut Vec<String>) -> Type {
    use kgpt_csrc::ast::CArraySize;
    let base = if let Some(tag) = ty.struct_tag() {
        nested.push(tag.to_string());
        Type::Named(format!("{prefix}_{tag}"))
    } else if ty.ptr > 0 {
        Type::int(IntBits::I64)
    } else {
        match ty.base.as_str() {
            "char" | "uchar" | "u8" | "s8" | "__u8" | "__s8" | "bool" => Type::int(IntBits::I8),
            "short" | "ushort" | "u16" | "s16" | "__u16" | "__s16" | "__le16" | "__be16" => {
                Type::int(IntBits::I16)
            }
            "long" | "ulong" | "u64" | "s64" | "__u64" | "__s64" | "__le64" | "__be64"
            | "size_t" | "loff_t" => Type::int(IntBits::I64),
            _ => Type::int(IntBits::I32),
        }
    };
    match &ty.array {
        Some(CArraySize::Fixed(n)) => Type::Array {
            elem: Box::new(base),
            len: syz::ArrayLen::Fixed(*n),
        },
        Some(CArraySize::Named(_)) => Type::Array {
            elem: Box::new(base),
            len: syz::ArrayLen::Fixed(1), // rules cannot resolve macros
        },
        Some(CArraySize::Flex) => Type::Array {
            elem: Box::new(base),
            len: syz::ArrayLen::Unsized,
        },
        None => base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgpt_csrc::KernelCorpus;
    use kgpt_extractor::find_handlers;

    fn run(bp: kgpt_csrc::Blueprint) -> (KernelCorpus, Vec<StaticOutcome>) {
        let kc = KernelCorpus::from_blueprints(vec![bp]);
        let handlers = find_handlers(kc.corpus());
        let outs = describe_all(kc.corpus(), &handlers, kc.consts());
        (kc, outs)
    }

    #[test]
    fn dm_gets_wrong_device_name_and_no_commands() {
        // dm: nodename registration + lookup-table dispatch — both rules
        // fail exactly as in the paper's Figure 2c.
        let (_, outs) = run(kgpt_csrc::flagship::dm());
        let o = &outs[0];
        match &o.spec {
            None => {} // lookup table invisible → nothing recovered
            Some(s) => {
                let text = syz::print_file(s);
                assert!(
                    text.contains("/dev/dm-controller"),
                    "must use .name, got:\n{text}"
                );
            }
        }
    }

    #[test]
    fn switch_driver_described_with_positional_fields() {
        let (_, outs) = run(kgpt_csrc::flagship::cec());
        let o = &outs[0];
        let spec = o.spec.as_ref().expect("cec is switch-dispatched");
        let text = syz::print_file(spec);
        // Indexed cdev registration: the literal pattern is copied.
        assert!(text.contains("/dev/cec%i"), "{text}");
        assert!(text.contains("field_0"), "{text}");
        assert!(!text.contains("len["), "no semantic relations: {text}");
        assert!(o.valid, "{:?}", o.errors);
    }

    #[test]
    fn duplicate_variants_inflate_syscall_counts() {
        let (_, outs) = run(kgpt_csrc::flagship::cec());
        let spec = outs[0].spec.as_ref().unwrap();
        let names: Vec<String> = spec.syscalls().map(|s| s.name()).collect();
        assert!(
            names.iter().any(|n| n.ends_with("_2")),
            "expected duplicate buffer variants: {names:?}"
        );
    }

    #[test]
    fn sockets_unsupported() {
        let (_, outs) = run(kgpt_csrc::flagship::rds());
        assert!(outs[0].spec.is_none());
    }

    #[test]
    fn indexed_cdev_name_copied_literally() {
        let (_, outs) = run(kgpt_csrc::flagship::controlc());
        let o = &outs[0];
        let spec = o.spec.as_ref().expect("switch dispatch is supported");
        let text = syz::print_file(spec);
        assert!(
            text.contains("controlC%i"),
            "pattern must be copied verbatim: {text}"
        );
    }

    #[test]
    fn hidden_commands_not_found() {
        let (_, outs) = run(kgpt_csrc::flagship::ptmx());
        let spec = outs[0].spec.as_ref().unwrap();
        let text = syz::print_file(spec);
        assert!(!text.contains("TIOCLINUX"), "{text}");
        assert!(text.contains("TIOCGPTN"), "{text}");
    }

    #[test]
    fn flagship_suite_mostly_validates() {
        let kc = KernelCorpus::flagship_only();
        let handlers = find_handlers(kc.corpus());
        let outs = describe_all(kc.corpus(), &handlers, kc.consts());
        let described = outs.iter().filter(|o| o.spec.is_some()).count();
        let valid = outs.iter().filter(|o| o.valid).count();
        // Rules handle a strict subset of handlers; valid ≤ described.
        assert!(described >= 15, "described={described}");
        assert!(valid <= described);
    }
}
