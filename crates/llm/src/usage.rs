//! Token and cost accounting (paper §5.1.1: 5.56 M input tokens,
//! 400 K output tokens, $34 total, 2630/189 tokens per prompt).

use crate::profile::Capability;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

/// Token usage of one or many requests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Usage {
    /// Prompt tokens.
    pub input_tokens: u64,
    /// Completion tokens.
    pub output_tokens: u64,
    /// Number of requests folded in.
    pub requests: u64,
}

impl Usage {
    /// Usage of a single request.
    #[must_use]
    pub fn of_request(input_tokens: u64, output_tokens: u64) -> Usage {
        Usage {
            input_tokens,
            output_tokens,
            requests: 1,
        }
    }

    /// Add another usage record.
    pub fn add(&mut self, other: Usage) {
        self.input_tokens += other.input_tokens;
        self.output_tokens += other.output_tokens;
        self.requests += other.requests;
    }

    /// Dollar cost in cents under a capability's price table.
    #[must_use]
    pub fn cost_cents(&self, cap: &Capability) -> u64 {
        (self.input_tokens * cap.cost_in_per_mtok_cents
            + self.output_tokens * cap.cost_out_per_mtok_cents)
            / 1_000_000
    }

    /// Mean input tokens per request.
    #[must_use]
    pub fn mean_input(&self) -> u64 {
        self.input_tokens.checked_div(self.requests).unwrap_or(0)
    }

    /// Mean output tokens per request.
    #[must_use]
    pub fn mean_output(&self) -> u64 {
        self.output_tokens.checked_div(self.requests).unwrap_or(0)
    }
}

/// Thread-safe cumulative meter shared by a model instance.
#[derive(Debug, Clone, Default)]
pub struct UsageMeter {
    inner: Arc<Mutex<Usage>>,
}

impl UsageMeter {
    /// New zeroed meter.
    #[must_use]
    pub fn new() -> UsageMeter {
        UsageMeter::default()
    }

    /// Record one request's usage.
    pub fn record(&self, usage: Usage) {
        self.inner.lock().expect("usage meter poisoned").add(usage);
    }

    /// Snapshot the cumulative usage.
    #[must_use]
    pub fn snapshot(&self) -> Usage {
        *self.inner.lock().expect("usage meter poisoned")
    }

    /// Reset to zero (between experiments).
    pub fn reset(&self) {
        *self.inner.lock().expect("usage meter poisoned") = Usage::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ModelKind;

    #[test]
    fn accumulates() {
        let m = UsageMeter::new();
        m.record(Usage::of_request(100, 10));
        m.record(Usage::of_request(200, 20));
        let s = m.snapshot();
        assert_eq!(s.input_tokens, 300);
        assert_eq!(s.output_tokens, 30);
        assert_eq!(s.requests, 2);
        assert_eq!(s.mean_input(), 150);
        assert_eq!(s.mean_output(), 15);
        m.reset();
        assert_eq!(m.snapshot(), Usage::default());
    }

    #[test]
    fn cost_matches_paper_scale() {
        // Paper: 5.56M in + 0.4M out on GPT-4 ≈ $34 (the paper's run
        // used the cheaper turbo tier; our table uses classic gpt-4
        // pricing, so we only check the order of magnitude).
        let u = Usage {
            input_tokens: 5_560_000,
            output_tokens: 400_000,
            requests: 2_100,
        };
        let cents = u.cost_cents(&ModelKind::Gpt4.capability());
        assert!((2_000..=25_000).contains(&cents), "cents={cents}");
    }

    #[test]
    fn zero_requests_no_panic() {
        let u = Usage::default();
        assert_eq!(u.mean_input(), 0);
        assert_eq!(u.mean_output(), 0);
    }
}
