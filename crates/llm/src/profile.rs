//! Capability profiles emulating the LLMs of the paper's §5.2.3
//! model-choice ablation.

use serde::{Deserialize, Serialize};

/// Which model the oracle emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// GPT-4 — the paper's default.
    Gpt4,
    /// GPT-4o — comparable capability, cheaper.
    Gpt4o,
    /// GPT-3.5 — markedly weaker (85 vs 143 syscalls in the ablation).
    Gpt35,
}

impl ModelKind {
    /// API-style model id.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            ModelKind::Gpt4 => "gpt-4-0613",
            ModelKind::Gpt4o => "gpt-4o-2024-05-13",
            ModelKind::Gpt35 => "gpt-3.5-turbo",
        }
    }

    /// The capability profile for this model.
    #[must_use]
    pub fn capability(self) -> Capability {
        match self {
            ModelKind::Gpt4 => Capability {
                context_tokens: 128_000,
                follows_transforms: true,
                len_inference: true,
                nodename_aware: true,
                flags_inference: true,
                cmd_recall_bp: 10_000,
                err_ident_bp: 90, // ≈0.9% wrong identifiers (§5.1.3)
                err_type_bp: 290, // ≈2.9% wrong types (9 of 313)
                defect_bp: 4_000, // ≈40% of handlers need one repair
                cost_in_per_mtok_cents: 3_000,
                cost_out_per_mtok_cents: 6_000,
            },
            ModelKind::Gpt4o => Capability {
                context_tokens: 128_000,
                follows_transforms: true,
                len_inference: true,
                nodename_aware: true,
                flags_inference: true,
                cmd_recall_bp: 9_900,
                err_ident_bp: 110,
                err_type_bp: 320,
                defect_bp: 4_200,
                cost_in_per_mtok_cents: 250,
                cost_out_per_mtok_cents: 1_000,
            },
            ModelKind::Gpt35 => Capability {
                context_tokens: 16_000,
                follows_transforms: false,
                len_inference: false,
                nodename_aware: false,
                flags_inference: false,
                cmd_recall_bp: 6_000, // drops ~40% of commands
                err_ident_bp: 800,
                err_type_bp: 1_500,
                defect_bp: 6_000,
                cost_in_per_mtok_cents: 50,
                cost_out_per_mtok_cents: 150,
            },
        }
    }
}

/// What a model can and cannot do, plus its seeded error rates.
///
/// Rates are in basis points (1/10000) so profiles stay `Eq` and
/// deterministic hashing stays exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Capability {
    /// Context window in tokens; longer prompts are truncated (the
    /// all-in-one ablation loses commands this way).
    pub context_tokens: usize,
    /// Understands command transforms (`_IOC_NR`, masks) and names the
    /// *original* macro (the paper's Figure 2 capability).
    pub follows_transforms: bool,
    /// Infers `len[...]`/`bytesize[...]` relations between fields
    /// (Figure 5).
    pub len_inference: bool,
    /// Prefers `.nodename` over `.name` when both are present.
    pub nodename_aware: bool,
    /// Recovers `flags[...]` sets from mask checks + nearby macros.
    pub flags_inference: bool,
    /// Probability (bp) that each discovered command is reported.
    pub cmd_recall_bp: u32,
    /// Probability (bp) of reporting a wrong identifier value for a
    /// transform-obscured command.
    pub err_ident_bp: u32,
    /// Probability (bp) of a wrong field type in a struct.
    pub err_type_bp: u32,
    /// Probability (bp) that a handler's first-pass spec contains one
    /// repairable defect (fixed on the repair attempt).
    pub defect_bp: u32,
    /// Input cost, cents per million tokens.
    pub cost_in_per_mtok_cents: u64,
    /// Output cost, cents per million tokens.
    pub cost_out_per_mtok_cents: u64,
}

impl Capability {
    /// Deterministic Bernoulli draw: true with probability `bp`/10000,
    /// keyed by an arbitrary string (handler id + item + purpose).
    #[must_use]
    pub fn draw(bp: u32, key: &str, seed: u64) -> bool {
        u32::try_from(stable_hash(key, seed) % 10_000).expect("mod 10k fits") < bp
    }
}

/// FNV-1a over the key mixed with the seed — stable across runs and
/// platforms (unlike `DefaultHasher`).
#[must_use]
pub fn stable_hash(key: &str, seed: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_ordered_by_capability() {
        let g4 = ModelKind::Gpt4.capability();
        let g35 = ModelKind::Gpt35.capability();
        assert!(g4.follows_transforms && !g35.follows_transforms);
        assert!(g4.cmd_recall_bp > g35.cmd_recall_bp);
        assert!(g4.context_tokens > g35.context_tokens);
    }

    #[test]
    fn draws_are_deterministic_and_seeded() {
        let a = Capability::draw(5_000, "dm:DM_VERSION", 1);
        let b = Capability::draw(5_000, "dm:DM_VERSION", 1);
        assert_eq!(a, b);
        // Extreme rates behave as expected.
        assert!(!Capability::draw(0, "x", 0));
        assert!(Capability::draw(10_000, "x", 0));
    }

    #[test]
    fn draw_rate_roughly_matches() {
        let hits = (0..10_000)
            .filter(|i| Capability::draw(3_000, &format!("k{i}"), 42))
            .count();
        assert!((2_400..=3_600).contains(&hits), "hits={hits}");
    }

    #[test]
    fn model_ids() {
        assert_eq!(ModelKind::Gpt4.id(), "gpt-4-0613");
        assert!(ModelKind::Gpt4o.id().contains("4o"));
    }
}
