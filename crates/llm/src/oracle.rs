//! The deterministic oracle model.
//!
//! Substitutes the paper's GPT-4 endpoint: it parses the C code
//! *embedded in the prompt text* (never touching global state), applies
//! the reasoning a strong code LLM demonstrably performs on kernel
//! sources — designated-initializer reading, command-transform
//! reversal, switch/if-chain/lookup-table dispatch recovery, semantic
//! field-role inference (`len[...]`, ranges, flags, resources),
//! `anon_inode_getfd` dependency spotting — and answers in the
//! [`crate::protocol`] fact grammar.
//!
//! Capability gates ([`crate::profile`]) and seeded error injection
//! calibrate it to the paper's measurements: §5.1.3 accuracy for GPT-4
//! and the §5.2.3 degradation for GPT-3.5.

use crate::profile::{Capability, ModelKind};
#[cfg(test)]
use crate::protocol::parse_facts;
use crate::protocol::{render_facts, ArgSig, Fact, Prompt, Task};
use crate::usage::{Usage, UsageMeter};
use crate::{approx_tokens, ChatRequest, ChatResponse, LanguageModel};
use kgpt_csrc::ast::{CField, CItemKind, CStructDef, CType, CaseLabel, Expr, Stmt};
use kgpt_csrc::cmacro;
use kgpt_csrc::parser::cparse;
use kgpt_csrc::Corpus;
use std::collections::BTreeSet;

/// The oracle analysis LLM.
#[derive(Debug)]
pub struct OracleModel {
    kind: ModelKind,
    cap: Capability,
    seed: u64,
    meter: UsageMeter,
    name: String,
}

impl OracleModel {
    /// Create an oracle emulating the given model.
    #[must_use]
    pub fn new(kind: ModelKind, seed: u64) -> OracleModel {
        OracleModel {
            kind,
            cap: kind.capability(),
            seed,
            meter: UsageMeter::new(),
            name: kind.id().to_string(),
        }
    }

    /// The emulated model kind.
    #[must_use]
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Shared usage meter (for experiment reports).
    #[must_use]
    pub fn meter(&self) -> &UsageMeter {
        &self.meter
    }
}

impl LanguageModel for OracleModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn chat(&self, request: &ChatRequest) -> ChatResponse {
        // Context-window truncation: drop tail characters past the
        // window (this is what makes the all-in-one ablation lose
        // commands on big drivers).
        let max_chars = self.cap.context_tokens.saturating_mul(4);
        let text: &str = if request.prompt.len() > max_chars {
            let mut cut = max_chars;
            while cut > 0 && !request.prompt.is_char_boundary(cut) {
                cut -= 1;
            }
            &request.prompt[..cut]
        } else {
            &request.prompt
        };
        let prompt = Prompt::parse(text);
        let analysis = Analysis::new(&self.cap, self.seed, &prompt, request.attempt);
        let facts = analysis.run();
        let out = render_facts(&facts);
        let usage = Usage::of_request(approx_tokens(&request.prompt), approx_tokens(&out));
        self.meter.record(usage);
        ChatResponse { text: out, usage }
    }

    fn total_usage(&self) -> Usage {
        self.meter.snapshot()
    }
}

/// Derive the spec-name prefix from an ops-variable name
/// (`_dm_fops` → `dm`, `rds_proto_ops` → `rds`). KernelGPT uses the
/// same derivation when assembling the final spec.
#[must_use]
pub fn prefix_of_ops_var(ops_var: &str) -> String {
    ops_var
        .trim_start_matches('_')
        .trim_end_matches("_fops")
        .trim_end_matches("_proto_ops")
        .to_string()
}

struct Analysis<'a> {
    cap: &'a Capability,
    seed: u64,
    prompt: &'a Prompt,
    attempt: u32,
    corpus: Corpus,
    usage_corpus: Corpus,
    prefix: String,
    /// Per-query recall multiplier in permille. The staged pipeline
    /// keeps prompts focused (1000‰); a single all-in-one prompt loses
    /// recall as it grows — the "lost in the middle" effect the §5.2.3
    /// ablation measures.
    recall_permille: u64,
}

impl<'a> Analysis<'a> {
    fn new(cap: &'a Capability, seed: u64, prompt: &'a Prompt, attempt: u32) -> Analysis<'a> {
        let recall_permille = if prompt.task == Some(Task::AllInOne) {
            // Focused attention budget ≈ 2000 tokens of source; recall
            // decays proportionally beyond it (floor 30%).
            let budget_chars = 8_000u64;
            let len = prompt.source_text().len() as u64;
            if len <= budget_chars {
                1000
            } else {
                (budget_chars * 1000 / len).max(300)
            }
        } else {
            1000
        };
        Analysis {
            cap,
            seed,
            prompt,
            attempt,
            corpus: parse_lenient(&prompt.source),
            usage_corpus: parse_lenient(&prompt.usage),
            prefix: prompt
                .handler_var
                .as_deref()
                .map(prefix_of_ops_var)
                .unwrap_or_default(),
            recall_permille,
        }
    }

    fn draw(&self, what: &str, bp: u32) -> bool {
        let key = format!(
            "{}:{}:{}",
            self.prefix,
            what,
            self.prompt.handler_var.as_deref().unwrap_or("")
        );
        Capability::draw(bp, &key, self.seed)
    }

    fn run(&self) -> Vec<Fact> {
        let mut facts = Vec::new();
        match self.prompt.task {
            Some(Task::Identifier) => self.identifier_stage(&mut facts),
            Some(Task::Types) => self.type_stage(&mut facts),
            Some(Task::Dependency) => self.dependency_stage(&mut facts),
            Some(Task::Repair) | None => {
                // Repair: redo everything visible, with injection off
                // (attempt > 0 by construction of the repair request).
                self.identifier_stage(&mut facts);
                self.type_stage(&mut facts);
                self.dependency_stage(&mut facts);
            }
            Some(Task::AllInOne) => {
                self.identifier_stage(&mut facts);
                // All-in-one also recovers types for every struct it saw.
                self.type_stage(&mut facts);
                self.dependency_stage(&mut facts);
            }
        }
        facts
    }

    // ---- registration / producer analysis ---------------------------

    fn registration_facts(&self, facts: &mut Vec<Fact>) {
        // Driver device path from usage items.
        for file in self.usage_corpus.files() {
            for item in &file.items {
                if let CItemKind::Var(v) = &item.kind {
                    if v.ty.base == "struct miscdevice" {
                        if let Some(init) = &v.init {
                            let nodename =
                                init.init_field("nodename").and_then(|e| self.string_of(e));
                            let name = init.init_field("name").and_then(|e| self.string_of(e));
                            let chosen = if self.cap.nodename_aware {
                                nodename.or(name)
                            } else {
                                name.or(nodename)
                            };
                            if let Some(n) = chosen {
                                facts.push(Fact::DevPath(format!("/dev/{n}")));
                                return;
                            }
                        }
                    }
                    if v.ty.base == "struct net_proto_family" {
                        self.socket_facts(v.init.as_ref(), facts);
                        return;
                    }
                }
                if let CItemKind::Function(f) = &item.kind {
                    let mut found = None;
                    kgpt_csrc::ast::walk_exprs(&f.body, &mut |e| {
                        if let Expr::Call { func, args } = e {
                            match func.as_str() {
                                "device_create" => {
                                    if let Some(s) =
                                        args.iter().find_map(|a| a.as_str().map(str::to_string))
                                    {
                                        // printf-style index patterns: a
                                        // capable model instantiates %i→0.
                                        let resolved = s.replace("%i", "0").replace("%d", "0");
                                        found = Some(format!("/dev/{resolved}"));
                                    }
                                }
                                "proc_create" => {
                                    if let Some(s) =
                                        args.iter().find_map(|a| a.as_str().map(str::to_string))
                                    {
                                        found = Some(format!("/proc/{s}"));
                                    }
                                }
                                _ => {}
                            }
                        }
                    });
                    if let Some(p) = found {
                        facts.push(Fact::DevPath(p));
                        return;
                    }
                }
            }
        }
        // Socket registration may live in SOURCE instead of USAGE.
        for file in self.corpus.files() {
            for item in &file.items {
                if let CItemKind::Var(v) = &item.kind {
                    if v.ty.base == "struct net_proto_family" {
                        self.socket_facts(v.init.as_ref(), facts);
                        return;
                    }
                }
            }
        }
    }

    fn socket_facts(&self, family_init: Option<&Expr>, facts: &mut Vec<Fact>) {
        let family_name = family_init
            .and_then(|i| i.init_field("family"))
            .and_then(Expr::as_ident)
            .map(str::to_string);
        // type/proto from the create function: `protocol != N`,
        // `sock->type != M`.
        let mut sock_type = None;
        let mut proto = None;
        let create_fn = family_init
            .and_then(|i| i.init_field("create"))
            .and_then(Expr::as_ident);
        if let Some(f) = create_fn.and_then(|n| self.find_fn(n)) {
            kgpt_csrc::ast::walk_exprs(&f.body, &mut |e| {
                if let Expr::Binary { op: "!=", lhs, rhs } = e {
                    if let Expr::Num(n) = rhs.as_ref() {
                        match lhs.as_ref() {
                            Expr::Ident(id) if id == "protocol" => proto = Some(*n),
                            Expr::Member { field, .. } if field == "type" => {
                                sock_type = Some(*n);
                            }
                            _ => {}
                        }
                    }
                }
            });
        }
        // level from the setsockopt dispatcher: `level != SOL_X`.
        let mut level_name = None;
        for file in self.corpus.files() {
            for item in &file.items {
                if let CItemKind::Function(f) = &item.kind {
                    kgpt_csrc::ast::walk_exprs(&f.body, &mut |e| {
                        if let Expr::Binary { op: "!=", lhs, rhs } = e {
                            if matches!(lhs.as_ref(), Expr::Ident(id) if id == "level") {
                                if let Expr::Ident(l) = rhs.as_ref() {
                                    level_name = Some(l.clone());
                                }
                            }
                        }
                    });
                }
            }
        }
        facts.push(Fact::Socket {
            family_name,
            sock_type,
            proto,
            level_name,
        });
        // Generic socket call implementations from the proto_ops var.
        for file in self.corpus.files().iter().chain(self.usage_corpus.files()) {
            for item in &file.items {
                if let CItemKind::Var(v) = &item.kind {
                    if v.ty.base == "struct proto_ops" {
                        if let Some(init) = &v.init {
                            for call in ["bind", "connect", "sendmsg", "recvmsg", "accept"] {
                                if let Some(f) = init.init_field(call).and_then(Expr::as_ident) {
                                    facts.push(Fact::SockCallFn {
                                        call: call.to_string(),
                                        func: f.to_string(),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    fn string_of(&self, e: &Expr) -> Option<String> {
        if let Some(s) = e.as_str() {
            return Some(s.to_string());
        }
        cmacro::eval_string(&self.corpus, e).or_else(|| cmacro::eval_string(&self.usage_corpus, e))
    }

    fn find_fn(&self, name: &str) -> Option<&kgpt_csrc::ast::CFunction> {
        self.corpus
            .function(name)
            .or_else(|| self.usage_corpus.function(name))
    }

    // ---- identifier stage -------------------------------------------

    fn identifier_stage(&self, facts: &mut Vec<Fact>) {
        self.registration_facts(facts);
        let Some(entry) = self.prompt.target_func.as_deref() else {
            return;
        };
        let mut visited = BTreeSet::new();
        self.follow(entry, facts, &mut visited, 0);
        self.inject_wrong_identifier(facts);
        self.inject_ident_defect(facts);
    }

    /// §5.1.3's rare semantic failure: on transform-obscured handlers
    /// the model occasionally swaps two command identifiers. The result
    /// still *validates* (both macros exist) but is semantically wrong —
    /// the kind of error only the ground-truth diff catches.
    fn inject_wrong_identifier(&self, facts: &mut [Fact]) {
        let transformed = facts
            .iter()
            .any(|f| matches!(f, Fact::Transform { kind } if kind != "none"));
        if !transformed {
            return;
        }
        let idents: Vec<usize> = facts
            .iter()
            .enumerate()
            .filter(|(_, f)| matches!(f, Fact::Ident { .. }))
            .map(|(i, _)| i)
            .collect();
        if idents.len() < 2 {
            return;
        }
        for w in idents.windows(2) {
            let (a, b) = (w[0], w[1]);
            let name_a = match &facts[a] {
                Fact::Ident { name, .. } => name.clone(),
                _ => continue,
            };
            if Capability::draw(
                self.cap.err_ident_bp,
                &format!("{}:identerr:{name_a}", self.prefix),
                self.seed,
            ) {
                let name_b = match &facts[b] {
                    Fact::Ident { name, .. } => name.clone(),
                    _ => continue,
                };
                if let Fact::Ident { name, .. } = &mut facts[a] {
                    *name = name_b;
                }
                if let Fact::Ident { name, .. } = &mut facts[b] {
                    *name = name_a;
                }
                break; // at most one swap per handler
            }
        }
    }

    /// Follow a dispatcher function, chasing intra-prompt delegation.
    fn follow(
        &self,
        func: &str,
        facts: &mut Vec<Fact>,
        visited: &mut BTreeSet<String>,
        depth: usize,
    ) {
        if depth > 24 || !visited.insert(func.to_string()) {
            return;
        }
        let Some(f) = self.find_fn(func) else {
            facts.push(Fact::UnknownFunc {
                name: func.to_string(),
                usage: format!("{func}(file, command, arg)"),
            });
            return;
        };
        if f.is_proto {
            facts.push(Fact::Note(format!(
                "{func} has no visible body; handlers behind it are registered at runtime and cannot be derived from source"
            )));
            return;
        }
        // Transform detection.
        let mut transform: Option<String> = None;
        kgpt_csrc::ast::walk_stmts(&f.body, &mut |s| {
            if let Stmt::Decl {
                name,
                init: Some(e),
                ..
            } = s
            {
                if name == "cmd" {
                    match e {
                        Expr::Call { func, .. } if func == "_IOC_NR" => {
                            transform = Some("iocnr".to_string());
                        }
                        Expr::Binary { op: "&", rhs, .. } => {
                            if let Expr::Num(m) = rhs.as_ref() {
                                transform = Some(format!("mask:{m:#x}"));
                            }
                        }
                        _ => {}
                    }
                }
            }
        });
        if let Some(t) = &transform {
            if self.cap.follows_transforms {
                facts.push(Fact::Transform { kind: t.clone() });
            }
        }
        // Switch / if-chain dispatch.
        let mut tail_calls: Vec<String> = Vec::new();
        let mut case_count = 0usize;
        kgpt_csrc::ast::walk_stmts(&f.body, &mut |s| match s {
            Stmt::Switch { cases, .. } => {
                for case in cases {
                    for label in &case.labels {
                        if let CaseLabel::Expr(e) = label {
                            case_count += 1;
                            self.emit_case(e, &case.body, facts);
                        }
                    }
                    // `default: return x_dynamic_ioctl(...)` tail.
                    if case.labels.iter().any(|l| matches!(l, CaseLabel::Default)) {
                        collect_tail_calls(&case.body, &mut tail_calls);
                    }
                }
            }
            Stmt::If {
                cond: Expr::Binary { op: "==", lhs, rhs },
                then,
                ..
            } => {
                if matches!(lhs.as_ref(), Expr::Ident(id) if id == "cmd") {
                    case_count += 1;
                    self.emit_case(rhs, then, facts);
                }
            }
            _ => {}
        });
        // Lookup-table dispatch: `fn = X_lookup_ioctl(cmd)`.
        let mut lookup_fns: Vec<String> = Vec::new();
        kgpt_csrc::ast::walk_exprs(&f.body, &mut |e| {
            if let Expr::Call { func, .. } = e {
                if func.contains("lookup_ioctl") {
                    lookup_fns.push(func.clone());
                }
            }
        });
        for lf in lookup_fns {
            if let Some(lfn) = self.find_fn(&lf) {
                // Find the table the lookup function scans.
                let mut table: Option<String> = None;
                kgpt_csrc::ast::walk_exprs(&lfn.body, &mut |e| {
                    if let Expr::Index { base, .. } = e {
                        if let Expr::Ident(v) = base.as_ref() {
                            table = Some(v.clone());
                        }
                    }
                });
                match table.as_deref().and_then(|t| self.find_table(t)) {
                    Some(rows) => {
                        for (label, handler) in rows {
                            case_count += 1;
                            self.emit_table_row(&label, handler.as_deref(), facts);
                        }
                    }
                    None => {
                        if let Some(t) = table {
                            facts.push(Fact::UnknownVar {
                                name: t,
                                usage: format!("scanned by {lf} to dispatch ioctl commands"),
                            });
                        }
                    }
                }
            } else {
                facts.push(Fact::UnknownFunc {
                    name: lf.clone(),
                    usage: format!("fn = {lf}(cmd); return fn(file, arg);"),
                });
            }
        }
        // Pure delegation: no cases found and the body tail-calls one
        // function with the same shape.
        if case_count == 0 {
            collect_tail_calls(&f.body, &mut tail_calls);
        }
        for callee in tail_calls {
            self.follow(&callee, facts, visited, depth + 1);
        }
    }

    fn find_table(&self, name: &str) -> Option<Vec<(Expr, Option<String>)>> {
        let v = self
            .corpus
            .var_def(name)
            .or_else(|| self.usage_corpus.var_def(name))?;
        let Expr::InitList { entries } = v.init.as_ref()? else {
            return None;
        };
        let mut rows = Vec::new();
        for (_, row) in entries {
            if let Expr::InitList { entries: cols } = row {
                let label = cols.first().map(|(_, e)| e.clone())?;
                let handler = cols
                    .get(1)
                    .map(|(_, e)| strip_casts(e))
                    .and_then(|e| e.as_ident().map(str::to_string));
                rows.push((label, handler));
            }
        }
        Some(rows)
    }

    fn emit_table_row(&self, label: &Expr, handler: Option<&str>, facts: &mut Vec<Fact>) {
        // Table rows reuse the same label logic; the body is the handler
        // function itself.
        let body = handler
            .map(|h| {
                vec![Stmt::Return(Some(Expr::Call {
                    func: h.to_string(),
                    args: Vec::new(),
                }))]
            })
            .unwrap_or_default();
        self.emit_case(label, &body, facts);
    }

    fn emit_case(&self, label: &Expr, body: &[Stmt], facts: &mut Vec<Fact>) {
        let Some(name) = self.label_macro(label) else {
            return;
        };
        // Recall gate: weaker models drop commands; all-in-one prompts
        // lose further recall with size.
        let effective_bp =
            u32::try_from(u64::from(self.cap.cmd_recall_bp) * self.recall_permille / 1000)
                .unwrap_or(self.cap.cmd_recall_bp);
        if !Capability::draw(
            effective_bp,
            &format!("{}:recall:{name}", self.prefix),
            self.seed,
        ) {
            return;
        }
        // Find the dispatched call and argument shape.
        let mut handler = None;
        let mut arg = ArgSig::None;
        let mut tail = Vec::new();
        collect_tail_calls_with_args(body, &mut tail);
        if let Some((func, args)) = tail.into_iter().next() {
            // Argument signature from the call-site cast.
            for a in &args {
                if let Expr::Cast { ty, expr } = a {
                    let _ = expr;
                    if let Some(tag) = ty.struct_tag() {
                        arg = ArgSig::StructPtr(tag.to_string());
                    } else if ty.ptr > 0 && (ty.base.contains("u32") || ty.base == "uint") {
                        arg = ArgSig::IdPtr(
                            self.idptr_resource(&func).unwrap_or_else(|| "id".into()),
                        );
                    }
                } else if matches!(a, Expr::Ident(i) if i == "arg") && arg == ArgSig::None {
                    arg = ArgSig::Int;
                }
            }
            // Refine via the handler signature if its source is present.
            if let Some(hf) = self.find_fn(&func) {
                if arg == ArgSig::None || arg == ArgSig::Int {
                    for (_, ty) in &hf.params {
                        if let Some(tag) = ty.struct_tag() {
                            if ty.ptr > 0 && tag != "file" && tag != "socket" {
                                arg = ArgSig::StructPtr(tag.to_string());
                            }
                        }
                    }
                }
            } else if arg == ArgSig::None {
                facts.push(Fact::UnknownFunc {
                    name: func.clone(),
                    usage: format!("case {name}: return {func}(file, arg);"),
                });
            }
            handler = Some(func);
        }
        let dir =
            handler
                .as_deref()
                .and_then(|h| self.find_fn(h))
                .map_or("inout".to_string(), |hf| {
                    let mut has_to = false;
                    let mut has_from = false;
                    kgpt_csrc::ast::walk_exprs(&hf.body, &mut |e| {
                        if let Expr::Call { func, .. } = e {
                            if func == "copy_to_user" {
                                has_to = true;
                            }
                            if func == "copy_from_user" {
                                has_from = true;
                            }
                        }
                    });
                    match (has_from, has_to) {
                        (true, true) => "inout".into(),
                        (false, true) => "out".into(),
                        _ => "in".into(),
                    }
                });
        facts.push(Fact::Ident {
            name,
            handler,
            arg,
            dir,
        });
    }

    /// Resolve a dispatch label to the user-facing macro name.
    fn label_macro(&self, label: &Expr) -> Option<String> {
        match label {
            Expr::Ident(n) => Some(n.clone()),
            // `_IOC_NR(CMD)` / `(CMD & 0xff)` — the transform-reversal
            // capability: name the original macro.
            Expr::Call { func, args } if func == "_IOC_NR" => {
                let inner = args.first()?.as_ident()?.to_string();
                if self.cap.follows_transforms {
                    Some(inner)
                } else {
                    // A weak model still sees the macro name but may
                    // mis-handle it; recall gates already thin these.
                    Some(inner)
                }
            }
            Expr::Binary { op: "&", lhs, .. } => lhs.as_ident().map(str::to_string),
            Expr::Num(_) => None, // raw numbers carry no name; skip
            _ => None,
        }
    }

    fn idptr_resource(&self, handler_fn: &str) -> Option<String> {
        let f = self.find_fn(handler_fn)?;
        let mut res = None;
        kgpt_csrc::ast::walk_exprs(&f.body, &mut |e| {
            if let Expr::Call { func, .. } = e {
                if let Some(idx) = func.find("_lookup_") {
                    res = Some(func[idx + "_lookup_".len()..].to_string());
                }
            }
        });
        res
    }

    /// Seeded repairable defect: misspell the first command macro on the
    /// first attempt (caught as `UnknownConst` by the validator, fixed
    /// on the repair pass).
    fn inject_ident_defect(&self, facts: &mut [Fact]) {
        if self.attempt > 0 || !self.draw("defect", self.cap.defect_bp) {
            return;
        }
        if let Some(Fact::Ident { name, .. }) =
            facts.iter_mut().find(|f| matches!(f, Fact::Ident { .. }))
        {
            name.push_str("_REQ");
        }
    }

    // ---- type stage ---------------------------------------------------

    fn type_stage(&self, facts: &mut Vec<Fact>) {
        let wanted: Vec<String> = if self.prompt.want_structs.is_empty() {
            // All-in-one: every struct in the prompt.
            self.corpus
                .files()
                .iter()
                .flat_map(|f| f.items.iter())
                .filter_map(|i| match &i.kind {
                    CItemKind::Struct(s) => Some(s.name.clone()),
                    _ => None,
                })
                .collect()
        } else {
            self.prompt.want_structs.clone()
        };
        for name in wanted {
            let Some(def) = self
                .corpus
                .struct_def(&name)
                .or_else(|| self.usage_corpus.struct_def(&name))
            else {
                facts.push(Fact::UnknownStruct(name));
                continue;
            };
            self.emit_struct(def, facts);
        }
    }

    fn emit_struct(&self, def: &CStructDef, facts: &mut Vec<Fact>) {
        let roles = self.field_roles(def);
        let mut lines = Vec::new();
        let open = if def.is_union { '[' } else { '{' };
        let close = if def.is_union { ']' } else { '}' };
        lines.push(format!("{}_{} {open}", self.prefix, def.name));
        let err_type = self.attempt == 0
            && Capability::draw(
                self.cap.err_type_bp,
                &format!("{}:typeerr:{}", self.prefix, def.name),
                self.seed,
            );
        for (i, field) in def.fields.iter().enumerate() {
            let role = roles.get(&field.name).cloned().unwrap_or(RoleHint::Plain);
            let mut ty = self.syz_field(field, &role, facts);
            if err_type && i == 0 {
                // Wrong-width defect (§5.1.3's "incorrect types"): not a
                // validation error, only a semantic one.
                ty = ty
                    .replacen("int32", "int64", 1)
                    .replacen("int16", "int32", 1);
            }
            let dir_attr = if matches!(role, RoleHint::OutId(_)) {
                " (out)"
            } else {
                ""
            };
            lines.push(format!("\t{} {ty}{dir_attr}", field.name));
        }
        lines.push(close.to_string());
        facts.push(Fact::SyzType {
            c_name: def.name.clone(),
            text: lines.join("\n"),
        });
        // Repairable defect at the type level: reference a bogus nested
        // type (validator: UndefinedType) — only on the first attempt.
        if self.attempt == 0
            && self.draw(&format!("typedefect:{}", def.name), self.cap.defect_bp / 2)
        {
            if let Some(Fact::SyzType { text, .. }) = facts.last_mut() {
                *text = text.replacen("int8", "int8_t", 1);
            }
        }
    }

    fn syz_field(&self, field: &CField, role: &RoleHint, facts: &mut Vec<Fact>) -> String {
        use RoleHint::{Flags, InId, LenOf, Magic, OutId, Range, Reserved};
        let bits = int_bits_of(&field.ty);
        match role {
            Range(lo, hi) => return format!("{bits}[{lo}:{hi}]"),
            Magic(v) => return format!("const[{v:#x}, {bits}]"),
            Reserved => return format!("const[0, {bits}]"),
            Flags(set, values) if self.cap.flags_inference => {
                facts.push(Fact::FlagSet {
                    name: set.clone(),
                    values: values.clone(),
                });
                return format!("flags[{set}, {bits}]");
            }
            LenOf(target) if self.cap.len_inference => {
                return format!("len[{target}, {bits}]");
            }
            OutId(res) | InId(res) => {
                facts.push(Fact::ResourceDef { name: res.clone() });
                return res.clone();
            }
            _ => {}
        }
        self.plain_c_type(&field.ty, facts)
    }

    fn plain_c_type(&self, ty: &CType, facts: &mut Vec<Fact>) -> String {
        use kgpt_csrc::ast::CArraySize;
        let base = if let Some(tag) = ty.struct_tag() {
            if self
                .corpus
                .struct_def(tag)
                .or_else(|| self.usage_corpus.struct_def(tag))
                .is_none()
            {
                facts.push(Fact::UnknownStruct(tag.to_string()));
            }
            format!("{}_{tag}", self.prefix)
        } else {
            int_bits_of(ty).to_string()
        };
        if ty.base == "char" || ty.base == "uchar" {
            if let Some(CArraySize::Fixed(n)) = &ty.array {
                return format!("array[int8, {n}]");
            }
            if let Some(CArraySize::Flex) = &ty.array {
                return "array[int8]".to_string();
            }
        }
        match &ty.array {
            Some(CArraySize::Fixed(n)) => format!("array[{base}, {n}]"),
            Some(CArraySize::Named(name)) => {
                let n = self.resolve_const(name).unwrap_or(1);
                format!("array[{base}, {n}]")
            }
            Some(CArraySize::Flex) => format!("array[{base}]"),
            None => base,
        }
    }

    fn resolve_const(&self, name: &str) -> Option<u64> {
        cmacro::eval_const(&self.corpus, name)
            .or_else(|| cmacro::eval_const(&self.usage_corpus, name))
    }

    /// Infer semantic roles by scanning every function body in the
    /// prompt for checks against `p.<field>`.
    fn field_roles(&self, def: &CStructDef) -> std::collections::BTreeMap<String, RoleHint> {
        let mut roles = std::collections::BTreeMap::new();
        let field_names: BTreeSet<&str> = def.fields.iter().map(|f| f.name.as_str()).collect();
        for file in self.corpus.files() {
            for item in &file.items {
                let CItemKind::Function(f) = &item.kind else {
                    continue;
                };
                // Only consider handlers that actually use this struct.
                if !item.text.contains(&def.name) && !def.is_union {
                    continue;
                }
                kgpt_csrc::ast::walk_stmts(&f.body, &mut |s| {
                    self.role_from_stmt(s, &field_names, &mut roles);
                });
            }
        }
        roles
    }

    fn role_from_stmt(
        &self,
        s: &Stmt,
        fields: &BTreeSet<&str>,
        roles: &mut std::collections::BTreeMap<String, RoleHint>,
    ) {
        match s {
            Stmt::If { cond, .. } => self.role_from_cond(cond, fields, roles),
            // `for (i = 0; i < p.count; i++) process(&p.items[i]);`
            Stmt::For {
                cond: Some(Expr::Binary { op: "<", rhs, .. }),
                body,
                ..
            } => {
                if let Some(count_field) = member_field(rhs, fields) {
                    let mut target = None;
                    kgpt_csrc::ast::walk_exprs(body, &mut |e| {
                        if let Expr::Index { base, .. } = e {
                            if let Some(t) = member_field(base, fields) {
                                target = Some(t);
                            }
                        }
                    });
                    if let Some(t) = target {
                        roles.insert(count_field, RoleHint::LenOf(t));
                    }
                }
            }
            Stmt::Expr(e) | Stmt::Return(Some(e)) => self.role_from_expr(e, fields, roles),
            Stmt::Decl { init: Some(e), .. } => self.role_from_expr(e, fields, roles),
            _ => {}
        }
    }

    fn role_from_cond(
        &self,
        cond: &Expr,
        fields: &BTreeSet<&str>,
        roles: &mut std::collections::BTreeMap<String, RoleHint>,
    ) {
        match cond {
            // `if (p.f)` → reserved-must-be-zero
            Expr::Member { .. } => {
                if let Some(f) = member_field(cond, fields) {
                    roles.entry(f).or_insert(RoleHint::Reserved);
                }
            }
            Expr::Binary { op, lhs, rhs } => match *op {
                ">" => {
                    if let (Some(f), Expr::Num(hi)) = (member_field(lhs, fields), rhs.as_ref()) {
                        match roles.get(&f) {
                            Some(RoleHint::Range(lo, _)) => {
                                let lo = *lo;
                                roles.insert(f, RoleHint::Range(lo, *hi));
                            }
                            _ => {
                                roles.insert(f, RoleHint::Range(0, *hi));
                            }
                        }
                    }
                }
                "<" => {
                    if let (Some(f), Expr::Num(lo)) = (member_field(lhs, fields), rhs.as_ref()) {
                        match roles.get(&f) {
                            Some(RoleHint::Range(_, hi)) => {
                                let hi = *hi;
                                roles.insert(f, RoleHint::Range(*lo, hi));
                            }
                            _ => {
                                roles.insert(f, RoleHint::Range(*lo, u64::MAX));
                            }
                        }
                    }
                }
                "!=" => {
                    if let (Some(f), Expr::Num(v)) = (member_field(lhs, fields), rhs.as_ref()) {
                        roles.insert(f, RoleHint::Magic(*v));
                    }
                }
                "||" => {
                    self.role_from_cond(lhs, fields, roles);
                    self.role_from_cond(rhs, fields, roles);
                }
                "&" => {
                    // `p.f & ~mask` → flags
                    if let (Some(f), Expr::Unary { op: "~", expr }) =
                        (member_field(lhs, fields), rhs.as_ref())
                    {
                        if let Expr::Num(mask) = expr.as_ref() {
                            let values = self.flag_macros_for_mask(*mask);
                            if !values.is_empty() {
                                roles.insert(
                                    f.clone(),
                                    RoleHint::Flags(format!("{}_{f}_flags", self.prefix), values),
                                );
                            }
                        }
                    }
                }
                _ => {}
            },
            Expr::Unary { op: "!", expr } => self.role_from_expr(expr, fields, roles),
            _ => {}
        }
    }

    fn role_from_expr(
        &self,
        e: &Expr,
        fields: &BTreeSet<&str>,
        roles: &mut std::collections::BTreeMap<String, RoleHint>,
    ) {
        kgpt_csrc::ast::walk_expr(e, &mut |x| match x {
            // `p.id = X_alloc_res(...)` → out resource
            Expr::Assign { lhs, rhs } => {
                if let (Some(f), Expr::Call { func, .. }) =
                    (member_field(lhs, fields), rhs.as_ref())
                {
                    if let Some(idx) = func.find("_alloc_") {
                        roles.insert(f, RoleHint::OutId(func[idx + 7..].to_string()));
                    }
                }
            }
            // `X_lookup_res(p.id)` → in resource
            Expr::Call { func, args } => {
                if let Some(idx) = func.find("_lookup_") {
                    if let Some(f) = args.first().and_then(|a| member_field(a, fields)) {
                        roles.insert(f, RoleHint::InId(func[idx + 8..].to_string()));
                    }
                }
            }
            _ => {}
        });
    }

    /// Flag macros in the prompt whose values fit inside `mask`.
    fn flag_macros_for_mask(&self, mask: u64) -> Vec<String> {
        let mut out = Vec::new();
        for file in self.corpus.files() {
            for item in &file.items {
                if let CItemKind::Macro(m) = &item.kind {
                    if m.params.is_none() {
                        if let Some(v) = self.resolve_const(&m.name) {
                            if v != 0 && v & !mask == 0 && v.count_ones() == 1 {
                                out.push(m.name.clone());
                            }
                        }
                    }
                }
            }
        }
        out
    }

    // ---- dependency stage ----------------------------------------------

    fn dependency_stage(&self, facts: &mut Vec<Fact>) {
        for file in self.corpus.files() {
            for item in &file.items {
                let CItemKind::Function(f) = &item.kind else {
                    continue;
                };
                let mut creates: Option<String> = None;
                kgpt_csrc::ast::walk_exprs(&f.body, &mut |e| {
                    if let Expr::Call { func, args } = e {
                        if func == "anon_inode_getfd" {
                            if let Some(fops) = args.get(1).and_then(|a| a.as_ident()) {
                                creates = Some(fops.to_string());
                            }
                        }
                    }
                });
                if let Some(fops_var) = creates {
                    // Which command dispatches to this function? Use the
                    // caller name convention `{prefix}_{cmd_lower}`.
                    let cmd = f
                        .name
                        .strip_prefix(&format!("{}_", self.prefix))
                        .map(str::to_uppercase)
                        .unwrap_or_else(|| f.name.to_uppercase());
                    facts.push(Fact::CreatesFd { fops_var, cmd });
                }
            }
        }
    }
}

/// Role hints recovered from handler bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
enum RoleHint {
    Plain,
    Range(u64, u64),
    Magic(u64),
    Reserved,
    Flags(String, Vec<String>),
    LenOf(String),
    OutId(String),
    InId(String),
}

fn member_field(e: &Expr, fields: &BTreeSet<&str>) -> Option<String> {
    match e {
        Expr::Member { field, .. } if fields.contains(field.as_str()) => Some(field.clone()),
        Expr::Unary { op: "&", expr } => member_field(expr, fields),
        _ => None,
    }
}

fn strip_casts(e: &Expr) -> &Expr {
    match e {
        Expr::Cast { expr, .. } => strip_casts(expr),
        other => other,
    }
}

fn collect_tail_calls(body: &[Stmt], out: &mut Vec<String>) {
    kgpt_csrc::ast::walk_stmts(body, &mut |s| {
        if let Stmt::Return(Some(Expr::Call { func, .. })) = s {
            if !func.starts_with('<') && func != "copy_from_user" && func != "copy_to_user" {
                out.push(func.clone());
            }
        }
    });
}

fn collect_tail_calls_with_args(body: &[Stmt], out: &mut Vec<(String, Vec<Expr>)>) {
    kgpt_csrc::ast::walk_stmts(body, &mut |s| {
        if let Stmt::Return(Some(Expr::Call { func, args })) = s {
            if !func.starts_with('<') {
                out.push((func.clone(), args.clone()));
            }
        }
    });
}

fn int_bits_of(ty: &CType) -> &'static str {
    if ty.ptr > 0 {
        return "int64";
    }
    match ty.base.as_str() {
        "char" | "uchar" | "u8" | "s8" | "__u8" | "__s8" | "bool" => "int8",
        "short" | "ushort" | "u16" | "s16" | "__u16" | "__s16" | "__le16" | "__be16" => "int16",
        "long" | "ulong" | "u64" | "s64" | "__u64" | "__s64" | "__le64" | "__be64" | "size_t"
        | "loff_t" => "int64",
        _ => "int32",
    }
}

fn parse_lenient(items: &[String]) -> Corpus {
    // Try the concatenation first (cheapest); fall back to per-item
    // parsing, dropping any item the (possibly truncated) prompt broke.
    let joined = items.join("\n\n");
    if let Ok(file) = cparse("prompt.c", &joined) {
        return Corpus::build(vec![file]);
    }
    let mut files = Vec::new();
    for (i, item) in items.iter().enumerate() {
        if let Ok(f) = cparse(&format!("prompt{i}.c"), item) {
            files.push(f);
        }
    }
    Corpus::build(files)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgpt_csrc::emit::emit_blueprint;
    use kgpt_csrc::flagship;

    fn prompt_for_dm(extra: &[&str]) -> Prompt {
        let bp = flagship::dm();
        let src = emit_blueprint(&bp);
        let file = cparse("dm.c", &src).unwrap();
        // Initial prompt: the registered ioctl fn + usage (fops +
        // miscdevice) — what KernelGPT's first round provides.
        let mut source: Vec<String> = file
            .items
            .iter()
            .filter(|i| i.name() == "dm_ctl_ioctl" || extra.contains(&i.name()))
            .map(|i| i.text.clone())
            .collect();
        source.sort();
        let usage: Vec<String> = file
            .items
            .iter()
            .filter(|i| i.name() == "_dm_fops" || i.name() == "_dm_misc")
            .map(|i| i.text.clone())
            .collect();
        Prompt {
            task: Some(Task::Identifier),
            target_func: Some("dm_ctl_ioctl".into()),
            handler_var: Some("_dm_fops".into()),
            want_structs: vec![],
            source,
            usage,
            known: vec![],
            errors: vec![],
        }
    }

    fn chat(model: &OracleModel, p: &Prompt) -> Vec<Fact> {
        let resp = model.chat(&ChatRequest::new(p.render()));
        parse_facts(&resp.text)
    }

    #[test]
    fn first_round_reports_unknown_dispatcher() {
        let model = OracleModel::new(ModelKind::Gpt4, 0);
        let facts = chat(&model, &prompt_for_dm(&[]));
        // dm_ctl_ioctl delegates to dm_do_ioctl which is not provided.
        assert!(
            facts
                .iter()
                .any(|f| matches!(f, Fact::UnknownFunc { name, .. } if name == "dm_do_ioctl")),
            "{facts:?}"
        );
        // Device path resolved from .nodename (GPT-4 capability).
        assert!(facts
            .iter()
            .any(|f| matches!(f, Fact::DevPath(p) if p == "/dev/mapper/control")));
    }

    #[test]
    fn nodename_ignored_by_weak_model() {
        let model = OracleModel::new(ModelKind::Gpt35, 0);
        let facts = chat(&model, &prompt_for_dm(&[]));
        assert!(
            facts
                .iter()
                .any(|f| matches!(f, Fact::DevPath(p) if p == "/dev/dm-controller")),
            "{facts:?}"
        );
    }

    #[test]
    fn lookup_table_round_finds_idents() {
        // Provide the whole chain: dispatcher, lookup fn, table, and
        // per-command handlers.
        let bp = flagship::dm();
        let src = emit_blueprint(&bp);
        let file = cparse("dm.c", &src).unwrap();
        let source: Vec<String> = file.items.iter().map(|i| i.text.clone()).collect();
        let p = Prompt {
            task: Some(Task::Identifier),
            target_func: Some("dm_ctl_ioctl".into()),
            handler_var: Some("_dm_fops".into()),
            source,
            usage: vec![],
            ..Prompt::default()
        };
        let model = OracleModel::new(ModelKind::Gpt4, 3);
        let facts = chat(&model, &p);
        let idents: Vec<&Fact> = facts
            .iter()
            .filter(|f| matches!(f, Fact::Ident { .. }))
            .collect();
        // 18 commands; GPT-4 recall is 100%.
        assert_eq!(idents.len(), 18, "{idents:?}");
        assert!(facts
            .iter()
            .any(|f| matches!(f, Fact::Transform { kind } if kind == "iocnr")));
        // Struct argument recovered from the call-site cast.
        assert!(facts.iter().any(|f| matches!(
            f,
            Fact::Ident { name, arg: ArgSig::StructPtr(s), .. }
            if name == "DM_VERSION" && s == "dm_ioctl"
        )));
    }

    #[test]
    fn type_stage_recovers_roles() {
        let bp = flagship::dm();
        let src = emit_blueprint(&bp);
        let file = cparse("dm.c", &src).unwrap();
        let source: Vec<String> = file.items.iter().map(|i| i.text.clone()).collect();
        let p = Prompt {
            task: Some(Task::Types),
            handler_var: Some("_dm_fops".into()),
            want_structs: vec!["dm_ioctl".into()],
            source,
            ..Prompt::default()
        };
        // Seed chosen so no defect fires for this handler.
        let model = OracleModel::new(ModelKind::Gpt4, 9);
        let facts = chat(&model, &p);
        let ty = facts
            .iter()
            .find_map(|f| match f {
                Fact::SyzType { c_name, text } if c_name == "dm_ioctl" => Some(text.clone()),
                _ => None,
            })
            .expect("dm_ioctl type");
        assert!(ty.contains("target_count len[targets"), "{ty}");
        assert!(
            ty.contains("flags flags[dm_flags_flags") || ty.contains("flags["),
            "{ty}"
        );
        // Nested struct is requested or resolved.
        assert!(
            ty.contains("dm_dm_target_spec")
                || facts
                    .iter()
                    .any(|f| matches!(f, Fact::UnknownStruct(n) if n == "dm_target_spec")),
            "{ty}"
        );
    }

    #[test]
    fn dependency_stage_finds_kvm_chain() {
        let bp = flagship::kvm();
        let src = emit_blueprint(&bp);
        let file = cparse("kvm.c", &src).unwrap();
        let source: Vec<String> = file.items.iter().map(|i| i.text.clone()).collect();
        let p = Prompt {
            task: Some(Task::Dependency),
            handler_var: Some("_kvm_fops".into()),
            source,
            ..Prompt::default()
        };
        let model = OracleModel::new(ModelKind::Gpt4, 0);
        let facts = chat(&model, &p);
        assert!(
            facts.iter().any(|f| matches!(
                f,
                Fact::CreatesFd { fops_var, cmd }
                if fops_var == "_kvm_vm_fops" && cmd == "KVM_CREATE_VM"
            )),
            "{facts:?}"
        );
    }

    #[test]
    fn opaque_runtime_dispatch_stops_analysis() {
        let bp = flagship::ptmx();
        let src = emit_blueprint(&bp);
        let file = cparse("ptmx.c", &src).unwrap();
        let source: Vec<String> = file.items.iter().map(|i| i.text.clone()).collect();
        let p = Prompt {
            task: Some(Task::Identifier),
            target_func: Some("ptmx_ctl_ioctl".into()),
            handler_var: Some("_ptmx_fops".into()),
            source,
            ..Prompt::default()
        };
        let model = OracleModel::new(ModelKind::Gpt4, 1);
        let facts = chat(&model, &p);
        let names: Vec<String> = facts
            .iter()
            .filter_map(|f| match f {
                Fact::Ident { name, .. } => Some(name.clone()),
                _ => None,
            })
            .collect();
        assert!(!names.iter().any(|n| n.contains("TIOCLINUX")), "{names:?}");
        assert!(names.iter().any(|n| n.contains("TIOCGPTN")), "{names:?}");
    }

    #[test]
    fn context_truncation_drops_late_commands() {
        // Same prompt, tiny window: GPT-3.5 on a big file.
        let bp = flagship::dm();
        let src = emit_blueprint(&bp);
        let file = cparse("dm.c", &src).unwrap();
        let source: Vec<String> = file.items.iter().map(|i| i.text.clone()).collect();
        let p = Prompt {
            task: Some(Task::Identifier),
            target_func: Some("dm_ctl_ioctl".into()),
            handler_var: Some("_dm_fops".into()),
            source,
            ..Prompt::default()
        };
        let strong = OracleModel::new(ModelKind::Gpt4, 0);
        let weak = OracleModel::new(ModelKind::Gpt35, 0);
        let strong_idents = chat(&strong, &p)
            .iter()
            .filter(|f| matches!(f, Fact::Ident { .. }))
            .count();
        let weak_idents = chat(&weak, &p)
            .iter()
            .filter(|f| matches!(f, Fact::Ident { .. }))
            .count();
        assert!(
            weak_idents < strong_idents,
            "{weak_idents} vs {strong_idents}"
        );
    }

    #[test]
    fn usage_metering_accumulates() {
        let model = OracleModel::new(ModelKind::Gpt4, 0);
        let p = prompt_for_dm(&[]);
        let _ = model.chat(&ChatRequest::new(p.render()));
        let _ = model.chat(&ChatRequest::new(p.render()));
        let u = model.total_usage();
        assert_eq!(u.requests, 2);
        assert!(u.input_tokens > 100);
        assert!(u.output_tokens > 5);
    }

    #[test]
    fn prefix_derivation() {
        assert_eq!(prefix_of_ops_var("_dm_fops"), "dm");
        assert_eq!(prefix_of_ops_var("rds_proto_ops"), "rds");
        assert_eq!(prefix_of_ops_var("_kvm_vm_fops"), "kvm_vm");
    }
}
