//! # kgpt-llm
//!
//! The *analysis LLM* substrate of the KernelGPT reproduction.
//!
//! The paper drives GPT-4 through the OpenAI API. Offline, we keep the
//! client architecture — a [`LanguageModel`] trait taking a textual
//! prompt and returning a textual completion plus token usage — and
//! substitute the network model with a deterministic **oracle**
//! ([`oracle::OracleModel`]) that *re-parses the C code embedded in the
//! prompt* and answers in the structured format the paper's few-shot
//! examples elicit (`IDENT`/`UNKNOWN`/`SYZTYPE`/`DEP` lines; see
//! [`protocol`]).
//!
//! Crucially, the oracle only knows what the prompt contains: if a
//! handler delegates to a function whose source is absent, it must
//! answer `UNKNOWN FUNC=...` exactly like a real LLM that cannot see
//! the callee — which keeps Algorithm 1's iterative loop, the
//! all-in-one ablation (context-window overflow) and the model-choice
//! ablation (capability [`profile`]s) faithful.
//!
//! Token usage and dollar cost are metered per request ([`usage`]),
//! reproducing the §5.1.1 cost accounting.

pub mod oracle;
pub mod profile;
pub mod protocol;
pub mod usage;

pub use oracle::OracleModel;
pub use profile::{Capability, ModelKind};
pub use usage::{Usage, UsageMeter};

/// A chat request: one prompt, one completion (the paper's pipeline is
/// single-turn per step; iteration happens at the KernelGPT layer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChatRequest {
    /// Full prompt text (instructions + few-shot + sections).
    pub prompt: String,
    /// Sampling temperature ×1000 (paper: 0.1 → 100). The oracle is
    /// deterministic; the field is kept for API fidelity.
    pub temperature_milli: u32,
    /// Repair/retry attempt index (0 = first pass). The oracle's seeded
    /// defect injection only fires on the first pass, so repair prompts
    /// converge — mirroring how a real LLM fixes its own output when
    /// shown validator errors.
    pub attempt: u32,
}

impl ChatRequest {
    /// First-pass request with the paper's default temperature.
    #[must_use]
    pub fn new(prompt: String) -> ChatRequest {
        ChatRequest {
            prompt,
            temperature_milli: 100,
            attempt: 0,
        }
    }
}

/// A completion plus usage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChatResponse {
    /// Completion text.
    pub text: String,
    /// Tokens consumed/produced by this call.
    pub usage: Usage,
}

/// Abstraction over the analysis LLM.
pub trait LanguageModel: Send + Sync {
    /// Model identifier (for reports).
    fn name(&self) -> &str;

    /// Complete a request.
    fn chat(&self, request: &ChatRequest) -> ChatResponse;

    /// Cumulative usage across all calls.
    fn total_usage(&self) -> Usage;
}

/// Approximate token count of a text (chars/4, the usual heuristic).
#[must_use]
pub fn approx_tokens(text: &str) -> u64 {
    (text.len() as u64).div_ceil(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_tokens_rounds_up() {
        assert_eq!(approx_tokens(""), 0);
        assert_eq!(approx_tokens("abc"), 1);
        assert_eq!(approx_tokens("abcd"), 1);
        assert_eq!(approx_tokens("abcde"), 2);
    }

    #[test]
    fn chat_request_defaults() {
        let r = ChatRequest::new("hi".into());
        assert_eq!(r.temperature_milli, 100);
        assert_eq!(r.attempt, 0);
    }
}
