//! The textual protocol between KernelGPT and the analysis LLM.
//!
//! Prompts are plain text with `##`-delimited sections (mirroring the
//! paper's Figure 6 template); completions are line-oriented facts —
//! the shape a few-shot-prompted LLM is instructed to produce. Both
//! sides round-trip through text: KernelGPT renders a [`Prompt`] and
//! parses [`Fact`]s back; the oracle parses the prompt text (it never
//! sees internal structures) and renders facts.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Which analysis stage a prompt requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Task {
    /// §3.1.1 identifier deduction.
    Identifier,
    /// §3.1.2 type recovery.
    Types,
    /// §3.1.3 dependency analysis.
    Dependency,
    /// §3.2 specification repair.
    Repair,
    /// All-in-one (the §5.2.3 ablation).
    AllInOne,
}

impl Task {
    fn keyword(self) -> &'static str {
        match self {
            Task::Identifier => "identifier",
            Task::Types => "types",
            Task::Dependency => "dependency",
            Task::Repair => "repair",
            Task::AllInOne => "all",
        }
    }

    fn from_keyword(s: &str) -> Option<Task> {
        Some(match s {
            "identifier" => Task::Identifier,
            "types" => Task::Types,
            "dependency" => Task::Dependency,
            "repair" => Task::Repair,
            "all" => Task::AllInOne,
            _ => return None,
        })
    }
}

/// Argument signature of a command, as communicated by the LLM.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArgSig {
    /// No argument.
    None,
    /// Plain integer.
    Int,
    /// Pointer to a named C struct.
    StructPtr(String),
    /// Pointer to an id of the named resource.
    IdPtr(String),
}

impl ArgSig {
    fn render(&self) -> String {
        match self {
            ArgSig::None => "none".into(),
            ArgSig::Int => "int".into(),
            ArgSig::StructPtr(s) => format!("struct:{s}"),
            ArgSig::IdPtr(r) => format!("idptr:{r}"),
        }
    }

    fn parse(s: &str) -> Option<ArgSig> {
        Some(match s {
            "none" => ArgSig::None,
            "int" => ArgSig::Int,
            other => {
                if let Some(st) = other.strip_prefix("struct:") {
                    ArgSig::StructPtr(st.to_string())
                } else if let Some(r) = other.strip_prefix("idptr:") {
                    ArgSig::IdPtr(r.to_string())
                } else {
                    return None;
                }
            }
        })
    }
}

/// One fact in a completion.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fact {
    /// Device node path.
    DevPath(String),
    /// Socket registration facts (fields may be unknown).
    Socket {
        /// `AF_*` macro name, if determinable.
        family_name: Option<String>,
        /// `SOCK_*` numeric type.
        sock_type: Option<u64>,
        /// Protocol number.
        proto: Option<u64>,
        /// `SOL_*` level macro name.
        level_name: Option<String>,
    },
    /// A generic socket call implementation (`bind` → `rds_bind`).
    SockCallFn {
        /// Call name (`bind`, `connect`, `sendmsg`, `recvmsg`, `accept`).
        call: String,
        /// Implementing function.
        func: String,
    },
    /// Command-value transform observed in the dispatcher.
    Transform {
        /// `"none"`, `"iocnr"` or `"mask:0x.."`.
        kind: String,
    },
    /// A discovered command.
    Ident {
        /// Macro name (the identifier value, symbolically).
        name: String,
        /// Sub-handler function, if dispatched to one.
        handler: Option<String>,
        /// Argument signature.
        arg: ArgSig,
        /// Direction keyword (`in`/`out`/`inout`).
        dir: String,
    },
    /// A function whose source is needed next round.
    UnknownFunc {
        /// Function name.
        name: String,
        /// Invocation context (free text).
        usage: String,
    },
    /// A struct whose definition is needed next round.
    UnknownStruct(String),
    /// A global variable (lookup table) needed next round.
    UnknownVar {
        /// Variable name.
        name: String,
        /// Usage context.
        usage: String,
    },
    /// A recovered type, as syzlang text (possibly several items).
    SyzType {
        /// The C struct name it corresponds to.
        c_name: String,
        /// syzlang item text.
        text: String,
    },
    /// A flag set recovered from a mask check.
    FlagSet {
        /// Set name.
        name: String,
        /// Member macro names.
        values: Vec<String>,
    },
    /// A resource the handler issues (queue ids etc.).
    ResourceDef {
        /// Resource name.
        name: String,
    },
    /// A command creates a new fd served by another ops variable.
    CreatesFd {
        /// The `file_operations` variable of the sub-handler.
        fops_var: String,
        /// The creating command's macro name.
        cmd: String,
    },
    /// Free-text commentary (readability; ignored by the pipeline).
    Note(String),
}

/// A rendered prompt.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Prompt {
    /// Requested stage.
    pub task: Option<Task>,
    /// Entry function to analyze (dispatcher or sub-handler).
    pub target_func: Option<String>,
    /// The ops variable (handler identity), for context.
    pub handler_var: Option<String>,
    /// Structs whose syzlang form is wanted (type stage).
    pub want_structs: Vec<String>,
    /// Raw C item texts.
    pub source: Vec<String>,
    /// Raw usage-site texts.
    pub usage: Vec<String>,
    /// Facts established in earlier rounds.
    pub known: Vec<Fact>,
    /// Validator errors (repair stage).
    pub errors: Vec<String>,
}

const INSTRUCTIONS: &str = "You are analyzing Linux kernel source code to produce Syzkaller \
(syzlang) specifications. Answer ONLY with fact lines: IDENT/DEVPATH/SOCKET/SOCKCALL/TRANSFORM/\
UNKNOWN/SYZTYPE/FLAGSET/RESOURCE/DEP/NOTE. If the logic you need lives in a function, struct or \
table that is not shown, list it in an UNKNOWN line instead of guessing.";

impl Prompt {
    /// Render to the textual form sent to the model.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# INSTRUCTIONS\n{INSTRUCTIONS}\n");
        if let Some(t) = self.task {
            let _ = writeln!(out, "## TASK\n{}\n", t.keyword());
        }
        if let Some(f) = &self.target_func {
            let _ = writeln!(out, "## TARGET-FUNC\n{f}\n");
        }
        if let Some(v) = &self.handler_var {
            let _ = writeln!(out, "## HANDLER-VAR\n{v}\n");
        }
        if !self.want_structs.is_empty() {
            let _ = writeln!(out, "## WANT-STRUCTS\n{}\n", self.want_structs.join("\n"));
        }
        if !self.known.is_empty() {
            let _ = writeln!(out, "## KNOWN\n{}", render_facts(&self.known));
        }
        if !self.errors.is_empty() {
            let _ = writeln!(out, "## ERRORS\n{}\n", self.errors.join("\n"));
        }
        if !self.usage.is_empty() {
            let _ = writeln!(out, "## USAGE\n{}\n", self.usage.join("\n\n"));
        }
        if !self.source.is_empty() {
            let _ = writeln!(out, "## SOURCE\n{}\n", self.source.join("\n\n"));
        }
        out
    }

    /// Parse a rendered prompt (oracle side).
    #[must_use]
    pub fn parse(text: &str) -> Prompt {
        let mut p = Prompt::default();
        let mut section = String::new();
        let mut buf: Vec<String> = Vec::new();
        let flush = |p: &mut Prompt, section: &str, buf: &mut Vec<String>| {
            let body = buf.join("\n").trim().to_string();
            match section {
                "TASK" => p.task = Task::from_keyword(body.trim()),
                "TARGET-FUNC" if !body.is_empty() => p.target_func = Some(body),
                "TARGET-FUNC" => {}
                "HANDLER-VAR" if !body.is_empty() => p.handler_var = Some(body),
                "HANDLER-VAR" => {}
                "WANT-STRUCTS" => {
                    p.want_structs = body.lines().map(str::to_string).collect();
                }
                "KNOWN" => p.known = parse_facts(&body),
                "ERRORS" => p.errors = body.lines().map(str::to_string).collect(),
                "USAGE" => {
                    p.usage = body
                        .split("\n\n")
                        .filter(|s| !s.trim().is_empty())
                        .map(str::to_string)
                        .collect();
                }
                "SOURCE" => {
                    p.source = body
                        .split("\n\n")
                        .filter(|s| !s.trim().is_empty())
                        .map(str::to_string)
                        .collect();
                }
                _ => {}
            }
            buf.clear();
        };
        for line in text.lines() {
            if let Some(h) = line.strip_prefix("## ") {
                let prev = std::mem::replace(&mut section, h.trim().to_string());
                flush(&mut p, &prev, &mut buf);
            } else if !line.starts_with("# ") {
                buf.push(line.to_string());
            }
        }
        let last = section.clone();
        flush(&mut p, &last, &mut buf);
        p
    }

    /// The concatenated source text (what the oracle re-parses as C).
    #[must_use]
    pub fn source_text(&self) -> String {
        self.source.join("\n\n")
    }

    /// The concatenated usage text.
    #[must_use]
    pub fn usage_text(&self) -> String {
        self.usage.join("\n\n")
    }
}

/// Render facts to completion text.
#[must_use]
pub fn render_facts(facts: &[Fact]) -> String {
    let mut out = String::new();
    for f in facts {
        match f {
            Fact::DevPath(p) => {
                let _ = writeln!(out, "DEVPATH {p}");
            }
            Fact::Socket {
                family_name,
                sock_type,
                proto,
                level_name,
            } => {
                let _ = writeln!(
                    out,
                    "SOCKET family={} type={} proto={} level={}",
                    family_name.as_deref().unwrap_or("?"),
                    sock_type.map_or("?".to_string(), |v| v.to_string()),
                    proto.map_or("?".to_string(), |v| v.to_string()),
                    level_name.as_deref().unwrap_or("?"),
                );
            }
            Fact::SockCallFn { call, func } => {
                let _ = writeln!(out, "SOCKCALL {call}={func}");
            }
            Fact::Transform { kind } => {
                let _ = writeln!(out, "TRANSFORM {kind}");
            }
            Fact::Ident {
                name,
                handler,
                arg,
                dir,
            } => {
                let _ = writeln!(
                    out,
                    "IDENT name={name} handler={} arg={} dir={dir}",
                    handler.as_deref().unwrap_or("-"),
                    arg.render(),
                );
            }
            Fact::UnknownFunc { name, usage } => {
                let _ = writeln!(out, "UNKNOWN FUNC={name} USAGE={usage}");
            }
            Fact::UnknownStruct(n) => {
                let _ = writeln!(out, "UNKNOWN STRUCT={n}");
            }
            Fact::UnknownVar { name, usage } => {
                let _ = writeln!(out, "UNKNOWN VAR={name} USAGE={usage}");
            }
            Fact::SyzType { c_name, text } => {
                let _ = writeln!(out, "SYZTYPE c={c_name}");
                let _ = writeln!(out, "{}", text.trim_end());
                let _ = writeln!(out, "ENDTYPE");
            }
            Fact::FlagSet { name, values } => {
                let _ = writeln!(out, "FLAGSET name={name} values={}", values.join(","));
            }
            Fact::ResourceDef { name } => {
                let _ = writeln!(out, "RESOURCE name={name}");
            }
            Fact::CreatesFd { fops_var, cmd } => {
                let _ = writeln!(out, "DEP creates_fd fops={fops_var} cmd={cmd}");
            }
            Fact::Note(n) => {
                let _ = writeln!(out, "NOTE {n}");
            }
        }
    }
    out
}

fn kv<'a>(token: &'a str, key: &str) -> Option<&'a str> {
    token.strip_prefix(key)?.strip_prefix('=')
}

/// Parse completion text back into facts. Unparseable lines become
/// [`Fact::Note`]s (a real LLM occasionally chats; the pipeline must
/// not choke).
#[must_use]
pub fn parse_facts(text: &str) -> Vec<Fact> {
    let mut out = Vec::new();
    let mut lines = text.lines().peekable();
    while let Some(line) = lines.next() {
        let line = line.trim_end();
        if line.trim().is_empty() {
            continue;
        }
        let mut toks = line.split_whitespace();
        let head = toks.next().unwrap_or_default();
        let rest: Vec<&str> = toks.collect();
        match head {
            "DEVPATH" => {
                if let Some(p) = rest.first() {
                    out.push(Fact::DevPath((*p).to_string()));
                }
            }
            "SOCKET" => {
                let mut family_name = None;
                let mut sock_type = None;
                let mut proto = None;
                let mut level_name = None;
                for t in &rest {
                    if let Some(v) = kv(t, "family") {
                        if v != "?" {
                            family_name = Some(v.to_string());
                        }
                    } else if let Some(v) = kv(t, "type") {
                        sock_type = v.parse().ok();
                    } else if let Some(v) = kv(t, "proto") {
                        proto = v.parse().ok();
                    } else if let Some(v) = kv(t, "level") {
                        if v != "?" {
                            level_name = Some(v.to_string());
                        }
                    }
                }
                out.push(Fact::Socket {
                    family_name,
                    sock_type,
                    proto,
                    level_name,
                });
            }
            "SOCKCALL" => {
                if let Some((call, func)) = rest.first().and_then(|t| t.split_once('=')) {
                    out.push(Fact::SockCallFn {
                        call: call.to_string(),
                        func: func.to_string(),
                    });
                }
            }
            "TRANSFORM" => {
                if let Some(k) = rest.first() {
                    out.push(Fact::Transform {
                        kind: (*k).to_string(),
                    });
                }
            }
            "IDENT" => {
                let mut name = None;
                let mut handler = None;
                let mut arg = ArgSig::None;
                let mut dir = "inout".to_string();
                for t in &rest {
                    if let Some(v) = kv(t, "name") {
                        name = Some(v.to_string());
                    } else if let Some(v) = kv(t, "handler") {
                        if v != "-" {
                            handler = Some(v.to_string());
                        }
                    } else if let Some(v) = kv(t, "arg") {
                        if let Some(a) = ArgSig::parse(v) {
                            arg = a;
                        }
                    } else if let Some(v) = kv(t, "dir") {
                        dir = v.to_string();
                    }
                }
                if let Some(name) = name {
                    out.push(Fact::Ident {
                        name,
                        handler,
                        arg,
                        dir,
                    });
                }
            }
            "UNKNOWN" => {
                if let Some(first) = rest.first() {
                    if let Some(n) = kv(first, "FUNC") {
                        let usage = line.split_once("USAGE=").map(|(_, u)| u).unwrap_or("");
                        out.push(Fact::UnknownFunc {
                            name: n.to_string(),
                            usage: usage.to_string(),
                        });
                    } else if let Some(n) = kv(first, "STRUCT") {
                        out.push(Fact::UnknownStruct(n.to_string()));
                    } else if let Some(n) = kv(first, "VAR") {
                        let usage = line.split_once("USAGE=").map(|(_, u)| u).unwrap_or("");
                        out.push(Fact::UnknownVar {
                            name: n.to_string(),
                            usage: usage.to_string(),
                        });
                    }
                }
            }
            "SYZTYPE" => {
                let c_name = rest
                    .first()
                    .and_then(|t| kv(t, "c"))
                    .unwrap_or("")
                    .to_string();
                let mut body = Vec::new();
                for l in lines.by_ref() {
                    if l.trim() == "ENDTYPE" {
                        break;
                    }
                    body.push(l.to_string());
                }
                out.push(Fact::SyzType {
                    c_name,
                    text: body.join("\n"),
                });
            }
            "FLAGSET" => {
                let mut name = None;
                let mut values = Vec::new();
                for t in &rest {
                    if let Some(v) = kv(t, "name") {
                        name = Some(v.to_string());
                    } else if let Some(v) = kv(t, "values") {
                        values = v.split(',').map(str::to_string).collect();
                    }
                }
                if let Some(name) = name {
                    out.push(Fact::FlagSet { name, values });
                }
            }
            "RESOURCE" => {
                if let Some(n) = rest.first().and_then(|t| kv(t, "name")) {
                    out.push(Fact::ResourceDef {
                        name: n.to_string(),
                    });
                }
            }
            "DEP" => {
                let mut fops = None;
                let mut cmd = None;
                for t in &rest {
                    if let Some(v) = kv(t, "fops") {
                        fops = Some(v.to_string());
                    } else if let Some(v) = kv(t, "cmd") {
                        cmd = Some(v.to_string());
                    }
                }
                if let (Some(fops_var), Some(cmd)) = (fops, cmd) {
                    out.push(Fact::CreatesFd { fops_var, cmd });
                }
            }
            "NOTE" => out.push(Fact::Note(rest.join(" "))),
            _ => out.push(Fact::Note(line.to_string())),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facts_round_trip() {
        let facts = vec![
            Fact::DevPath("/dev/mapper/control".into()),
            Fact::Transform {
                kind: "iocnr".into(),
            },
            Fact::Ident {
                name: "DM_VERSION".into(),
                handler: Some("dm_version".into()),
                arg: ArgSig::StructPtr("dm_ioctl".into()),
                dir: "inout".into(),
            },
            Fact::UnknownFunc {
                name: "lookup_ioctl".into(),
                usage: "fn = lookup_ioctl(cmd, &flags);".into(),
            },
            Fact::UnknownStruct("dm_target_spec".into()),
            Fact::SyzType {
                c_name: "dm_ioctl".into(),
                text: "dm_dm_ioctl {\n\tversion array[int32, 3]\n}".into(),
            },
            Fact::FlagSet {
                name: "dm_flags".into(),
                values: vec!["A".into(), "B".into()],
            },
            Fact::ResourceDef {
                name: "dm_qid".into(),
            },
            Fact::CreatesFd {
                fops_var: "_kvm_vm_fops".into(),
                cmd: "KVM_CREATE_VM".into(),
            },
            Fact::Socket {
                family_name: Some("AF_RDS".into()),
                sock_type: Some(5),
                proto: Some(0),
                level_name: Some("SOL_RDS".into()),
            },
            Fact::SockCallFn {
                call: "bind".into(),
                func: "rds_bind".into(),
            },
            Fact::Note("the nodename field overrides name".into()),
        ];
        let text = render_facts(&facts);
        let parsed = parse_facts(&text);
        assert_eq!(parsed, facts, "text was:\n{text}");
    }

    #[test]
    fn prompt_round_trips() {
        let p = Prompt {
            task: Some(Task::Identifier),
            target_func: Some("dm_ctl_ioctl".into()),
            handler_var: Some("_ctl_fops".into()),
            want_structs: vec!["dm_ioctl".into()],
            source: vec![
                "static long dm_ctl_ioctl(struct file *f, uint c, ulong u) {\n\treturn 0;\n}"
                    .into(),
                "struct dm_ioctl {\n\t__u32 v;\n};".into(),
            ],
            usage: vec!["static struct miscdevice _dm = { .fops = &_ctl_fops };".into()],
            known: vec![Fact::Transform {
                kind: "iocnr".into(),
            }],
            errors: vec!["in `ioctl$X`: type `y` is not defined".into()],
        };
        let text = p.render();
        let q = Prompt::parse(&text);
        assert_eq!(q, p, "rendered:\n{text}");
    }

    #[test]
    fn unparseable_lines_become_notes() {
        let facts = parse_facts("Sure! Here is the specification you asked for:\nDEVPATH /dev/x");
        assert_eq!(facts.len(), 2);
        assert!(matches!(&facts[0], Fact::Note(_)));
        assert!(matches!(&facts[1], Fact::DevPath(p) if p == "/dev/x"));
    }

    #[test]
    fn socket_with_unknown_family() {
        let facts = parse_facts("SOCKET family=? type=5 proto=0 level=SOL_X");
        assert_eq!(
            facts[0],
            Fact::Socket {
                family_name: None,
                sock_type: Some(5),
                proto: Some(0),
                level_name: Some("SOL_X".into()),
            }
        );
    }

    #[test]
    fn source_with_blank_lines_splits_items() {
        let p = Prompt {
            source: vec!["int a;".into(), "int b;".into()],
            ..Prompt::default()
        };
        let q = Prompt::parse(&p.render());
        assert_eq!(q.source.len(), 2);
        assert_eq!(q.source_text(), "int a;\n\nint b;");
    }
}
