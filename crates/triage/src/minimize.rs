//! Deterministic ddmin-style reproducer minimization.
//!
//! The minimizer shrinks a crashing [`Program`] to a **1-minimal**
//! call sequence: removing any single remaining call loses the crash.
//! It owns no execution machinery — candidates are judged by a caller
//! supplied oracle (`FnMut(&Program) -> bool`, "does this still
//! trigger the target signature?"), so the fuzzer can replay through
//! its allocation-reusing lowered `ExecScratch` path while this crate
//! stays independent of the fuzzing loop.
//!
//! Dropping calls invalidates the [`ResRef`] producer indices of the
//! survivors; [`project`] remaps every reference against the kept
//! index set (references to removed producers become dangling and
//! fall back to their recorded fallback value, exactly like a
//! generated dangling reference). The whole pass is a pure function
//! of `(program, oracle)` — no randomness, no clocks — which is what
//! lets the sharded campaign run it at epoch boundaries in shard-id
//! order and stay bit-identical at any thread count.

use kgpt_syzlang::prog::{ProgCall, Program};
use kgpt_syzlang::value::ResRef;
use kgpt_syzlang::Value;

/// Result of a minimization run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinimizeOutcome {
    /// The 1-minimal program (still triggers the oracle).
    pub program: Program,
    /// Oracle invocations (candidate replays) the search spent.
    pub execs: u64,
}

/// Keep only the calls at `keep` (ascending indices into
/// `prog.calls`), remapping every [`ResRef`] producer index of the
/// survivors: a reference to a kept call follows it to its new
/// position, a reference to a removed call becomes dangling (its
/// fallback value is preserved).
#[must_use]
pub fn project(prog: &Program, keep: &[usize]) -> Program {
    let mut map: Vec<Option<usize>> = vec![None; prog.len()];
    for (new_idx, &old_idx) in keep.iter().enumerate() {
        map[old_idx] = Some(new_idx);
    }
    let calls = keep
        .iter()
        .map(|&i| {
            let c = &prog.calls[i];
            ProgCall {
                sys: c.sys,
                args: c.args.iter().map(|v| remap_value(v, &map)).collect(),
            }
        })
        .collect();
    Program { calls }
}

/// The program with call `idx` removed (references remapped) — the
/// single-removal probe 1-minimality is defined by.
#[must_use]
pub fn without_call(prog: &Program, idx: usize) -> Program {
    let keep: Vec<usize> = (0..prog.len()).filter(|&i| i != idx).collect();
    project(prog, &keep)
}

fn remap_value(v: &Value, map: &[Option<usize>]) -> Value {
    match v {
        Value::Res(r) => Value::Res(ResRef {
            producer: r.producer.and_then(|i| map.get(i).copied().flatten()),
            fallback: r.fallback,
        }),
        Value::Group(vs) => Value::Group(vs.iter().map(|v| remap_value(v, map)).collect()),
        Value::Union { arm, value } => Value::Union {
            arm: *arm,
            value: Box::new(remap_value(value, map)),
        },
        Value::Ptr { pointee } => Value::Ptr {
            pointee: pointee.as_ref().map(|p| Box::new(remap_value(p, map))),
        },
        Value::Int(_) | Value::Bytes(_) => v.clone(),
    }
}

/// Minimize `prog` to a 1-minimal reproducer under `reproduces`.
///
/// `reproduces` must hold for `prog` itself (the captured reproducer
/// crashed when it was observed); if it does not — e.g. an oracle
/// judging a different signature — the input is returned unchanged
/// after one probe.
///
/// The search is the classic two-phase delta debugging shape:
///
/// 1. **chunk phase** — try removing contiguous chunks, halving the
///    chunk size from `len/2` down to 1; every successful removal
///    restarts scanning at the same granularity;
/// 2. **fixpoint phase** — at granularity 1, keep sweeping single
///    removals until a full sweep removes nothing.
///
/// Termination of phase 2 is the 1-minimality proof: the final sweep
/// witnessed every single-call removal failing to reproduce.
pub fn minimize<F>(prog: &Program, mut reproduces: F) -> MinimizeOutcome
where
    F: FnMut(&Program) -> bool,
{
    let mut execs = 0u64;
    {
        execs += 1;
        if !reproduces(prog) {
            return MinimizeOutcome {
                program: prog.clone(),
                execs,
            };
        }
    }
    let mut current = prog.clone();
    // Chunk phase.
    let mut chunk = current.len().div_ceil(2).max(1);
    while chunk >= 1 {
        let mut start = 0usize;
        while start < current.len() && current.len() > 1 {
            let end = (start + chunk).min(current.len());
            let keep: Vec<usize> = (0..current.len())
                .filter(|&i| i < start || i >= end)
                .collect();
            let candidate = project(&current, &keep);
            execs += 1;
            if !candidate.is_empty() && reproduces(&candidate) {
                current = candidate;
                // Do not advance: the next chunk slid into `start`.
            } else {
                start = end;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    // Fixpoint phase: sweep single removals until nothing shrinks.
    loop {
        let mut shrunk = false;
        let mut i = 0usize;
        while i < current.len() && current.len() > 1 {
            let candidate = without_call(&current, i);
            execs += 1;
            if reproduces(&candidate) {
                current = candidate;
                shrunk = true;
                // The call that slid into position `i` is probed next.
            } else {
                i += 1;
            }
        }
        if !shrunk {
            break;
        }
    }
    MinimizeOutcome {
        program: current,
        execs,
    }
}

/// Per-call execution profile distilled from a flight-recorder trace
/// of the crashing execution — the hints [`minimize_guided`] prunes
/// with before falling back to the blind ddmin search.
///
/// All hints are advisory: the guided search verifies every pruned
/// candidate through the caller's oracle before trusting it, so a
/// stale or mismatched guide can only cost probes, never correctness.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceGuide {
    /// Index of the call the crash fired under, when the trace
    /// recorded one.
    pub crash_call: Option<usize>,
    /// Blocks each call retired (0 = the call touched no kernel code
    /// the recorder saw — skipped, mis-encoded, or a no-coverage
    /// error path).
    pub call_blocks: Vec<u64>,
    /// Whether each call returned an error (`ret < 0`).
    pub call_errs: Vec<bool>,
}

/// [`minimize`] with a flight-recorder head start: before the ddmin
/// phases, build one pruned candidate dropping every call *after* the
/// crashing call plus every earlier call whose trace shows it both
/// retired zero blocks and failed — calls that provably contributed
/// nothing to the state the crash depends on. The candidate is
/// verified through `reproduces`; if it does not reproduce (the guide
/// was stale or mismatched) the search simply starts from the
/// original program, so the result is exactly as 1-minimal as the
/// unguided search — the guide only saves oracle probes.
///
/// A guide whose vectors do not match `prog.len()` (or with no
/// recorded crash call) is ignored.
pub fn minimize_guided<F>(prog: &Program, guide: &TraceGuide, mut reproduces: F) -> MinimizeOutcome
where
    F: FnMut(&Program) -> bool,
{
    let mut execs = 0u64;
    let mut base = prog.clone();
    if let Some(cc) = guide.crash_call {
        if cc < prog.len()
            && guide.call_blocks.len() == prog.len()
            && guide.call_errs.len() == prog.len()
        {
            let keep: Vec<usize> = (0..=cc)
                .filter(|&i| i == cc || guide.call_blocks[i] > 0 || !guide.call_errs[i])
                .collect();
            if keep.len() < prog.len() {
                let candidate = project(prog, &keep);
                execs += 1;
                if !candidate.is_empty() && reproduces(&candidate) {
                    base = candidate;
                }
            }
        }
    }
    let mut out = minimize(&base, reproduces);
    out.execs += execs;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn call(sys: u32, args: Vec<Value>) -> ProgCall {
        ProgCall { sys, args }
    }

    fn prog_of(sys: &[u32]) -> Program {
        Program {
            calls: sys.iter().map(|&s| call(s, vec![])).collect(),
        }
    }

    /// Oracle: reproduces iff the call stream contains every syscall
    /// id in `need` (in any order).
    fn contains_all(need: &[u32]) -> impl Fn(&Program) -> bool + '_ {
        move |p: &Program| {
            let have: BTreeSet<u32> = p.calls.iter().map(|c| c.sys).collect();
            need.iter().all(|n| have.contains(n))
        }
    }

    #[test]
    fn minimizes_to_exactly_the_needed_calls() {
        let p = prog_of(&[9, 1, 8, 2, 7, 3, 6, 5, 4, 1, 2]);
        let need = [1u32, 2, 3];
        let out = minimize(&p, contains_all(&need));
        let got: Vec<u32> = out.program.calls.iter().map(|c| c.sys).collect();
        assert_eq!(got.len(), 3, "{got:?}");
        assert!(contains_all(&need)(&out.program));
        assert!(out.execs > 0);
    }

    #[test]
    fn result_is_one_minimal() {
        // Every single-call removal of the minimized program must lose
        // the crash — the definition the fixpoint phase enforces.
        let p = prog_of(&[5, 1, 5, 2, 5, 3, 5, 4, 5]);
        let need = [1u32, 2, 3, 4];
        let out = minimize(&p, contains_all(&need));
        assert_eq!(out.program.len(), 4);
        for i in 0..out.program.len() {
            let probe = without_call(&out.program, i);
            assert!(
                !contains_all(&need)(&probe),
                "removing call {i} should lose the crash"
            );
        }
    }

    #[test]
    fn repeat_style_oracles_keep_every_copy() {
        // An oracle needing three copies of call 7 (the Repeat-trigger
        // shape) must keep exactly three.
        let oracle = |p: &Program| p.calls.iter().filter(|c| c.sys == 7).count() >= 3;
        let p = prog_of(&[7, 0, 7, 0, 0, 7, 7, 7, 0]);
        let out = minimize(&p, oracle);
        assert_eq!(out.program.len(), 3);
        assert!(out.program.calls.iter().all(|c| c.sys == 7));
    }

    #[test]
    fn non_reproducing_input_is_returned_unchanged() {
        let p = prog_of(&[1, 2, 3]);
        let out = minimize(&p, |_| false);
        assert_eq!(out.program, p);
        assert_eq!(out.execs, 1);
    }

    #[test]
    fn minimization_is_deterministic() {
        let p = prog_of(&[3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5]);
        let a = minimize(&p, contains_all(&[1, 5]));
        let b = minimize(&p, contains_all(&[1, 5]));
        assert_eq!(a, b);
    }

    #[test]
    fn guided_minimization_prunes_with_a_correct_trace() {
        // Crash under call 6; calls 1, 3 and 5 retired no blocks and
        // errored — the guide prunes them (and everything past the
        // crash) in a single verified probe before ddmin runs.
        let p = prog_of(&[1, 0, 2, 0, 3, 0, 4, 9, 9]);
        let need = [1u32, 2, 3, 4];
        let guide = TraceGuide {
            crash_call: Some(6),
            call_blocks: vec![5, 0, 5, 0, 5, 0, 5, 0, 0],
            call_errs: vec![false, true, false, true, false, true, false, true, true],
        };
        let guided = minimize_guided(&p, &guide, contains_all(&need));
        let blind = minimize(&p, contains_all(&need));
        assert_eq!(guided.program, blind.program, "same 1-minimal result");
        assert!(
            guided.execs < blind.execs,
            "guide saved nothing: {} vs {}",
            guided.execs,
            blind.execs
        );
    }

    #[test]
    fn guided_minimization_survives_a_wrong_guide() {
        // A guide claiming the needed calls are inert: the pruned
        // candidate fails the oracle, the search falls back to the
        // original program, and the result is still 1-minimal.
        let p = prog_of(&[9, 1, 8, 2, 7, 3]);
        let need = [1u32, 2, 3];
        let guide = TraceGuide {
            crash_call: Some(5),
            call_blocks: vec![9, 0, 9, 0, 9, 9],
            call_errs: vec![false, true, false, true, false, false],
        };
        let out = minimize_guided(&p, &guide, contains_all(&need));
        assert!(contains_all(&need)(&out.program));
        assert_eq!(out.program.len(), 3);
        for i in 0..out.program.len() {
            assert!(!contains_all(&need)(&without_call(&out.program, i)));
        }
    }

    #[test]
    fn mismatched_or_empty_guides_are_ignored() {
        let p = prog_of(&[9, 1, 8, 2]);
        let need = [1u32, 2];
        let blind = minimize(&p, contains_all(&need));
        // Wrong vector lengths.
        let bad = TraceGuide {
            crash_call: Some(3),
            call_blocks: vec![1],
            call_errs: vec![false],
        };
        assert_eq!(minimize_guided(&p, &bad, contains_all(&need)), blind);
        // No crash call recorded.
        assert_eq!(
            minimize_guided(&p, &TraceGuide::default(), contains_all(&need)),
            blind
        );
        // Crash call out of range.
        let oob = TraceGuide {
            crash_call: Some(99),
            call_blocks: vec![1, 1, 1, 1],
            call_errs: vec![false; 4],
        };
        assert_eq!(minimize_guided(&p, &oob, contains_all(&need)), blind);
    }

    #[test]
    fn projection_remaps_producers_and_dangles_removed_ones() {
        // prog: [open(0), ioctl(1)->res 0, ioctl(2)->res 0]
        let res = |producer| {
            Value::Res(ResRef {
                producer,
                fallback: 42,
            })
        };
        let p = Program {
            calls: vec![
                call(0, vec![]),
                call(1, vec![res(Some(0))]),
                call(
                    2,
                    vec![Value::ptr_to(Value::Group(vec![
                        res(Some(0)),
                        res(Some(1)),
                    ]))],
                ),
            ],
        };
        // Keep calls 0 and 2: the ref to call 0 follows it to index 0,
        // the ref to removed call 1 dangles (fallback preserved).
        let q = project(&p, &[0, 2]);
        assert_eq!(q.len(), 2);
        assert_eq!(q.calls[1].sys, 2);
        let refs = q.calls[1].args[0].res_refs();
        assert_eq!(refs[0].producer, Some(0));
        assert_eq!(refs[1].producer, None);
        assert_eq!(refs[1].fallback, 42);
        // Dropping the producer instead: the surviving ref dangles.
        let q = project(&p, &[1, 2]);
        assert_eq!(q.calls[0].args[0].res_refs()[0].producer, None);
        assert_eq!(q.calls[1].args[0].res_refs()[1].producer, Some(0));
    }
}
