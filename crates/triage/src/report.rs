//! The per-campaign triage report: one entry per distinct
//! [`CrashSignature`], carrying the captured raw reproducer, its
//! minimized form, and dedup statistics.
//!
//! Reports are built by the campaign driver **in shard-id order at
//! epoch boundaries** (the same discipline as the seed hub), so the
//! merge is first-publisher-wins: the entry for a signature belongs to
//! the earliest epoch that saw it, lowest shard id on ties, and every
//! later observation only bumps the dedup counter. The whole structure
//! derives `PartialEq`, and the sharded campaign's report is pinned
//! bit-identical at any worker thread count.

use kgpt_syzlang::prog::Program;
use kgpt_vkernel::CrashSignature;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Triage record for one crash signature.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TriageEntry {
    /// The dedup key.
    pub signature: CrashSignature,
    /// Crash title of the first observation (reporting only — dedup
    /// never looks at it).
    pub title: String,
    /// CVE of the first observation, if assigned.
    pub cve: Option<String>,
    /// Epoch (exec-boundary index) of the first observation.
    pub first_epoch: u64,
    /// Shard that first observed the signature.
    pub first_shard: u32,
    /// Crashing executions with this signature, summed across shards.
    pub count: u64,
    /// The full `ProgCall` stream captured at first observation.
    pub raw: Program,
    /// The 1-minimal reproducer (ddmin output; still triggers the
    /// signature under lowered dispatch).
    pub minimized: Program,
    /// Replays the minimizer spent shrinking `raw`.
    pub minimize_execs: u64,
    /// Whether the raw capture still triggered its signature when
    /// replayed at the triage boundary. Kernel state can drift between
    /// capture and drain in principle; a stale capture is reported
    /// as-is (`minimized == raw`) instead of being minimized against a
    /// signature it no longer reaches — and never aborts the campaign.
    pub reproducible: bool,
}

impl TriageEntry {
    /// Raw-to-minimized call-count ratio (≥ 1; a 1-call reproducer
    /// that cannot shrink reports 1.0).
    #[must_use]
    pub fn shrink_ratio(&self) -> f64 {
        self.raw.len() as f64 / self.minimized.len().max(1) as f64
    }
}

/// Per-signature triage results of one campaign. See the module docs
/// for the merge discipline.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TriageReport {
    entries: BTreeMap<CrashSignature, TriageEntry>,
}

impl TriageReport {
    /// Empty report.
    #[must_use]
    pub fn new() -> TriageReport {
        TriageReport::default()
    }

    /// Number of distinct signatures triaged.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no signature was triaged.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry for a signature, if triaged.
    #[must_use]
    pub fn get(&self, sig: &CrashSignature) -> Option<&TriageEntry> {
        self.entries.get(sig)
    }

    /// Whether a signature has been triaged.
    #[must_use]
    pub fn contains(&self, sig: &CrashSignature) -> bool {
        self.entries.contains_key(sig)
    }

    /// Entries in signature order.
    pub fn entries(&self) -> impl Iterator<Item = &TriageEntry> {
        self.entries.values()
    }

    /// Admit a shard's first-seen capture. First-publisher-wins:
    /// when the signature is already present the capture is dropped
    /// (the caller still accounts its observations via
    /// [`TriageReport::add_count`]). Returns whether the entry was
    /// taken — callers only minimize when it is.
    pub fn admit(&mut self, entry: TriageEntry) -> bool {
        match self.entries.entry(entry.signature) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(entry);
                true
            }
            std::collections::btree_map::Entry::Occupied(_) => false,
        }
    }

    /// Record `n` further crashing executions with `sig`. The entry
    /// must exist (captures drain before counts at every boundary).
    pub fn add_count(&mut self, sig: &CrashSignature, n: u64) {
        debug_assert!(
            self.entries.contains_key(sig),
            "counts for an uncaptured signature"
        );
        if let Some(e) = self.entries.get_mut(sig) {
            e.count += n;
        }
    }

    /// Mean raw/minimized call-count ratio over all entries (0.0 when
    /// empty).
    #[must_use]
    pub fn mean_shrink_ratio(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        self.entries
            .values()
            .map(TriageEntry::shrink_ratio)
            .sum::<f64>()
            / self.entries.len() as f64
    }

    /// Total replays spent minimizing, over all entries.
    #[must_use]
    pub fn total_minimize_execs(&self) -> u64 {
        self.entries.values().map(|e| e.minimize_execs).sum()
    }

    /// Total raw and minimized call counts (for shrink accounting).
    #[must_use]
    pub fn call_totals(&self) -> (usize, usize) {
        self.entries
            .values()
            .fold((0, 0), |(r, m), e| (r + e.raw.len(), m + e.minimized.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgpt_vkernel::{SanitizerKind, Sysno};

    fn sig(site: u64) -> CrashSignature {
        CrashSignature {
            sysno: Sysno::Ioctl,
            chain_depth: 1,
            sanitizer: SanitizerKind::Kmalloc,
            site,
        }
    }

    fn entry(site: u64, shard: u32, epoch: u64, raw_len: usize) -> TriageEntry {
        let call = kgpt_syzlang::prog::ProgCall {
            sys: 0,
            args: vec![],
        };
        TriageEntry {
            signature: sig(site),
            title: format!("bug at {site}"),
            cve: None,
            first_epoch: epoch,
            first_shard: shard,
            count: 0,
            raw: Program {
                calls: vec![call.clone(); raw_len],
            },
            minimized: Program {
                calls: vec![call; raw_len.div_ceil(2)],
            },
            minimize_execs: 10,
            reproducible: true,
        }
    }

    #[test]
    fn first_publisher_wins_and_counts_accumulate() {
        let mut r = TriageReport::new();
        assert!(r.admit(entry(5, 0, 1, 8)));
        assert!(!r.admit(entry(5, 3, 2, 4)), "later capture must lose");
        r.add_count(&sig(5), 3);
        r.add_count(&sig(5), 2);
        let e = r.get(&sig(5)).unwrap();
        assert_eq!((e.first_shard, e.first_epoch, e.count), (0, 1, 5));
        assert_eq!(e.raw.len(), 8, "the first capture's reproducer is kept");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn shrink_accounting() {
        let mut r = TriageReport::new();
        r.admit(entry(1, 0, 0, 8)); // 8 → 4: ratio 2
        r.admit(entry(2, 1, 0, 12)); // 12 → 6: ratio 2
        assert!((r.mean_shrink_ratio() - 2.0).abs() < 1e-9);
        assert_eq!(r.call_totals(), (20, 10));
        assert_eq!(r.total_minimize_execs(), 20);
        assert_eq!(TriageReport::new().mean_shrink_ratio(), 0.0);
    }
}
