//! # kgpt-triage
//!
//! Crash triage: turning raw crashing executions into **actionable
//! crash reports** — the paper's end product is not a coverage number
//! but a deduplicated list of reproducers.
//!
//! The subsystem has three parts, wired through the whole stack:
//!
//! * **signatures** — the virtual kernel stamps every
//!   [`CrashReport`](kgpt_vkernel::CrashReport) with a dense,
//!   spec-independent [`CrashSignature`](kgpt_vkernel::CrashSignature)
//!   (faulting
//!   [`Sysno`](kgpt_vkernel::Sysno), resource-chain depth of the fd,
//!   [`SanitizerKind`](kgpt_vkernel::SanitizerKind), faulting block);
//!   triage dedups on that key, so two spec suites reaching the same
//!   bug triage identically;
//! * **[`minimize()`]** — a deterministic ddmin-style search shrinking a
//!   captured `ProgCall` stream to a **1-minimal** reproducer
//!   (removing any single call loses the crash), judged by a
//!   caller-supplied replay oracle so the fuzzer drives it through its
//!   allocation-reusing lowered execution path;
//! * **[`report`]** — the per-campaign [`TriageReport`]: one
//!   [`TriageEntry`] per signature (first-seen epoch/shard, raw +
//!   minimized reproducer, shrink ratio, dedup count), merged
//!   first-publisher-wins across shards in shard-id order at epoch
//!   boundaries — the same discipline as the seed hub, which is what
//!   keeps the sharded campaign's triage output bit-identical at any
//!   worker thread count.
//!
//! The crate depends only on `kgpt-syzlang` (for
//! [`Program`](kgpt_syzlang::prog::Program)) and `kgpt-vkernel` (for
//! the signature types); the fuzzer depends on *it*, not the other way
//! around.

pub mod minimize;
pub mod report;

pub use minimize::{minimize, minimize_guided, project, without_call, MinimizeOutcome, TraceGuide};
pub use report::{TriageEntry, TriageReport};
