//! Lexer for the kernel-C subset.
//!
//! Preprocessor lines (`#define`, `#include`, …) are captured whole as
//! [`CTok::Directive`] tokens; comments (`//` and `/* */`) are skipped.

use std::fmt;

/// A C token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CTok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (char literals are folded to their value).
    Num(u64),
    /// String literal, unescaped.
    Str(String),
    /// Operator or punctuation (multi-char ops preserved, e.g. `->`).
    Punct(&'static str),
    /// A whole preprocessor line, without the leading `#`.
    Directive(String),
}

impl fmt::Display for CTok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CTok::Ident(s) => write!(f, "`{s}`"),
            CTok::Num(n) => write!(f, "number {n}"),
            CTok::Str(s) => write!(f, "string {s:?}"),
            CTok::Punct(p) => write!(f, "`{p}`"),
            CTok::Directive(d) => write!(f, "directive #{d}"),
        }
    }
}

/// Token plus source position (1-based line, byte offset of token start).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CSpanned {
    /// The token.
    pub tok: CTok,
    /// 1-based source line.
    pub line: u32,
    /// Byte offset of the first character of this token.
    pub offset: usize,
    /// Byte offset one past the last character of this token.
    pub end: usize,
}

/// Lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CLexError {
    /// Description.
    pub message: String,
    /// 1-based line.
    pub line: u32,
}

impl fmt::Display for CLexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CLexError {}

const PUNCTS: &[&str] = &[
    "<<=", ">>=", "...", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=",
    "/=", "%=", "&=", "|=", "^=", "++", "--", "{", "}", "(", ")", "[", "]", ";", ",", ".", "=",
    "<", ">", "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "?", ":",
];

/// Tokenize C source text.
///
/// # Errors
///
/// Returns [`CLexError`] on unterminated strings/comments or characters
/// outside the supported alphabet.
pub fn clex(src: &str) -> Result<Vec<CSpanned>, CLexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0usize;
    let mut at_line_start = true;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
                at_line_start = true;
                continue;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                continue;
            }
            '#' if at_line_start => {
                let start = i;
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] != b'\n' {
                    j += 1;
                }
                let text = String::from_utf8_lossy(&bytes[i + 1..j]).trim().to_string();
                out.push(CSpanned {
                    tok: CTok::Directive(text),
                    line,
                    offset: start,
                    end: j,
                });
                i = j;
                continue;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut j = i + 2;
                loop {
                    if j + 1 >= bytes.len() {
                        return Err(CLexError {
                            message: "unterminated block comment".into(),
                            line,
                        });
                    }
                    if bytes[j] == b'\n' {
                        line += 1;
                    }
                    if bytes[j] == b'*' && bytes[j + 1] == b'/' {
                        break;
                    }
                    j += 1;
                }
                i = j + 2;
                continue;
            }
            '"' => {
                let start = i;
                let s_start = i + 1;
                let mut j = s_start;
                while j < bytes.len() && bytes[j] != b'"' {
                    if bytes[j] == b'\\' {
                        j += 1;
                    }
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(CLexError {
                        message: "unterminated string literal".into(),
                        line,
                    });
                }
                let raw = String::from_utf8_lossy(&bytes[s_start..j]).into_owned();
                out.push(CSpanned {
                    tok: CTok::Str(unescape(&raw)),
                    line,
                    offset: start,
                    end: j + 1,
                });
                i = j + 1;
            }
            '\'' => {
                let start = i;
                let (value, next) = lex_char(bytes, i, line)?;
                out.push(CSpanned {
                    tok: CTok::Num(value),
                    line,
                    offset: start,
                    end: next,
                });
                i = next;
            }
            '0'..='9' => {
                let start = i;
                let (n, next) = lex_c_number(bytes, i, line)?;
                out.push(CSpanned {
                    tok: CTok::Num(n),
                    line,
                    offset: start,
                    end: next,
                });
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() {
                    let b = bytes[j] as char;
                    if b.is_ascii_alphanumeric() || b == '_' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.push(CSpanned {
                    tok: CTok::Ident(String::from_utf8_lossy(&bytes[start..j]).into_owned()),
                    line,
                    offset: start,
                    end: j,
                });
                i = j;
            }
            _ => {
                let rest = &src[i..];
                let Some(p) = PUNCTS.iter().find(|p| rest.starts_with(**p)) else {
                    return Err(CLexError {
                        message: format!("unexpected character {c:?}"),
                        line,
                    });
                };
                out.push(CSpanned {
                    tok: CTok::Punct(p),
                    line,
                    offset: i,
                    end: i + p.len(),
                });
                i += p.len();
            }
        }
        at_line_start = false;
    }
    Ok(out)
}

fn unescape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('0') => out.push('\0'),
                Some(other) => out.push(other),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn lex_char(bytes: &[u8], start: usize, line: u32) -> Result<(u64, usize), CLexError> {
    // start points at the opening quote.
    let mut i = start + 1;
    if i >= bytes.len() {
        return Err(CLexError {
            message: "unterminated char literal".into(),
            line,
        });
    }
    let value = if bytes[i] == b'\\' {
        i += 1;
        let v = match bytes.get(i) {
            Some(b'n') => b'\n',
            Some(b't') => b'\t',
            Some(b'0') => 0,
            Some(&c) => c,
            None => {
                return Err(CLexError {
                    message: "unterminated char literal".into(),
                    line,
                })
            }
        };
        i += 1;
        u64::from(v)
    } else {
        let v = u64::from(bytes[i]);
        i += 1;
        v
    };
    if bytes.get(i) != Some(&b'\'') {
        return Err(CLexError {
            message: "unterminated char literal".into(),
            line,
        });
    }
    Ok((value, i + 1))
}

fn lex_c_number(bytes: &[u8], start: usize, line: u32) -> Result<(u64, usize), CLexError> {
    let mut i = start;
    let (radix, digits_start) =
        if i + 1 < bytes.len() && bytes[i] == b'0' && (bytes[i + 1] | 0x20) == b'x' {
            (16u32, i + 2)
        } else {
            (10u32, i)
        };
    i = digits_start;
    let mut value: u64 = 0;
    let mut any = false;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let Some(d) = c.to_digit(radix) else { break };
        value = value
            .checked_mul(u64::from(radix))
            .and_then(|v| v.checked_add(u64::from(d)))
            .ok_or_else(|| CLexError {
                message: "integer literal overflows u64".into(),
                line,
            })?;
        any = true;
        i += 1;
    }
    if !any {
        return Err(CLexError {
            message: "malformed integer literal".into(),
            line,
        });
    }
    // Swallow integer suffixes (UL, ULL, u, l, …).
    while i < bytes.len() && matches!(bytes[i] | 0x20, b'u' | b'l') {
        i += 1;
    }
    Ok((value, i))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<CTok> {
        clex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_designated_initializer() {
        let t = toks(".unlocked_ioctl = dm_ctl_ioctl,");
        assert_eq!(
            t,
            vec![
                CTok::Punct("."),
                CTok::Ident("unlocked_ioctl".into()),
                CTok::Punct("="),
                CTok::Ident("dm_ctl_ioctl".into()),
                CTok::Punct(","),
            ]
        );
    }

    #[test]
    fn lexes_directive_whole_line() {
        let t = toks("#define DM_VERSION_CMD 0\nint x;");
        assert_eq!(t[0], CTok::Directive("define DM_VERSION_CMD 0".into()));
        assert_eq!(t[1], CTok::Ident("int".into()));
    }

    #[test]
    fn hash_mid_line_is_error() {
        assert!(clex("int x = #define").is_err());
    }

    #[test]
    fn skips_comments() {
        let t = toks("a /* hidden */ b // tail\nc");
        assert_eq!(
            t,
            vec![
                CTok::Ident("a".into()),
                CTok::Ident("b".into()),
                CTok::Ident("c".into())
            ]
        );
    }

    #[test]
    fn char_literals_fold_to_values() {
        assert_eq!(toks("'x'"), vec![CTok::Num(120)]);
        assert_eq!(toks(r"'\n'"), vec![CTok::Num(10)]);
        assert_eq!(toks(r"'\0'"), vec![CTok::Num(0)]);
    }

    #[test]
    fn numbers_with_suffixes() {
        assert_eq!(toks("10UL"), vec![CTok::Num(10)]);
        assert_eq!(toks("0xffULL"), vec![CTok::Num(255)]);
    }

    #[test]
    fn multichar_ops_preserved() {
        let t = toks("a->b << 2 >= c");
        assert!(t.contains(&CTok::Punct("->")));
        assert!(t.contains(&CTok::Punct("<<")));
        assert!(t.contains(&CTok::Punct(">=")));
    }

    #[test]
    fn string_escapes() {
        assert_eq!(toks(r#""a\nb""#), vec![CTok::Str("a\nb".into())]);
    }

    #[test]
    fn unterminated_comment_is_error() {
        assert!(clex("/* never ends").is_err());
    }

    #[test]
    fn offsets_track_bytes() {
        let spanned = clex("ab cd").unwrap();
        assert_eq!(spanned[0].offset, 0);
        assert_eq!(spanned[1].offset, 3);
    }
}
