//! Recursive-descent parser for the kernel-C subset.
//!
//! Handles what synthetic Linux driver sources need: `#define` macros
//! (including function-like `_IOWR(...)` bodies), struct/union/enum
//! definitions with flexible array members, global variables with
//! designated initializers (`.unlocked_ioctl = dm_ctl_ioctl`), lookup
//! tables, and function bodies with `switch`/`if`/`for`/`while`
//! statements and the usual expression grammar.

use crate::ast::{
    CArraySize, CEnumDef, CField, CFile, CFunction, CItem, CItemKind, CStructDef, CType, CTypedef,
    CVarDef, CaseLabel, Expr, MacroDef, Stmt, SwitchCase,
};
use crate::token::{clex, CSpanned, CTok};
use std::collections::BTreeSet;
use std::fmt;

/// Parse error with position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CParseError {
    /// Description.
    pub message: String,
    /// 1-based line.
    pub line: u32,
    /// File name.
    pub file: String,
}

impl fmt::Display for CParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.message)
    }
}

impl std::error::Error for CParseError {}

const QUALIFIERS: &[&str] = &[
    "static", "const", "volatile", "__user", "__iomem", "inline", "extern", "__init", "__exit",
    "noinline",
];

const TYPE_KEYWORDS: &[&str] = &[
    "void",
    "char",
    "short",
    "int",
    "long",
    "unsigned",
    "signed",
    "float",
    "double",
    "bool",
    "u8",
    "u16",
    "u32",
    "u64",
    "s8",
    "s16",
    "s32",
    "s64",
    "__u8",
    "__u16",
    "__u32",
    "__u64",
    "__s8",
    "__s16",
    "__s32",
    "__s64",
    "__le16",
    "__le32",
    "__le64",
    "__be16",
    "__be32",
    "__be64",
    "uint",
    "ulong",
    "ushort",
    "uchar",
    "size_t",
    "ssize_t",
    "loff_t",
    "off_t",
    "poll_t",
    "__poll_t",
    "dev_t",
    "pid_t",
    "uid_t",
    "gid_t",
    "uintptr_t",
    "intptr_t",
];

const STMT_KEYWORDS: &[&str] = &[
    "return", "if", "else", "switch", "case", "default", "while", "for", "break", "continue",
];

/// Parse a C translation unit.
///
/// # Errors
///
/// Returns [`CParseError`] on lexical or syntactic errors.
pub fn cparse(file_name: &str, src: &str) -> Result<CFile, CParseError> {
    let toks = clex(src).map_err(|e| CParseError {
        message: e.message,
        line: e.line,
        file: file_name.to_string(),
    })?;
    let mut p = CParser {
        toks,
        pos: 0,
        file: file_name.to_string(),
        src: src.to_string(),
        typedefs: BTreeSet::new(),
    };
    p.file()
}

struct CParser {
    toks: Vec<CSpanned>,
    pos: usize,
    file: String,
    src: String,
    typedefs: BTreeSet<String>,
}

impl CParser {
    fn peek(&self) -> Option<&CTok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn peek_at(&self, n: usize) -> Option<&CTok> {
        self.toks.get(self.pos + n).map(|s| &s.tok)
    }

    fn line(&self) -> u32 {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |s| s.line)
    }

    fn bump(&mut self) -> Option<CTok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, CParseError> {
        Err(CParseError {
            message: msg.into(),
            line: self.line(),
            file: self.file.clone(),
        })
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Some(CTok::Punct(q)) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), CParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            match self.peek() {
                Some(t) => {
                    let t = t.clone();
                    self.err(format!("expected `{p}`, found {t}"))
                }
                None => self.err(format!("expected `{p}`, found end of file")),
            }
        }
    }

    fn ident(&mut self) -> Result<String, CParseError> {
        match self.peek() {
            Some(CTok::Ident(_)) => match self.bump() {
                Some(CTok::Ident(s)) => Ok(s),
                _ => unreachable!(),
            },
            Some(t) => {
                let t = t.clone();
                self.err(format!("expected identifier, found {t}"))
            }
            None => self.err("expected identifier, found end of file"),
        }
    }

    fn peek_ident(&self) -> Option<&str> {
        match self.peek() {
            Some(CTok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn is_punct(&self, n: usize, p: &str) -> bool {
        matches!(self.peek_at(n), Some(CTok::Punct(q)) if *q == p)
    }

    // ---- top level -------------------------------------------------

    fn file(&mut self) -> Result<CFile, CParseError> {
        let mut items = Vec::new();
        while self.pos < self.toks.len() {
            let start = self.toks[self.pos].offset;
            if let Some(CTok::Directive(d)) = self.peek() {
                let d = d.clone();
                self.pos += 1;
                let end = self.toks[self.pos - 1].end;
                if let Some(m) = parse_macro(&d) {
                    items.push(CItem {
                        kind: CItemKind::Macro(m),
                        text: self.src[start..end].to_string(),
                    });
                }
                continue;
            }
            let kind = self.top_item()?;
            let end = self.toks[self.pos - 1].end;
            if let CItemKind::Typedef(t) = &kind {
                self.typedefs.insert(t.name.clone());
            }
            items.push(CItem {
                kind,
                text: self.src[start..end].to_string(),
            });
        }
        Ok(CFile {
            name: self.file.clone(),
            items,
        })
    }

    fn top_item(&mut self) -> Result<CItemKind, CParseError> {
        if self.peek_ident() == Some("typedef") {
            return self.typedef_item();
        }
        // struct/union/enum *definitions* (tag followed by `{`).
        match self.peek_ident() {
            Some("struct") | Some("union")
                if matches!(self.peek_at(1), Some(CTok::Ident(_))) && self.is_punct(2, "{") =>
            {
                let is_union = self.peek_ident() == Some("union");
                self.pos += 1;
                let name = self.ident()?;
                let fields = self.struct_body()?;
                self.expect_punct(";")?;
                return Ok(CItemKind::Struct(CStructDef {
                    name,
                    is_union,
                    fields,
                }));
            }
            Some("enum")
                if matches!(self.peek_at(1), Some(CTok::Ident(_))) && self.is_punct(2, "{")
                    || self.is_punct(1, "{") =>
            {
                self.pos += 1;
                let name = match self.peek() {
                    Some(CTok::Ident(_)) => self.ident()?,
                    _ => String::new(),
                };
                let variants = self.enum_body()?;
                self.expect_punct(";")?;
                return Ok(CItemKind::Enum(CEnumDef { name, variants }));
            }
            _ => {}
        }
        // Otherwise: [qualifiers] type declarator.
        let ty = self.parse_type()?;
        let name = self.ident()?;
        if self.is_punct(0, "(") {
            self.function_item(ty, name)
        } else {
            self.var_item(ty, name)
        }
    }

    fn typedef_item(&mut self) -> Result<CItemKind, CParseError> {
        // Consume `typedef`, then scan to `;` remembering a plausible
        // introduced name: `(*name)` for fn-pointers, else the last
        // identifier before the terminator.
        self.pos += 1;
        let mut name: Option<String> = None;
        let mut last_ident: Option<String> = None;
        let mut depth = 0usize;
        while let Some(tok) = self.peek() {
            match tok {
                CTok::Punct(";") if depth == 0 => {
                    self.pos += 1;
                    break;
                }
                CTok::Punct("(") => {
                    depth += 1;
                    // `(*name)` pattern.
                    if self.is_punct(1, "*") {
                        if let Some(CTok::Ident(n)) = self.peek_at(2) {
                            name = Some(n.clone());
                        }
                    }
                    self.pos += 1;
                }
                CTok::Punct(")") => {
                    depth = depth.saturating_sub(1);
                    self.pos += 1;
                }
                CTok::Ident(s) => {
                    last_ident = Some(s.clone());
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        let name = name
            .or(last_ident)
            .ok_or(())
            .or_else(|()| self.err("typedef with no name"))?;
        Ok(CItemKind::Typedef(CTypedef { name }))
    }

    fn struct_body(&mut self) -> Result<Vec<CField>, CParseError> {
        self.expect_punct("{")?;
        let mut fields = Vec::new();
        while !self.eat_punct("}") {
            let ty = self.parse_type()?;
            // Function-pointer member: `ret (*name)(params);`
            if self.eat_punct("(") {
                self.expect_punct("*")?;
                let name = self.ident()?;
                self.expect_punct(")")?;
                self.skip_paren_group()?;
                self.expect_punct(";")?;
                fields.push(CField {
                    name,
                    ty: CType {
                        base: format!("fnptr:{}", ty.base),
                        ptr: 1,
                        array: None,
                    },
                });
                continue;
            }
            let name = self.ident()?;
            let array = self.opt_array()?;
            self.expect_punct(";")?;
            fields.push(CField {
                name,
                ty: CType { array, ..ty },
            });
        }
        Ok(fields)
    }

    fn enum_body(&mut self) -> Result<Vec<(String, Option<u64>)>, CParseError> {
        self.expect_punct("{")?;
        let mut variants = Vec::new();
        while !self.eat_punct("}") {
            let name = self.ident()?;
            let value = if self.eat_punct("=") {
                match self.parse_ternary()? {
                    Expr::Num(n) => Some(n),
                    // Non-literal enum values are rare in the corpus;
                    // represent them as "unknown" (None) so values()
                    // falls back to counting.
                    _ => None,
                }
            } else {
                None
            };
            variants.push((name, value));
            if !self.eat_punct(",") && !self.is_punct(0, "}") {
                return self.err("expected `,` or `}` in enum");
            }
        }
        Ok(variants)
    }

    fn skip_paren_group(&mut self) -> Result<(), CParseError> {
        self.expect_punct("(")?;
        let mut depth = 1usize;
        while depth > 0 {
            match self.bump() {
                Some(CTok::Punct("(")) => depth += 1,
                Some(CTok::Punct(")")) => depth -= 1,
                Some(_) => {}
                None => return self.err("unterminated parenthesis group"),
            }
        }
        Ok(())
    }

    fn function_item(&mut self, ret: CType, name: String) -> Result<CItemKind, CParseError> {
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            if self.peek_ident() == Some("void") && self.is_punct(1, ")") {
                self.pos += 2;
            } else {
                loop {
                    if self.eat_punct("...") {
                        params.push(("...".to_string(), CType::named("...")));
                    } else {
                        let ty = self.parse_type()?;
                        let pname = match self.peek() {
                            Some(CTok::Ident(_)) => self.ident()?,
                            _ => format!("arg{}", params.len()),
                        };
                        let array = self.opt_array()?;
                        params.push((pname, CType { array, ..ty }));
                    }
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_punct(")")?;
            }
        }
        if self.eat_punct(";") {
            return Ok(CItemKind::Function(CFunction {
                name,
                ret,
                params,
                body: Vec::new(),
                is_proto: true,
            }));
        }
        let body = self.block()?;
        Ok(CItemKind::Function(CFunction {
            name,
            ret,
            params,
            body,
            is_proto: false,
        }))
    }

    fn var_item(&mut self, ty: CType, name: String) -> Result<CItemKind, CParseError> {
        let array = self.opt_array()?;
        let init = if self.eat_punct("=") {
            Some(self.parse_assign()?)
        } else {
            None
        };
        self.expect_punct(";")?;
        Ok(CItemKind::Var(CVarDef {
            name,
            ty: CType { array, ..ty },
            init,
        }))
    }

    fn opt_array(&mut self) -> Result<Option<CArraySize>, CParseError> {
        if !self.eat_punct("[") {
            return Ok(None);
        }
        let size = match self.peek() {
            Some(CTok::Punct("]")) => CArraySize::Flex,
            Some(CTok::Num(n)) => {
                let n = *n;
                self.pos += 1;
                CArraySize::Fixed(n)
            }
            Some(CTok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                CArraySize::Named(s)
            }
            other => {
                let msg = format!("unexpected array size {other:?}");
                return self.err(msg);
            }
        };
        self.expect_punct("]")?;
        Ok(Some(size))
    }

    // ---- types -----------------------------------------------------

    fn at_type(&self) -> bool {
        match self.peek_ident() {
            Some(id) => {
                QUALIFIERS.contains(&id)
                    || TYPE_KEYWORDS.contains(&id)
                    || id == "struct"
                    || id == "union"
                    || id == "enum"
                    || self.typedefs.contains(id)
            }
            None => false,
        }
    }

    fn parse_type(&mut self) -> Result<CType, CParseError> {
        let mut words: Vec<String> = Vec::new();
        loop {
            match self.peek_ident() {
                Some(id) if QUALIFIERS.contains(&id) => {
                    self.pos += 1;
                }
                Some(id) if id == "struct" || id == "union" || id == "enum" => {
                    let kw = id.to_string();
                    self.pos += 1;
                    let tag = self.ident()?;
                    words.push(format!("{kw} {tag}"));
                    break;
                }
                Some(id) if TYPE_KEYWORDS.contains(&id) => {
                    words.push(id.to_string());
                    self.pos += 1;
                    // multi-word types keep accumulating (unsigned long ...)
                    if !matches!(
                        words.last().map(String::as_str),
                        Some("unsigned") | Some("signed") | Some("long") | Some("short")
                    ) {
                        break;
                    }
                }
                Some(id) if words.is_empty() && self.typedefs.contains(id) => {
                    words.push(id.to_string());
                    self.pos += 1;
                    break;
                }
                Some(id) if words.is_empty() => {
                    // Unknown leading identifier used in type position
                    // (custom typedef the parser has not seen). Accept it
                    // only when followed by another identifier or `*`.
                    if matches!(self.peek_at(1), Some(CTok::Ident(_))) || self.is_punct(1, "*") {
                        words.push(id.to_string());
                        self.pos += 1;
                        break;
                    }
                    return self.err(format!("`{id}` does not start a type"));
                }
                _ => break,
            }
        }
        if words.is_empty() {
            return self.err("expected a type");
        }
        let mut ptr = 0u8;
        loop {
            if self.eat_punct("*") {
                ptr += 1;
            } else if matches!(self.peek_ident(), Some(q) if QUALIFIERS.contains(&q)) {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(CType {
            base: canonical_base(&words),
            ptr,
            array: None,
        })
    }

    // ---- statements --------------------------------------------------

    fn block(&mut self) -> Result<Vec<Stmt>, CParseError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CParseError> {
        if self.is_punct(0, "{") {
            return Ok(Stmt::Block(self.block()?));
        }
        match self.peek_ident() {
            Some("return") => {
                self.pos += 1;
                if self.eat_punct(";") {
                    return Ok(Stmt::Return(None));
                }
                let e = self.parse_assign()?;
                self.expect_punct(";")?;
                return Ok(Stmt::Return(Some(e)));
            }
            Some("break") => {
                self.pos += 1;
                self.expect_punct(";")?;
                return Ok(Stmt::Break);
            }
            Some("continue") => {
                self.pos += 1;
                self.expect_punct(";")?;
                return Ok(Stmt::Continue);
            }
            Some("if") => return self.if_stmt(),
            Some("switch") => return self.switch_stmt(),
            Some("while") => {
                self.pos += 1;
                self.expect_punct("(")?;
                let cond = self.parse_assign()?;
                self.expect_punct(")")?;
                let body = self.stmt_as_block()?;
                return Ok(Stmt::While { cond, body });
            }
            Some("for") => return self.for_stmt(),
            _ => {}
        }
        if self.at_decl() {
            return self.decl_stmt();
        }
        let e = self.parse_assign()?;
        self.expect_punct(";")?;
        Ok(Stmt::Expr(e))
    }

    fn at_decl(&self) -> bool {
        match self.peek_ident() {
            Some(id) if STMT_KEYWORDS.contains(&id) => false,
            Some(_) if self.at_type() => true,
            Some(_) => {
                // `ident ident` or `ident * ident ;/=` are declarations.
                matches!(self.peek_at(1), Some(CTok::Ident(_)))
                    || (self.is_punct(1, "*")
                        && matches!(self.peek_at(2), Some(CTok::Ident(_)))
                        && (self.is_punct(3, ";") || self.is_punct(3, "=")))
            }
            None => false,
        }
    }

    fn decl_stmt(&mut self) -> Result<Stmt, CParseError> {
        let ty = self.parse_type()?;
        let name = self.ident()?;
        let array = self.opt_array()?;
        let init = if self.eat_punct("=") {
            Some(self.parse_assign()?)
        } else {
            None
        };
        self.expect_punct(";")?;
        Ok(Stmt::Decl {
            name,
            ty: CType { array, ..ty },
            init,
        })
    }

    fn stmt_as_block(&mut self) -> Result<Vec<Stmt>, CParseError> {
        if self.is_punct(0, "{") {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, CParseError> {
        self.pos += 1; // `if`
        self.expect_punct("(")?;
        let cond = self.parse_assign()?;
        self.expect_punct(")")?;
        let then = self.stmt_as_block()?;
        let els = if self.peek_ident() == Some("else") {
            self.pos += 1;
            self.stmt_as_block()?
        } else {
            Vec::new()
        };
        Ok(Stmt::If { cond, then, els })
    }

    fn for_stmt(&mut self) -> Result<Stmt, CParseError> {
        self.pos += 1; // `for`
        self.expect_punct("(")?;
        let init = if self.eat_punct(";") {
            None
        } else if self.at_decl() {
            Some(Box::new(self.decl_stmt()?))
        } else {
            let e = self.parse_assign()?;
            self.expect_punct(";")?;
            Some(Box::new(Stmt::Expr(e)))
        };
        let cond = if self.is_punct(0, ";") {
            None
        } else {
            Some(self.parse_assign()?)
        };
        self.expect_punct(";")?;
        let step = if self.is_punct(0, ")") {
            None
        } else {
            Some(self.parse_assign()?)
        };
        self.expect_punct(")")?;
        let body = self.stmt_as_block()?;
        Ok(Stmt::For {
            init,
            cond,
            step,
            body,
        })
    }

    fn switch_stmt(&mut self) -> Result<Stmt, CParseError> {
        self.pos += 1; // `switch`
        self.expect_punct("(")?;
        let cond = self.parse_assign()?;
        self.expect_punct(")")?;
        self.expect_punct("{")?;
        let mut cases: Vec<SwitchCase> = Vec::new();
        while !self.eat_punct("}") {
            let mut labels = Vec::new();
            loop {
                match self.peek_ident() {
                    Some("case") => {
                        self.pos += 1;
                        let e = self.parse_ternary()?;
                        self.expect_punct(":")?;
                        labels.push(CaseLabel::Expr(e));
                    }
                    Some("default") => {
                        self.pos += 1;
                        self.expect_punct(":")?;
                        labels.push(CaseLabel::Default);
                    }
                    _ => break,
                }
            }
            if labels.is_empty() {
                return self.err("expected `case` or `default` in switch");
            }
            let mut body = Vec::new();
            loop {
                match self.peek_ident() {
                    Some("case") | Some("default") => break,
                    _ => {}
                }
                if self.is_punct(0, "}") {
                    break;
                }
                body.push(self.stmt()?);
            }
            cases.push(SwitchCase { labels, body });
        }
        Ok(Stmt::Switch { cond, cases })
    }

    // ---- expressions -------------------------------------------------

    fn parse_assign(&mut self) -> Result<Expr, CParseError> {
        let lhs = self.parse_ternary()?;
        if self.eat_punct("=") {
            let rhs = self.parse_assign()?;
            return Ok(Expr::Assign {
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            });
        }
        for (compound, op) in [
            ("+=", "+"),
            ("-=", "-"),
            ("*=", "*"),
            ("/=", "/"),
            ("%=", "%"),
            ("&=", "&"),
            ("|=", "|"),
            ("^=", "^"),
            ("<<=", "<<"),
            (">>=", ">>"),
        ] {
            if self.eat_punct(compound) {
                let rhs = self.parse_assign()?;
                return Ok(Expr::Assign {
                    lhs: Box::new(lhs.clone()),
                    rhs: Box::new(Expr::Binary {
                        op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    }),
                });
            }
        }
        Ok(lhs)
    }

    fn parse_ternary(&mut self) -> Result<Expr, CParseError> {
        let cond = self.parse_binary(0)?;
        if self.eat_punct("?") {
            let then = self.parse_assign()?;
            self.expect_punct(":")?;
            let els = self.parse_ternary()?;
            return Ok(Expr::Ternary {
                cond: Box::new(cond),
                then: Box::new(then),
                els: Box::new(els),
            });
        }
        Ok(cond)
    }

    fn parse_binary(&mut self, level: usize) -> Result<Expr, CParseError> {
        const LEVELS: &[&[&str]] = &[
            &["||"],
            &["&&"],
            &["|"],
            &["^"],
            &["&"],
            &["==", "!="],
            &["<", "<=", ">", ">="],
            &["<<", ">>"],
            &["+", "-"],
            &["*", "/", "%"],
        ];
        if level >= LEVELS.len() {
            return self.parse_unary();
        }
        let mut lhs = self.parse_binary(level + 1)?;
        loop {
            let mut matched = None;
            for op in LEVELS[level] {
                if matches!(self.peek(), Some(CTok::Punct(q)) if q == op) {
                    matched = Some(*op);
                    break;
                }
            }
            let Some(op) = matched else { break };
            self.pos += 1;
            let rhs = self.parse_binary(level + 1)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn looks_like_cast(&self) -> bool {
        // `(` followed by a type keyword / struct / typedef, scanning to
        // a `)` that is followed by something an expression can start with.
        if !self.is_punct(0, "(") {
            return false;
        }
        match self.peek_at(1) {
            Some(CTok::Ident(id)) => {
                TYPE_KEYWORDS.contains(&id.as_str())
                    || id == "struct"
                    || id == "union"
                    || id == "enum"
                    || self.typedefs.contains(id)
            }
            _ => false,
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, CParseError> {
        for op in ["-", "!", "~", "*", "&"] {
            if matches!(self.peek(), Some(CTok::Punct(q)) if *q == op) {
                self.pos += 1;
                let e = self.parse_unary()?;
                return Ok(Expr::Unary {
                    op,
                    expr: Box::new(e),
                });
            }
        }
        if self.eat_punct("++") || self.eat_punct("--") {
            let e = self.parse_unary()?;
            return Ok(Expr::Unary {
                op: "++",
                expr: Box::new(e),
            });
        }
        if self.peek_ident() == Some("sizeof") {
            self.pos += 1;
            if self.is_punct(0, "(") && self.looks_like_cast() {
                self.pos += 1;
                let ty = self.parse_type()?;
                self.expect_punct(")")?;
                return Ok(Expr::SizeofType(ty));
            }
            let e = self.parse_unary()?;
            return Ok(Expr::SizeofExpr(Box::new(e)));
        }
        if self.looks_like_cast() {
            self.pos += 1;
            let ty = self.parse_type()?;
            self.expect_punct(")")?;
            let e = self.parse_unary()?;
            return Ok(Expr::Cast {
                ty,
                expr: Box::new(e),
            });
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr, CParseError> {
        let mut e = self.parse_primary()?;
        loop {
            if self.is_punct(0, "(") {
                let func = match &e {
                    Expr::Ident(n) => n.clone(),
                    Expr::Member { field, .. } => format!("<indirect>{field}"),
                    _ => "<indirect>".to_string(),
                };
                self.pos += 1;
                let mut args = Vec::new();
                if !self.eat_punct(")") {
                    loop {
                        args.push(self.call_arg()?);
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                    self.expect_punct(")")?;
                }
                e = Expr::Call { func, args };
            } else if self.eat_punct(".") {
                let field = self.ident()?;
                e = Expr::Member {
                    base: Box::new(e),
                    field,
                    arrow: false,
                };
            } else if self.eat_punct("->") {
                let field = self.ident()?;
                e = Expr::Member {
                    base: Box::new(e),
                    field,
                    arrow: true,
                };
            } else if self.eat_punct("[") {
                let index = self.parse_assign()?;
                self.expect_punct("]")?;
                e = Expr::Index {
                    base: Box::new(e),
                    index: Box::new(index),
                };
            } else if self.eat_punct("++") || self.eat_punct("--") {
                e = Expr::Unary {
                    op: "p++",
                    expr: Box::new(e),
                };
            } else {
                break;
            }
        }
        // String/macro concatenation chains: `DM_DIR "/" DM_CONTROL_NODE`.
        if matches!(e, Expr::Str(_) | Expr::Ident(_)) {
            let mut chain = vec![e];
            loop {
                match self.peek() {
                    Some(CTok::Str(_)) => {
                        if let Some(CTok::Str(s)) = self.bump() {
                            chain.push(Expr::Str(s));
                        }
                    }
                    Some(CTok::Ident(id))
                        if chain.len() > 1
                            && id.chars().all(|c| c.is_ascii_uppercase() || c == '_') =>
                    {
                        let id = id.clone();
                        self.pos += 1;
                        chain.push(Expr::Ident(id));
                    }
                    _ => break,
                }
            }
            if chain.len() == 1 {
                e = chain.pop().expect("non-empty chain");
            } else {
                e = Expr::Call {
                    func: "__concat".into(),
                    args: chain,
                };
            }
        }
        Ok(e)
    }

    /// One call argument. `_IOWR('f', 0, struct dm_ioctl)`-style macros
    /// take *types* as arguments; a bare type in argument position is
    /// represented as `SizeofType` (the macro uses its size, and the
    /// analyzers recover the struct name from it).
    fn call_arg(&mut self) -> Result<Expr, CParseError> {
        let type_arg = match self.peek_ident() {
            Some("struct") | Some("union") => matches!(self.peek_at(1), Some(CTok::Ident(_))),
            Some(id) if TYPE_KEYWORDS.contains(&id) => {
                self.is_punct(1, ",") || self.is_punct(1, ")") || self.is_punct(1, "*")
            }
            _ => false,
        };
        if type_arg {
            let ty = self.parse_type()?;
            return Ok(Expr::SizeofType(ty));
        }
        self.parse_assign()
    }

    fn parse_primary(&mut self) -> Result<Expr, CParseError> {
        match self.peek().cloned() {
            Some(CTok::Num(n)) => {
                self.pos += 1;
                Ok(Expr::Num(n))
            }
            Some(CTok::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Str(s))
            }
            Some(CTok::Ident(s)) => {
                self.pos += 1;
                Ok(Expr::Ident(s))
            }
            Some(CTok::Punct("(")) => {
                self.pos += 1;
                let e = self.parse_assign()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Some(CTok::Punct("{")) => self.init_list(),
            Some(t) => self.err(format!("unexpected {t} in expression")),
            None => self.err("unexpected end of file in expression"),
        }
    }

    fn init_list(&mut self) -> Result<Expr, CParseError> {
        self.expect_punct("{")?;
        let mut entries = Vec::new();
        while !self.eat_punct("}") {
            if self.is_punct(0, ".") && matches!(self.peek_at(1), Some(CTok::Ident(_))) {
                self.pos += 1;
                let field = self.ident()?;
                self.expect_punct("=")?;
                let value = self.parse_assign()?;
                entries.push((Some(field), value));
            } else {
                let value = self.parse_assign()?;
                entries.push((None, value));
            }
            if !self.eat_punct(",") && !self.is_punct(0, "}") {
                return self.err("expected `,` or `}` in initializer");
            }
        }
        Ok(Expr::InitList { entries })
    }
}

/// Parse a standalone C expression (used for `#define` macro bodies).
///
/// # Errors
///
/// Returns [`CParseError`] if the text is not a single valid expression.
pub fn parse_expr_str(src: &str) -> Result<Expr, CParseError> {
    let toks = clex(src).map_err(|e| CParseError {
        message: e.message,
        line: e.line,
        file: "<expr>".to_string(),
    })?;
    let mut p = CParser {
        toks,
        pos: 0,
        file: "<expr>".to_string(),
        src: src.to_string(),
        typedefs: BTreeSet::new(),
    };
    let e = p.parse_assign()?;
    if p.pos != p.toks.len() {
        return p.err("trailing tokens after expression");
    }
    Ok(e)
}

fn canonical_base(words: &[String]) -> String {
    let joined = words.join(" ");
    match joined.as_str() {
        "unsigned" | "unsigned int" => "uint".to_string(),
        "unsigned long" | "unsigned long long" => "ulong".to_string(),
        "unsigned short" => "ushort".to_string(),
        "unsigned char" => "uchar".to_string(),
        "signed int" | "signed" => "int".to_string(),
        "long long" => "long".to_string(),
        _ => joined,
    }
}

fn parse_macro(directive: &str) -> Option<MacroDef> {
    let rest = directive.strip_prefix("define")?.trim_start();
    let name_end = rest
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    let name = rest[..name_end].to_string();
    if name.is_empty() {
        return None;
    }
    let after = &rest[name_end..];
    if let Some(stripped) = after.strip_prefix('(') {
        let close = stripped.find(')')?;
        let params: Vec<String> = stripped[..close]
            .split(',')
            .map(|p| p.trim().to_string())
            .filter(|p| !p.is_empty())
            .collect();
        Some(MacroDef {
            name,
            params: Some(params),
            body: stripped[close + 1..].trim().to_string(),
        })
    } else {
        Some(MacroDef {
            name,
            params: None,
            body: after.trim().to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> CFile {
        cparse("test.c", src).unwrap()
    }

    #[test]
    fn parses_file_operations_initializer() {
        let f = parse_ok(
            r#"
static const struct file_operations _ctl_fops = {
    .open = dm_open,
    .unlocked_ioctl = dm_ctl_ioctl,
    .compat_ioctl = dm_compat_ctl_ioctl,
};
"#,
        );
        let CItemKind::Var(v) = &f.items[0].kind else {
            panic!("expected var")
        };
        assert_eq!(v.name, "_ctl_fops");
        assert_eq!(v.ty.base, "struct file_operations");
        let init = v.init.as_ref().unwrap();
        assert_eq!(
            init.init_field("unlocked_ioctl").and_then(Expr::as_ident),
            Some("dm_ctl_ioctl")
        );
        assert!(f.items[0].text.contains(".open = dm_open"));
    }

    #[test]
    fn parses_miscdevice_with_concat_nodename() {
        let f = parse_ok(
            r#"
#define DM_DIR "mapper"
static struct miscdevice _dm_misc = {
    .minor = 252,
    .name = "device-mapper",
    .nodename = DM_DIR "/" "control",
    .fops = &_ctl_fops,
};
"#,
        );
        let CItemKind::Var(v) = &f.items[1].kind else {
            panic!("expected var")
        };
        let init = v.init.as_ref().unwrap();
        let node = init.init_field("nodename").unwrap();
        match node {
            Expr::Call { func, args } => {
                assert_eq!(func, "__concat");
                assert_eq!(args.len(), 3);
            }
            other => panic!("expected concat, got {other:?}"),
        }
        assert_eq!(
            init.init_field("fops").and_then(Expr::as_ident),
            Some("_ctl_fops")
        );
    }

    #[test]
    fn parses_switch_dispatch() {
        let f = parse_ok(
            r#"
static long vid_ioctl(struct file *file, unsigned int cmd, unsigned long arg) {
    switch (cmd) {
    case 0x1234:
        return do_a(arg);
    case VID_SET:
    case VID_GET:
        return do_b(arg);
    default:
        return -25;
    }
}
"#,
        );
        let CItemKind::Function(func) = &f.items[0].kind else {
            panic!("expected function")
        };
        assert_eq!(func.name, "vid_ioctl");
        assert_eq!(func.params.len(), 3);
        assert_eq!(func.params[1].1.base, "uint");
        let Stmt::Switch { cases, .. } = &func.body[0] else {
            panic!("expected switch")
        };
        assert_eq!(cases.len(), 3);
        assert_eq!(cases[1].labels.len(), 2);
    }

    #[test]
    fn parses_ioc_macros() {
        let f = parse_ok(
            "#define DM_VERSION _IOWR('f', 0, struct dm_ioctl)\n#define DM_DEV_CREATE _IOWR('f', 3, struct dm_ioctl)\n",
        );
        let CItemKind::Macro(m) = &f.items[0].kind else {
            panic!("expected macro")
        };
        assert_eq!(m.name, "DM_VERSION");
        assert!(m.params.is_none());
        assert!(m.body.contains("_IOWR"));
    }

    #[test]
    fn parses_function_like_macro() {
        let f = parse_ok("#define _IOC_NR(nr) ((nr) & 0xff)\n");
        let CItemKind::Macro(m) = &f.items[0].kind else {
            panic!("expected macro")
        };
        assert_eq!(m.params.as_deref(), Some(&["nr".to_string()][..]));
        assert_eq!(m.body, "((nr) & 0xff)");
    }

    #[test]
    fn parses_struct_with_flex_array() {
        let f = parse_ok(
            "struct vfio_pci_hot_reset_info {\n    __u32 count;\n    struct vfio_pci_dependent_device devices[];\n};\n",
        );
        let CItemKind::Struct(s) = &f.items[0].kind else {
            panic!("expected struct")
        };
        assert_eq!(s.fields[1].ty.array, Some(CArraySize::Flex));
        assert_eq!(s.fields[1].ty.base, "struct vfio_pci_dependent_device");
    }

    #[test]
    fn parses_lookup_table() {
        let f = parse_ok(
            r#"
typedef int (*ioctl_fn)(struct file *file, unsigned long arg);
struct dm_ioctl_entry {
    unsigned int cmd;
    ioctl_fn fn;
};
static struct dm_ioctl_entry _ioctls[] = {
    { 0, dm_version },
    { 3, dev_create },
};
"#,
        );
        let CItemKind::Var(v) = &f.items[2].kind else {
            panic!("expected var")
        };
        assert_eq!(v.ty.array, Some(CArraySize::Flex));
        let Expr::InitList { entries } = v.init.as_ref().unwrap() else {
            panic!("expected list")
        };
        assert_eq!(entries.len(), 2);
        let Expr::InitList { entries: row } = &entries[0].1 else {
            panic!("expected nested list")
        };
        assert_eq!(row[1].1.as_ident(), Some("dm_version"));
    }

    #[test]
    fn parses_cmd_transform_body() {
        let f = parse_ok(
            r#"
static int ctl_ioctl(struct file *file, uint command, ulong u) {
    uint cmd = _IOC_NR(command);
    if (cmd == 0)
        return 0;
    cmd = cmd & 0xff;
    return lookup_ioctl(cmd, (struct dm_ioctl *)u);
}
"#,
        );
        let CItemKind::Function(func) = &f.items[0].kind else {
            panic!("expected fn")
        };
        let Stmt::Decl { name, init, .. } = &func.body[0] else {
            panic!("expected decl")
        };
        assert_eq!(name, "cmd");
        assert!(matches!(init, Some(Expr::Call { func, .. }) if func == "_IOC_NR"));
        // Cast inside the call argument.
        let Stmt::Return(Some(Expr::Call { args, .. })) = &func.body[3] else {
            panic!("expected return call")
        };
        assert!(matches!(&args[1], Expr::Cast { ty, .. } if ty.base == "struct dm_ioctl"));
    }

    #[test]
    fn parses_copy_from_user_and_sizeof() {
        let f = parse_ok(
            r#"
static int handler(ulong arg) {
    struct hpet_info info;
    if (copy_from_user(&info, (void *)arg, sizeof(struct hpet_info)))
        return -14;
    for (int i = 0; i < 4; i++)
        consume(i);
    while (info.flags) {
        info.flags--;
    }
    return 0;
}
"#,
        );
        let CItemKind::Function(func) = &f.items[0].kind else {
            panic!("expected fn")
        };
        // decl, if, for, while, return
        assert_eq!(func.body.len(), 5);
    }

    #[test]
    fn parses_enum() {
        let f = parse_ok("enum vid_cmds { VID_A = 5, VID_B, VID_C = 9 };\n");
        let CItemKind::Enum(e) = &f.items[0].kind else {
            panic!("expected enum")
        };
        assert_eq!(
            e.values(),
            vec![
                ("VID_A".to_string(), 5),
                ("VID_B".to_string(), 6),
                ("VID_C".to_string(), 9)
            ]
        );
    }

    #[test]
    fn parses_ternary_and_compound_assign() {
        let f = parse_ok("static int f(int a) {\n    a += 2;\n    return a > 0 ? a : -a;\n}\n");
        let CItemKind::Function(func) = &f.items[0].kind else {
            panic!()
        };
        assert!(matches!(&func.body[0], Stmt::Expr(Expr::Assign { .. })));
        assert!(matches!(
            &func.body[1],
            Stmt::Return(Some(Expr::Ternary { .. }))
        ));
    }

    #[test]
    fn prototype_parsed() {
        let f = parse_ok("long dm_ctl_ioctl(struct file *file, uint command, ulong u);\n");
        let CItemKind::Function(func) = &f.items[0].kind else {
            panic!()
        };
        assert!(func.is_proto);
    }

    #[test]
    fn item_text_is_exact_span() {
        let src = "int a = 1;\nint b = 2;\n";
        let f = parse_ok(src);
        assert_eq!(f.items[0].text, "int a = 1;");
        assert_eq!(f.items[1].text, "int b = 2;");
    }

    #[test]
    fn function_pointer_struct_member() {
        let f = parse_ok(
            "struct proto_ops {\n    int family;\n    int (*bind)(struct socket *sock, int len);\n};\n",
        );
        let CItemKind::Struct(s) = &f.items[0].kind else {
            panic!()
        };
        assert_eq!(s.fields[1].name, "bind");
        assert!(s.fields[1].ty.base.starts_with("fnptr:"));
    }
}
