//! Procedural population generator.
//!
//! The paper's census (Table 1) covers 666 driver and 85 socket
//! operation handlers under `allyesconfig`, of which 278 / 81 are loaded
//! under the syzbot configuration, 75 / 66 of those are missing one or
//! more syscall descriptions, and 45 / 22 have no (driver) or almost no
//! (socket) descriptions at all. The flagship catalog provides the
//! hand-authored head of that distribution; this module generates the
//! remaining population from a seeded RNG so the census reproduces at
//! full scale while every handler still has complete ground truth.
//!
//! Difficulty features are distributed deliberately:
//!
//! * a controlled number of loaded-incomplete drivers are "friendly"
//!   (miscdevice-by-name + switch dispatch + no transform) — the subset
//!   the SyzDescribe baseline can handle (paper: 20 of 75);
//! * five loaded-incomplete drivers delegate through more hops than
//!   `MAX_ITER`, so the iterative analysis gives up (paper: 70 of 75
//!   valid for KernelGPT);
//! * nine loaded-incomplete sockets hide their address family behind a
//!   runtime helper (paper: 57 of 66 valid).

use crate::blueprint::{
    ArgDir, ArgField, ArgKind, ArgStruct, Blueprint, BlueprintKind, CmdBlueprint, CmdEncoding,
    CmdTransform, DispatchStyle, DriverBlueprint, ExistingSpec, FieldRole, FieldTy, RegStyle,
    SockCall, SocketBlueprint,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Census targets for the synthetic population (paper values minus the
/// flagship contribution, computed by the caller).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthPlan {
    /// Synthetic drivers that are loaded and fully described.
    pub drivers_loaded_complete: usize,
    /// Loaded drivers with partial existing specs (incomplete).
    pub drivers_loaded_partial: usize,
    /// Loaded drivers with no existing specs at all.
    pub drivers_loaded_none: usize,
    /// Drivers not loaded under the syzbot config.
    pub drivers_unloaded: usize,
    /// Of the loaded-incomplete drivers, how many are friendly to
    /// rule-based static analysis.
    pub drivers_friendly: usize,
    /// Of the loaded-incomplete drivers, how many delegate deeper than
    /// `MAX_ITER` (KernelGPT fails on these).
    pub drivers_too_deep: usize,
    /// Loaded sockets fully described.
    pub sockets_loaded_complete: usize,
    /// Loaded sockets with partial specs.
    pub sockets_loaded_partial: usize,
    /// Loaded sockets with (almost) no specs.
    pub sockets_loaded_none: usize,
    /// Sockets not loaded.
    pub sockets_unloaded: usize,
    /// Loaded-incomplete sockets whose family id is runtime-opaque
    /// (KernelGPT fails on these).
    pub sockets_opaque: usize,
}

impl SynthPlan {
    /// The default plan: paper Table 1 totals minus the flagship head
    /// (31 drivers: 22 incomplete of which 10 spec-less; 10 sockets:
    /// 7 incomplete of which 1 nearly spec-less).
    #[must_use]
    pub fn paper_defaults() -> SynthPlan {
        SynthPlan {
            // 278 loaded drivers total − 38 flagships = 240.
            // 75 incomplete − 26 flagship incomplete = 49, of which
            // 45 spec-less − 10 flagship spec-less = 35.
            drivers_loaded_complete: 191,
            drivers_loaded_partial: 14,
            drivers_loaded_none: 35,
            // 666 total − 278 loaded = 388 unloaded.
            drivers_unloaded: 388,
            // SyzDescribe succeeds on 20 of 75 incomplete handlers;
            // the flagship set contributes the rest, so only a few
            // synthetic incomplete drivers are rule-friendly.
            drivers_friendly: 5,
            drivers_too_deep: 5,
            // 81 loaded sockets − 10 flagships = 71;
            // 66 incomplete − 7 flagship incomplete = 59, of which 22
            // (all 22 of the paper's >80%-missing sockets) are spec-less.
            sockets_loaded_complete: 12,
            sockets_loaded_partial: 37,
            sockets_loaded_none: 22,
            // 85 total − 81 loaded = 4.
            sockets_unloaded: 4,
            sockets_opaque: 9,
        }
    }
}

/// Generate the synthetic population for a plan. Deterministic in
/// `seed`.
#[must_use]
pub fn generate(plan: &SynthPlan, seed: u64) -> Vec<Blueprint> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut idx = 0usize;

    let push_driver = |out: &mut Vec<Blueprint>,
                       rng: &mut StdRng,
                       idx: &mut usize,
                       loaded: bool,
                       existing: Existing,
                       friendly: bool,
                       too_deep: bool| {
        out.push(gen_driver(rng, *idx, loaded, existing, friendly, too_deep));
        *idx += 1;
    };

    // Loaded-incomplete drivers first so difficulty features land there:
    // the first `drivers_friendly` are rule-friendly, the next
    // `drivers_too_deep` delegate past MAX_ITER, the rest are mixed.
    let incomplete = plan.drivers_loaded_partial + plan.drivers_loaded_none;
    for i in 0..incomplete {
        let existing = if i < plan.drivers_loaded_none {
            Existing::None
        } else {
            Existing::Partial
        };
        let friendly = i < plan.drivers_friendly.min(incomplete);
        let too_deep =
            !friendly && i < (plan.drivers_friendly + plan.drivers_too_deep).min(incomplete);
        push_driver(
            &mut out, &mut rng, &mut idx, true, existing, friendly, too_deep,
        );
    }
    for _ in 0..plan.drivers_loaded_complete {
        push_driver(
            &mut out,
            &mut rng,
            &mut idx,
            true,
            Existing::Full,
            false,
            false,
        );
    }
    for _ in 0..plan.drivers_unloaded {
        push_driver(
            &mut out,
            &mut rng,
            &mut idx,
            false,
            Existing::None,
            false,
            false,
        );
    }

    // Sockets: the first `sockets_opaque` incomplete ones hide their
    // family id from source analysis.
    let s_incomplete = plan.sockets_loaded_partial + plan.sockets_loaded_none;
    let mut sidx = 0usize;
    for i in 0..s_incomplete {
        let existing = if i < plan.sockets_loaded_none {
            Existing::None
        } else {
            Existing::Partial
        };
        let opaque = i < plan.sockets_opaque.min(s_incomplete);
        out.push(gen_socket(&mut rng, sidx, true, existing, opaque));
        sidx += 1;
    }
    for _ in 0..plan.sockets_loaded_complete {
        out.push(gen_socket(&mut rng, sidx, true, Existing::Full, false));
        sidx += 1;
    }
    for _ in 0..plan.sockets_unloaded {
        out.push(gen_socket(&mut rng, sidx, false, Existing::None, false));
        sidx += 1;
    }
    out
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Existing {
    None,
    Partial,
    Full,
}

fn gen_driver(
    rng: &mut StdRng,
    idx: usize,
    loaded: bool,
    existing: Existing,
    friendly: bool,
    too_deep: bool,
) -> Blueprint {
    let id = format!("sdrv{idx}");
    let upper = id.to_uppercase();
    let (reg, dispatch, transform) = if friendly {
        (
            RegStyle::MiscName,
            DispatchStyle::Switch,
            CmdTransform::None,
        )
    } else if too_deep {
        (
            RegStyle::MiscName,
            DispatchStyle::Delegated(7),
            CmdTransform::None,
        )
    } else if loaded && existing != Existing::Full {
        // Loaded-but-incomplete drivers are exactly the ones static
        // rules historically failed on — bias them hostile (lookup
        // tables, delegation, nodename registration, transforms).
        let reg = match rng.random_range(0..10u32) {
            0..=2 => RegStyle::MiscNodename,
            3 | 4 => RegStyle::CdevIndexed,
            5 => RegStyle::ProcOps,
            _ => RegStyle::MiscName,
        };
        let dispatch = match rng.random_range(0..10u32) {
            0..=4 => DispatchStyle::LookupTable,
            5..=7 => DispatchStyle::Delegated(rng.random_range(2..=3)),
            _ => DispatchStyle::Switch,
        };
        let transform = match rng.random_range(0..10u32) {
            0..=4 => CmdTransform::IocNr,
            5 => CmdTransform::Masked(0xff),
            _ => CmdTransform::None,
        };
        (reg, dispatch, transform)
    } else {
        let reg = match rng.random_range(0..10u32) {
            0 => RegStyle::MiscNodename,
            1 | 2 => RegStyle::Cdev,
            3 => RegStyle::ProcOps,
            _ => RegStyle::MiscName,
        };
        let dispatch = match rng.random_range(0..10u32) {
            0 | 1 => DispatchStyle::IfChain,
            2 | 3 => DispatchStyle::LookupTable,
            4 => DispatchStyle::Delegated(rng.random_range(1..=3)),
            _ => DispatchStyle::Switch,
        };
        let transform = match rng.random_range(0..10u32) {
            0 | 1 => CmdTransform::IocNr,
            2 => CmdTransform::Masked(0xff),
            _ => CmdTransform::None,
        };
        (reg, dispatch, transform)
    };
    let dev_path = match reg {
        RegStyle::MiscNodename => format!("/dev/synth/{id}"),
        RegStyle::ProcOps => format!("/proc/{id}"),
        _ => format!("/dev/{id}"),
    };
    let magic = 0x20 + (idx as u64 % 0x5f);
    let n_cmds = rng.random_range(2..=8usize);
    let n_structs = rng.random_range(1..=2usize);
    let mut structs = Vec::new();
    for si in 0..n_structs {
        structs.push(gen_struct(rng, &format!("{id}_args{si}"), si == 0));
    }
    let mut cmds = Vec::new();
    for ci in 0..n_cmds {
        let arg = match rng.random_range(0..10u32) {
            0 | 1 => ArgKind::Int,
            2 => ArgKind::None,
            _ => ArgKind::Struct(structs[ci % structs.len()].name.clone()),
        };
        let dir = match rng.random_range(0..4u32) {
            0 => ArgDir::In,
            1 => ArgDir::Out,
            _ => ArgDir::InOut,
        };
        let encoding = if rng.random_bool(0.85) {
            let d = match dir {
                ArgDir::In => 1,
                ArgDir::Out => 2,
                ArgDir::InOut => 3,
            };
            CmdEncoding::Ioc {
                dir: if matches!(arg, ArgKind::None) { 0 } else { d },
            }
        } else {
            CmdEncoding::Raw((magic << 8) | ci as u64)
        };
        cmds.push(CmdBlueprint {
            encoding,
            ..CmdBlueprint::new(format!("{upper}_CMD{ci}"), ci as u64, arg, dir)
        });
    }
    let existing = match existing {
        Existing::None => ExistingSpec::None,
        Existing::Full => ExistingSpec::Full,
        Existing::Partial => {
            let keep = rng.random_range(1..n_cmds.max(2));
            ExistingSpec::Partial {
                cmds: cmds.iter().take(keep).map(|c| c.name.clone()).collect(),
                imprecise_types: rng.random_bool(0.3),
                calls: Vec::new(),
            }
        }
    };
    Blueprint {
        id: id.clone(),
        kind: BlueprintKind::Driver(DriverBlueprint {
            reg,
            dev_path,
            dispatch,
            transform,
            magic,
            open_blocks: 4,
        }),
        cmds,
        structs,
        flag_sets: Vec::new(),
        bugs: Vec::new(),
        loaded,
        existing,
        source_file: format!("drivers/synth/{id}.c"),
        comment: None,
    }
}

fn gen_struct(rng: &mut StdRng, name: &str, with_roles: bool) -> ArgStruct {
    let n = rng.random_range(2..=6usize);
    let mut fields = Vec::new();
    for fi in 0..n {
        let ty = match rng.random_range(0..6u32) {
            0 => FieldTy::U8,
            1 => FieldTy::U16,
            2 => FieldTy::U64,
            3 => FieldTy::CharArray(rng.random_range(1..=8) * 8),
            _ => FieldTy::U32,
        };
        let role = if with_roles && fi == 1 && rng.random_bool(0.5) {
            FieldRole::CheckedRange(0, rng.random_range(1..=64))
        } else if with_roles && fi == 2 && rng.random_bool(0.3) {
            FieldRole::Reserved
        } else {
            FieldRole::Plain
        };
        fields.push(ArgField::with_role(format!("f{fi}"), ty, role));
    }
    ArgStruct {
        name: name.into(),
        fields,
        is_union: false,
    }
}

fn gen_socket(
    rng: &mut StdRng,
    idx: usize,
    loaded: bool,
    existing: Existing,
    opaque: bool,
) -> Blueprint {
    let id = format!("ssock{idx}");
    let upper = id.to_uppercase();
    let family = 40 + idx as u64; // synthetic family numbers
    let n_opts = rng.random_range(2..=8usize);
    let addr = ArgStruct {
        name: format!("sockaddr_{id}"),
        fields: vec![
            ArgField::with_role("family", FieldTy::U16, FieldRole::MagicCheck(family)),
            ArgField::plain("port", FieldTy::U16),
            ArgField::plain("addr", FieldTy::U32),
        ],
        is_union: false,
    };
    let opt_struct = gen_struct(rng, &format!("{id}_opt"), true);
    let mut cmds = Vec::new();
    for oi in 0..n_opts {
        let arg = if rng.random_bool(0.5) {
            ArgKind::Struct(opt_struct.name.clone())
        } else {
            ArgKind::Int
        };
        cmds.push(CmdBlueprint {
            encoding: CmdEncoding::Raw(oi as u64 + 1),
            ..CmdBlueprint::new(format!("{upper}_OPT{oi}"), oi as u64 + 1, arg, ArgDir::In)
        });
    }
    let all_calls = vec![
        SockCall::Bind,
        SockCall::Connect,
        SockCall::Sendto,
        SockCall::Recvfrom,
    ];
    let existing = match existing {
        // "Missing >80%" in the census: nothing described at all.
        Existing::None => ExistingSpec::None,
        Existing::Full => ExistingSpec::Full,
        Existing::Partial => {
            let keep = rng.random_range(1..n_opts.max(2));
            ExistingSpec::Partial {
                cmds: cmds.iter().take(keep).map(|c| c.name.clone()).collect(),
                imprecise_types: rng.random_bool(0.3),
                calls: all_calls[..rng.random_range(1..=all_calls.len())].to_vec(),
            }
        }
    };
    Blueprint {
        id: id.clone(),
        kind: BlueprintKind::Socket(SocketBlueprint {
            family_name: format!("AF_{upper}"),
            family,
            sock_type: rng.random_range(1..=5),
            proto: 0,
            level: 500 + idx as u64,
            level_name: format!("SOL_{upper}"),
            calls: all_calls,
            socket_blocks: 4,
            opaque_family: opaque,
        }),
        cmds,
        structs: vec![addr, opt_struct],
        flag_sets: Vec::new(),
        bugs: Vec::new(),
        loaded,
        existing,
        source_file: format!("net/synth/{id}.c"),
        comment: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emit::emit_blueprint;
    use crate::parser::cparse;

    #[test]
    fn generation_is_deterministic() {
        let plan = SynthPlan {
            drivers_loaded_complete: 3,
            drivers_loaded_partial: 3,
            drivers_loaded_none: 2,
            drivers_unloaded: 2,
            drivers_friendly: 2,
            drivers_too_deep: 1,
            sockets_loaded_complete: 1,
            sockets_loaded_partial: 2,
            sockets_loaded_none: 1,
            sockets_unloaded: 1,
            sockets_opaque: 1,
        };
        let a = generate(&plan, 7);
        let b = generate(&plan, 7);
        assert_eq!(a, b);
        let c = generate(&plan, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn plan_counts_respected() {
        let plan = SynthPlan::paper_defaults();
        let all = generate(&plan, 0);
        let drivers: Vec<_> = all.iter().filter(|b| b.driver().is_some()).collect();
        let sockets: Vec<_> = all.iter().filter(|b| b.socket().is_some()).collect();
        assert_eq!(drivers.len(), 191 + 14 + 35 + 388);
        assert_eq!(sockets.len(), 12 + 37 + 22 + 4);
        assert_eq!(drivers.iter().filter(|b| b.loaded).count(), 240);
        assert_eq!(sockets.iter().filter(|b| b.loaded).count(), 71);
        let deep = drivers
            .iter()
            .filter(|b| b.driver().unwrap().dispatch.delegation_depth() > 5)
            .count();
        assert_eq!(deep, 5);
        let opaque = sockets
            .iter()
            .filter(|b| b.socket().unwrap().opaque_family)
            .count();
        assert_eq!(opaque, 9);
    }

    #[test]
    fn sampled_synthetic_sources_parse_and_agree() {
        let plan = SynthPlan::paper_defaults();
        let all = generate(&plan, 0);
        // Parsing all 700+ would be slow in debug; sample broadly.
        for bp in all.iter().step_by(17) {
            let src = emit_blueprint(bp);
            let f =
                cparse(&bp.source_file, &src).unwrap_or_else(|e| panic!("{}: {e}\n{src}", bp.id));
            assert!(!f.items.is_empty());
        }
    }

    #[test]
    fn synthetic_ground_truth_validates() {
        let plan = SynthPlan::paper_defaults();
        let all = generate(&plan, 0);
        let mut consts = kgpt_syzlang::ConstDb::new();
        consts.define("AT_FDCWD", 0xffff_ff9c);
        let mut files = Vec::new();
        for bp in all.iter().step_by(23) {
            for (k, v) in bp.const_entries() {
                consts.define(k, v);
            }
            files.push(bp.ground_truth_spec());
        }
        let db = kgpt_syzlang::SpecDb::from_files(files);
        let errors = kgpt_syzlang::validate::validate(&db, &consts);
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn ids_unique_across_population() {
        let plan = SynthPlan::paper_defaults();
        let all = generate(&plan, 0);
        let mut ids: Vec<&str> = all.iter().map(|b| b.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
    }
}
