//! The deep-chain workload: a four-driver suite whose interesting
//! behaviour sits behind **deep producer chains** — a resource handed
//! across three or more calls before the crashing ioctl.
//!
//! The chain is `openat(/dev/dcroot)` → `DCROOT_MAKE_LINK` (link fd)
//! → `DCLINK_OPEN_STREAM` (stream fd) → `DCSTREAM_MAP_RING` (buffer
//! fd), with state machines and checked argument structs at every
//! hop. Unlike the dm smoke workload — whose coverage surface
//! saturates well inside the CI budget — most of this suite's blocks
//! are `deep_blocks` gated on *valid* calls against fds three or four
//! hops down the chain, so coverage accumulates slowly, rare seeds
//! matter, and both the cross-shard seed hub's union lift and the
//! crash-triage minimizer's shrink ratio are measurable
//! (`fuzz_bench` gates both; see EXPERIMENTS.md).
//!
//! The five injected bugs triage to five distinct crash signatures
//! (`CrashSignature` in `kgpt-vkernel`) spanning chain depths 1–4 and
//! four sanitizer kinds:
//!
//! | bug | trigger | depth |
//! |---|---|---|
//! | `kmalloc bug in dcroot_audit` | oversized `budget` | 1 |
//! | `KASAN: use-after-free in dclink_tune` | `RESET` then `TUNE` | 2 |
//! | `general protection fault in dcstream_flush` | `ARM` then `FLUSH` (armed needs a valid `START`) | 3 |
//! | `divide error in dcbuf_scale` | valid `SCALE` with `divisor == 0` | 4 |
//! | `ODEBUG bug in dcbuf_commit` | 3 valid `COMMIT`s after `PIN` | 4 |
//!
//! A minimal reproducer for the deepest bugs is 5–8 calls; the raw
//! programs a campaign captures are typically much longer, which is
//! exactly what makes ddmin minimization meaningful on this suite.

use crate::blueprint::{
    ArgDir, ArgField, ArgKind, ArgStruct, Blueprint, BlueprintKind, BugBlueprint, CmdBlueprint,
    CmdEffect, CmdEncoding, CmdTransform, DispatchStyle, DriverBlueprint, ExistingSpec, FieldRole,
    FieldTy, RegStyle, Trigger,
};

fn drv(id: &str, path: &str, reg: RegStyle, magic: u64, file: &str) -> Blueprint {
    Blueprint {
        id: id.into(),
        kind: BlueprintKind::Driver(DriverBlueprint {
            reg,
            dev_path: path.into(),
            dispatch: DispatchStyle::Switch,
            transform: CmdTransform::None,
            magic,
            open_blocks: 4,
        }),
        cmds: Vec::new(),
        structs: Vec::new(),
        flag_sets: Vec::new(),
        bugs: Vec::new(),
        loaded: true,
        existing: ExistingSpec::None,
        source_file: file.into(),
        comment: None,
    }
}

fn c(name: &str, nr: u64, arg: ArgKind, dir: ArgDir) -> CmdBlueprint {
    CmdBlueprint::new(name, nr, arg, dir)
}

fn cio(name: &str, nr: u64) -> CmdBlueprint {
    CmdBlueprint {
        encoding: CmdEncoding::Ioc { dir: 0 },
        ..CmdBlueprint::new(name, nr, ArgKind::None, ArgDir::In)
    }
}

fn st(name: &str, fields: Vec<ArgField>) -> ArgStruct {
    ArgStruct {
        name: name.into(),
        fields,
        is_union: false,
    }
}

fn p(name: &str, ty: FieldTy) -> ArgField {
    ArgField::plain(name, ty)
}

fn r(name: &str, ty: FieldTy, role: FieldRole) -> ArgField {
    ArgField::with_role(name, ty, role)
}

fn bug(title: &str, trigger: Trigger) -> BugBlueprint {
    BugBlueprint {
        title: title.into(),
        cve: None,
        trigger,
    }
}

/// The registered root of the chain: `/dev/dcroot`. `DCROOT_MAKE_LINK`
/// mints the depth-2 link fd; the shallow kmalloc bug lives here.
#[must_use]
pub fn dcroot() -> Blueprint {
    let mut bp = drv(
        "dcroot",
        "/dev/dcroot",
        RegStyle::MiscName,
        0xd7,
        "drivers/dc/dcroot.c",
    );
    bp.comment = Some("Deep-chain root control node; DCROOT_MAKE_LINK returns a link fd".into());
    bp.structs = vec![st(
        "dcroot_cfg",
        vec![
            r("magic", FieldTy::U32, FieldRole::MagicCheck(0x4443_5246)),
            r("window", FieldTy::U32, FieldRole::CheckedRange(1, 64)),
            r("budget", FieldTy::U32, FieldRole::SizeOfPayload),
            r("reserved", FieldTy::U32, FieldRole::Reserved),
        ],
    )];
    let cfg = || ArgKind::Struct("dcroot_cfg".into());
    bp.cmds = vec![
        cio("DCROOT_INFO", 0),
        CmdBlueprint {
            effect: CmdEffect::StateStep {
                sets: 1,
                requires: 0,
            },
            deep_blocks: 10,
            ..c("DCROOT_CONFIGURE", 1, cfg(), ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            effect: CmdEffect::CreatesFd {
                handler: "dclink".into(),
            },
            blocks: 10,
            ..c("DCROOT_MAKE_LINK", 2, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            deep_blocks: 12,
            ..c("DCROOT_AUDIT", 3, cfg(), ArgDir::In)
        },
        c("DCROOT_STATS", 4, ArgKind::Int, ArgDir::In),
    ];
    bp.bugs = vec![bug(
        "kmalloc bug in dcroot_audit",
        Trigger::FieldAbove {
            cmd: "DCROOT_AUDIT".into(),
            field: "budget".into(),
            min: 0x3fff_ffff,
        },
    )];
    bp
}

/// Depth-2 link fd (minted by `DCROOT_MAKE_LINK`). `DCLINK_OPEN_STREAM`
/// mints the depth-3 stream fd; a reset/tune sequence bug lives here.
#[must_use]
pub fn dclink() -> Blueprint {
    let mut bp = drv("dclink", "", RegStyle::Anon, 0xd8, "drivers/dc/dclink.c");
    bp.structs = vec![st(
        "dclink_params",
        vec![
            r("channel", FieldTy::U32, FieldRole::CheckedRange(0, 15)),
            r(
                "mode",
                FieldTy::U32,
                FieldRole::Flags("dclink_modes".into()),
            ),
            p("cookie", FieldTy::U64),
        ],
    )];
    bp.flag_sets = vec![(
        "dclink_modes".into(),
        vec![
            ("DCLINK_M_RAW".into(), 1),
            ("DCLINK_M_COOKED".into(), 2),
            ("DCLINK_M_TURBO".into(), 4),
        ],
    )];
    let params = || ArgKind::Struct("dclink_params".into());
    bp.cmds = vec![
        CmdBlueprint {
            effect: CmdEffect::StateStep {
                sets: 1,
                requires: 0,
            },
            deep_blocks: 14,
            ..c("DCLINK_BIND", 0, params(), ArgDir::In)
        },
        CmdBlueprint {
            deep_blocks: 10,
            ..c("DCLINK_TUNE", 1, params(), ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            effect: CmdEffect::CreatesFd {
                handler: "dcstream".into(),
            },
            blocks: 10,
            ..c("DCLINK_OPEN_STREAM", 2, ArgKind::Int, ArgDir::In)
        },
        cio("DCLINK_RESET", 3),
        CmdBlueprint {
            effect: CmdEffect::StateStep {
                sets: 2,
                requires: 1,
            },
            deep_blocks: 16,
            ..c("DCLINK_CALIBRATE", 4, params(), ArgDir::In)
        },
    ];
    bp.bugs = vec![bug(
        "KASAN: use-after-free in dclink_tune",
        Trigger::Sequence {
            first: "DCLINK_RESET".into(),
            then: "DCLINK_TUNE".into(),
        },
    )];
    bp
}

/// Depth-3 stream fd (minted by `DCLINK_OPEN_STREAM`).
/// `DCSTREAM_MAP_RING` mints the depth-4 buffer fd; arming the stream
/// (which itself needs a valid `START`) and flushing it faults.
#[must_use]
pub fn dcstream() -> Blueprint {
    let mut bp = drv(
        "dcstream",
        "",
        RegStyle::Anon,
        0xd9,
        "drivers/dc/dcstream.c",
    );
    bp.structs = vec![st(
        "dcstream_req",
        vec![
            r("ring_slots", FieldTy::U32, FieldRole::CheckedRange(1, 8)),
            r("prio", FieldTy::U32, FieldRole::CheckedRange(0, 3)),
            r("pad", FieldTy::U32, FieldRole::Reserved),
            p("label", FieldTy::CharArray(8)),
        ],
    )];
    let req = || ArgKind::Struct("dcstream_req".into());
    bp.cmds = vec![
        CmdBlueprint {
            effect: CmdEffect::StateStep {
                sets: 1,
                requires: 0,
            },
            deep_blocks: 14,
            ..c("DCSTREAM_START", 0, req(), ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            effect: CmdEffect::CreatesFd {
                handler: "dcbuf".into(),
            },
            blocks: 10,
            ..c("DCSTREAM_MAP_RING", 1, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            effect: CmdEffect::StateStep {
                sets: 2,
                requires: 1,
            },
            deep_blocks: 12,
            ..cio("DCSTREAM_ARM", 2)
        },
        cio("DCSTREAM_FLUSH", 3),
        CmdBlueprint {
            deep_blocks: 10,
            ..c("DCSTREAM_QUERY", 4, req(), ArgDir::InOut)
        },
    ];
    bp.bugs = vec![bug(
        "general protection fault in dcstream_flush",
        Trigger::Sequence {
            first: "DCSTREAM_ARM".into(),
            then: "DCSTREAM_FLUSH".into(),
        },
    )];
    bp
}

/// Depth-4 ring-buffer fd (minted by `DCSTREAM_MAP_RING`) — the end of
/// the chain, hosting the two deepest bugs.
#[must_use]
pub fn dcbuf() -> Blueprint {
    let mut bp = drv("dcbuf", "", RegStyle::Anon, 0xda, "drivers/dc/dcbuf.c");
    bp.structs = vec![st(
        "dcbuf_op",
        vec![
            p("divisor", FieldTy::U32),
            r("scale", FieldTy::U32, FieldRole::CheckedRange(1, 128)),
            r(
                "flags",
                FieldTy::U32,
                FieldRole::Flags("dcbuf_flags".into()),
            ),
            r("pad", FieldTy::U32, FieldRole::Reserved),
        ],
    )];
    bp.flag_sets = vec![(
        "dcbuf_flags".into(),
        vec![("DCBUF_F_SYNC".into(), 1), ("DCBUF_F_ASYNC".into(), 2)],
    )];
    let op = || ArgKind::Struct("dcbuf_op".into());
    bp.cmds = vec![
        CmdBlueprint {
            effect: CmdEffect::StateStep {
                sets: 1,
                requires: 0,
            },
            deep_blocks: 12,
            ..c("DCBUF_PIN", 0, op(), ArgDir::In)
        },
        CmdBlueprint {
            deep_blocks: 14,
            ..c("DCBUF_SCALE", 1, op(), ArgDir::In)
        },
        CmdBlueprint {
            effect: CmdEffect::StateStep {
                sets: 2,
                requires: 1,
            },
            deep_blocks: 12,
            ..cio("DCBUF_COMMIT", 2)
        },
        cio("DCBUF_UNPIN", 3),
        CmdBlueprint {
            deep_blocks: 10,
            ..c("DCBUF_PROBE", 4, op(), ArgDir::InOut)
        },
    ];
    bp.bugs = vec![
        bug(
            "divide error in dcbuf_scale",
            Trigger::FieldZero {
                cmd: "DCBUF_SCALE".into(),
                field: "divisor".into(),
            },
        ),
        bug(
            "ODEBUG bug in dcbuf_commit",
            Trigger::Repeat {
                cmd: "DCBUF_COMMIT".into(),
                times: 3,
            },
        ),
    ];
    bp
}

/// The whole four-driver suite, root first (kernel boot order is part
/// of signature identity — see the signature-stability convention in
/// ROADMAP.md).
#[must_use]
pub fn suite() -> Vec<Blueprint> {
    vec![dcroot(), dclink(), dcstream(), dcbuf()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelCorpus;
    use kgpt_syzlang::{validate::validate, SpecDb, Syscall};

    #[test]
    fn chain_is_wired_root_to_buf() {
        let bps = suite();
        assert_eq!(bps.len(), 4);
        let creates = |bp: &Blueprint| -> Vec<String> {
            bp.cmds
                .iter()
                .filter_map(|c| match &c.effect {
                    CmdEffect::CreatesFd { handler } => Some(handler.clone()),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(creates(&bps[0]), vec!["dclink"]);
        assert_eq!(creates(&bps[1]), vec!["dcstream"]);
        assert_eq!(creates(&bps[2]), vec!["dcbuf"]);
        assert_eq!(creates(&bps[3]), Vec::<String>::new());
        // Only the root registers a device node.
        assert!(!bps[0].driver().unwrap().dev_path.is_empty());
        for bp in &bps[1..] {
            assert!(matches!(bp.driver().unwrap().reg, RegStyle::Anon));
        }
    }

    #[test]
    fn ground_truth_suite_validates_merged() {
        let kc = KernelCorpus::from_blueprints(suite());
        let files: Vec<_> = kc
            .blueprints()
            .iter()
            .map(Blueprint::ground_truth_spec)
            .collect();
        let db = SpecDb::from_files(files);
        let errors = validate(&db, kc.consts());
        assert!(errors.is_empty(), "{errors:?}");
        // The producer chain is visible to the spec layer: each hop's
        // minting ioctl returns the next hop's fd resource.
        let names: Vec<String> = db.syscalls().map(Syscall::name).collect();
        for n in [
            "openat$dcroot",
            "ioctl$DCROOT_MAKE_LINK",
            "ioctl$DCLINK_OPEN_STREAM",
            "ioctl$DCSTREAM_MAP_RING",
            "ioctl$DCBUF_SCALE",
        ] {
            assert!(names.contains(&n.to_string()), "missing {n}");
        }
    }

    #[test]
    fn emitted_c_round_trips_command_values() {
        // The suite is a real corpus citizen: its C emits, parses,
        // and evaluates every command macro to the blueprint value.
        for bp in suite() {
            let src = crate::emit::emit_blueprint(&bp);
            let file = crate::parser::cparse("dc.c", &src)
                .unwrap_or_else(|e| panic!("{}: {e}\n{src}", bp.id));
            let corpus = crate::Corpus::build(vec![file]);
            for cmd in &bp.cmds {
                assert_eq!(
                    crate::cmacro::eval_const(&corpus, &cmd.name),
                    Some(bp.cmd_value(cmd)),
                    "{}::{}",
                    bp.id,
                    cmd.name
                );
            }
        }
    }
}
