//! # kgpt-csrc
//!
//! A mini-C frontend plus a **synthetic Linux-like kernel source
//! corpus**, the substrate standing in for the real kernel tree in the
//! KernelGPT reproduction.
//!
//! The crate has two halves:
//!
//! 1. **Frontend** ([`token`], [`ast`], [`parser`], [`index`],
//!    [`cmacro`]): a pragmatic recursive-descent parser for the C subset
//!    kernel drivers are written in — designated initializers
//!    (`.unlocked_ioctl = dm_ctl_ioctl`), `switch (cmd)` dispatch,
//!    lookup tables, `#define`/`_IOWR` macros, structs with flexible
//!    array members — and a symbol index ([`index::Corpus`]) that the
//!    extractor and the analyzers query (`ExtractCode` in the paper's
//!    Algorithm 1).
//!
//! 2. **Corpus** ([`blueprint`], [`emit`], [`flagship`], [`synth`],
//!    [`corpus`]): every driver and socket family is described once by a
//!    [`blueprint::Blueprint`] — the single source of truth from which
//!    we generate (a) the C source text the analyzers see, (b) the
//!    ground-truth specification used for correctness accounting
//!    (§5.1.3), (c) the virtual kernel's runtime behaviour, and (d) the
//!    pre-existing partial "Syzkaller" specs. Flagship targets (device
//!    mapper, CEC, KVM, RDS, …) are hand-authored in [`flagship`];
//!    [`synth`] procedurally generates the remaining population so the
//!    census in Table 1 of the paper (666 driver / 85 socket handlers)
//!    is reproduced at full scale.

pub mod ast;
pub mod blueprint;
pub mod cmacro;
pub mod corpus;
pub mod deepchain;
pub mod emit;
pub mod flagship;
pub mod index;
pub mod parser;
pub mod synth;
pub mod token;

pub use ast::{CFile, CItem, CType, Expr, Stmt};
pub use blueprint::Blueprint;
pub use corpus::KernelCorpus;
pub use index::Corpus;
