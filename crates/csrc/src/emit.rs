//! C source emission: render a [`Blueprint`] into the kernel-style C
//! file the analyzers (oracle LLM, SyzDescribe baseline, extractor) see.
//!
//! The emitted code is deliberately idiomatic kernel C: `_IOWR` macro
//! definitions, designated-initializer `file_operations` /
//! `miscdevice` / `proto_ops` registrations, per-command sub-handler
//! functions whose bodies encode the field semantics (range checks,
//! flag masks, `kvmalloc(size)`, id allocation), and one of several
//! dispatch styles. Every semantic fact an analyzer must recover is
//! present in the text — nothing is inferred from the blueprint behind
//! the analyzers' backs.

use crate::blueprint::{
    ArgKind, ArgStruct, Blueprint, CmdBlueprint, CmdEncoding, CmdTransform, DispatchStyle,
    FieldRole, FieldTy, RegStyle, SockCall,
};
use std::fmt::Write as _;

/// Render the complete C source file for a blueprint.
#[must_use]
pub fn emit_blueprint(bp: &Blueprint) -> String {
    let mut out = String::new();
    if let Some(c) = &bp.comment {
        let _ = writeln!(out, "/* {c} */");
    }
    emit_macros(bp, &mut out);
    emit_structs(bp, &mut out);
    match &bp.kind {
        crate::blueprint::BlueprintKind::Driver(_) => emit_driver(bp, &mut out),
        crate::blueprint::BlueprintKind::Socket(_) => emit_socket(bp, &mut out),
    }
    out
}

fn c_field_ty(ty: &FieldTy, name: &str) -> String {
    match ty {
        FieldTy::U8 => format!("__u8 {name}"),
        FieldTy::U16 => format!("__u16 {name}"),
        FieldTy::U32 => format!("__u32 {name}"),
        FieldTy::U64 => format!("__u64 {name}"),
        FieldTy::CharArray(n) => format!("char {name}[{n}]"),
        FieldTy::Array(e, n) => {
            let inner = c_field_ty(e, name);
            format!("{inner}[{n}]")
        }
        FieldTy::FlexArray(e) => {
            let inner = c_field_ty(e, name);
            format!("{inner}[]")
        }
        FieldTy::Struct(s) => format!("struct {s} {name}"),
    }
}

fn emit_macros(bp: &Blueprint, out: &mut String) {
    if let Some(d) = bp.driver() {
        let _ = writeln!(
            out,
            "#define {}_IOCTL_MAGIC {:#x}",
            bp.id.to_uppercase(),
            d.magic
        );
    }
    for cmd in &bp.cmds {
        match cmd.encoding {
            CmdEncoding::Raw(v) => {
                let _ = writeln!(out, "#define {} {v:#x}", cmd.name);
            }
            CmdEncoding::Ioc { dir } => {
                let magic = format!("{}_IOCTL_MAGIC", bp.id.to_uppercase());
                let macro_name = match dir {
                    0 => "_IO",
                    1 => "_IOW",
                    2 => "_IOR",
                    _ => "_IOWR",
                };
                match &cmd.arg {
                    ArgKind::Struct(s) => {
                        if dir == 0 {
                            let _ = writeln!(out, "#define {} _IO({magic}, {})", cmd.name, cmd.nr);
                        } else {
                            let _ = writeln!(
                                out,
                                "#define {} {macro_name}({magic}, {}, struct {s})",
                                cmd.name, cmd.nr
                            );
                        }
                    }
                    ArgKind::IdPtr(_) => {
                        if dir == 0 {
                            let _ = writeln!(out, "#define {} _IO({magic}, {})", cmd.name, cmd.nr);
                        } else {
                            let _ = writeln!(
                                out,
                                "#define {} {macro_name}({magic}, {}, __u32)",
                                cmd.name, cmd.nr
                            );
                        }
                    }
                    ArgKind::Int => {
                        if dir == 0 {
                            let _ = writeln!(out, "#define {} _IO({magic}, {})", cmd.name, cmd.nr);
                        } else {
                            let _ = writeln!(
                                out,
                                "#define {} {macro_name}({magic}, {}, int)",
                                cmd.name, cmd.nr
                            );
                        }
                    }
                    ArgKind::None => {
                        let _ = writeln!(out, "#define {} _IO({magic}, {})", cmd.name, cmd.nr);
                    }
                }
            }
        }
    }
    for (set, values) in &bp.flag_sets {
        let _ = writeln!(out, "/* flags for {set} */");
        for (name, v) in values {
            let _ = writeln!(out, "#define {name} {v:#x}");
        }
    }
    if let Some(s) = bp.socket() {
        if !s.opaque_family {
            let _ = writeln!(out, "#define {} {}", s.family_name, s.family);
        }
        let _ = writeln!(out, "#define {} {}", s.level_name, s.level);
    }
    out.push('\n');
}

fn emit_structs(bp: &Blueprint, out: &mut String) {
    // Emit in dependency order: a struct after everything it embeds.
    let mut emitted: Vec<&str> = Vec::new();
    loop {
        let mut progressed = false;
        for s in &bp.structs {
            if emitted.contains(&s.name.as_str()) {
                continue;
            }
            let deps_ready = s.fields.iter().all(|f| match leaf_struct(&f.ty) {
                Some(dep) => emitted.contains(&dep),
                None => true,
            });
            if deps_ready {
                emit_one_struct(s, out);
                emitted.push(&s.name);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    // Emit any cyclically-stuck structs anyway (should not happen).
    for s in &bp.structs {
        if !emitted.contains(&s.name.as_str()) {
            emit_one_struct(s, out);
        }
    }
}

fn leaf_struct(ty: &FieldTy) -> Option<&str> {
    match ty {
        FieldTy::Struct(s) => Some(s),
        FieldTy::Array(e, _) | FieldTy::FlexArray(e) => leaf_struct(e),
        _ => None,
    }
}

fn emit_one_struct(s: &ArgStruct, out: &mut String) {
    let kw = if s.is_union { "union" } else { "struct" };
    let _ = writeln!(out, "{kw} {} {{", s.name);
    for f in &s.fields {
        let _ = writeln!(out, "\t{};", c_field_ty(&f.ty, &f.name));
    }
    let _ = writeln!(out, "}};\n");
}

/// Name of the per-command sub-handler function.
fn cmd_fn_name(bp: &Blueprint, cmd: &CmdBlueprint) -> String {
    format!("{}_{}", bp.id, cmd.name.to_lowercase())
}

fn emit_cmd_handler(bp: &Blueprint, cmd: &CmdBlueprint, out: &mut String) {
    let fname = cmd_fn_name(bp, cmd);
    // Sub-handler-creating commands use the canonical anon-inode
    // pattern; the dependency-analysis stage keys off this call.
    if let crate::blueprint::CmdEffect::CreatesFd { handler } = &cmd.effect {
        let _ = writeln!(
            out,
            "static int {fname}(struct file *file, unsigned long arg) {{\n\treturn anon_inode_getfd(\"{handler}\", &_{handler}_fops, file, 2);\n}}\n"
        );
        return;
    }
    match &cmd.arg {
        ArgKind::Struct(sname) => {
            let _ = writeln!(
                out,
                "static int {fname}(struct file *file, struct {sname} __user *u) {{"
            );
            let _ = writeln!(out, "\tstruct {sname} p;");
            let _ = writeln!(
                out,
                "\tif (copy_from_user(&p, u, sizeof(struct {sname})))\n\t\treturn -14;"
            );
            if let Some(s) = bp.arg_struct(sname) {
                emit_field_checks(bp, s, out);
            }
            match cmd.dir {
                crate::blueprint::ArgDir::Out | crate::blueprint::ArgDir::InOut => {
                    let _ = writeln!(
                        out,
                        "\tif (copy_to_user(u, &p, sizeof(struct {sname})))\n\t\treturn -14;"
                    );
                }
                crate::blueprint::ArgDir::In => {}
            }
            let _ = writeln!(out, "\treturn 0;\n}}\n");
        }
        ArgKind::IdPtr(res) => {
            let _ = writeln!(
                out,
                "static int {fname}(struct file *file, __u32 __user *u) {{"
            );
            let _ = writeln!(out, "\t__u32 id;");
            let _ = writeln!(
                out,
                "\tif (copy_from_user(&id, u, sizeof(__u32)))\n\t\treturn -14;"
            );
            let _ = writeln!(out, "\tif (!{}_lookup_{res}(id))\n\t\treturn -2;", bp.id);
            let _ = writeln!(out, "\treturn 0;\n}}\n");
        }
        ArgKind::Int => {
            let _ = writeln!(
                out,
                "static int {fname}(struct file *file, unsigned long arg) {{"
            );
            let _ = writeln!(out, "\treturn do_{fname}(arg);\n}}\n");
        }
        ArgKind::None => {
            let _ = writeln!(out, "static int {fname}(struct file *file) {{");
            let _ = writeln!(out, "\treturn 0;\n}}\n");
        }
    }
}

fn emit_field_checks(bp: &Blueprint, s: &ArgStruct, out: &mut String) {
    for f in &s.fields {
        match &f.role {
            FieldRole::CheckedRange(lo, hi) => {
                if *lo == 0 {
                    let _ = writeln!(out, "\tif (p.{} > {hi})\n\t\treturn -22;", f.name);
                } else {
                    let _ = writeln!(
                        out,
                        "\tif (p.{} < {lo} || p.{} > {hi})\n\t\treturn -22;",
                        f.name, f.name
                    );
                }
            }
            FieldRole::MagicCheck(v) => {
                let _ = writeln!(out, "\tif (p.{} != {v:#x})\n\t\treturn -22;", f.name);
            }
            FieldRole::Reserved => {
                let _ = writeln!(out, "\tif (p.{})\n\t\treturn -22;", f.name);
            }
            FieldRole::Flags(set) => {
                let mask: u64 = bp
                    .flag_sets
                    .iter()
                    .find(|(n, _)| n == set)
                    .map_or(0, |(_, vs)| vs.iter().fold(0, |a, (_, v)| a | v));
                let _ = writeln!(out, "\tif (p.{} & ~{mask:#x})\n\t\treturn -22;", f.name);
            }
            FieldRole::SizeOfPayload => {
                let _ = writeln!(out, "\tvoid *buf = kvmalloc(p.{}, 0xcc0);", f.name);
                let _ = writeln!(out, "\tif (!buf)\n\t\treturn -12;");
            }
            FieldRole::LenOf(target) => {
                let _ = writeln!(
                    out,
                    "\tfor (__u32 i = 0; i < p.{}; i++)\n\t\tprocess_one(&p.{target}[i]);",
                    f.name
                );
            }
            FieldRole::OutId(res) => {
                let _ = writeln!(out, "\tp.{} = {}_alloc_{res}(file);", f.name, bp.id);
            }
            FieldRole::InId(res) => {
                let _ = writeln!(
                    out,
                    "\tif (!{}_lookup_{res}(p.{}))\n\t\treturn -2;",
                    bp.id, f.name
                );
            }
            FieldRole::Plain => {}
        }
    }
}

fn cmd_dispatch_call(bp: &Blueprint, cmd: &CmdBlueprint) -> String {
    let fname = cmd_fn_name(bp, cmd);
    match &cmd.arg {
        ArgKind::Struct(sname) => format!("{fname}(file, (struct {sname} __user *)arg)"),
        ArgKind::IdPtr(_) => format!("{fname}(file, (__u32 __user *)arg)"),
        ArgKind::Int => format!("{fname}(file, arg)"),
        ArgKind::None => format!("{fname}(file)"),
    }
}

fn has_hidden(bp: &Blueprint) -> bool {
    bp.cmds.iter().any(|c| c.hidden)
}

/// What the dispatcher returns when no static case matched: either a
/// plain `-ENOTTY` or a hop into the runtime-registered (statically
/// opaque) handler table that serves `hidden` commands.
fn dynamic_tail(bp: &Blueprint) -> String {
    if has_hidden(bp) {
        format!("{}_dynamic_ioctl(file, command, arg)", bp.id)
    } else {
        "-25".to_string()
    }
}

fn emit_driver(bp: &Blueprint, out: &mut String) {
    let d = bp.driver().expect("driver blueprint");
    let id = &bp.id;
    // open handler
    let _ = writeln!(
        out,
        "static int {id}_open(struct inode *inode, struct file *filp) {{\n\treturn 0;\n}}\n"
    );
    for cmd in &bp.cmds {
        emit_cmd_handler(bp, cmd, out);
    }
    if has_hidden(bp) {
        // Runtime-registered dispatch: the handler table is filled in at
        // module load time, so no static mapping exists in the text.
        let _ = writeln!(
            out,
            "long invoke_registered_handler(void *table, unsigned int cmd, unsigned long arg);\n"
        );
        let _ = writeln!(out, "static void *_{id}_dyn_table[16];\n");
        let _ = writeln!(
            out,
            "static long {id}_dynamic_ioctl(struct file *file, unsigned int command, unsigned long arg) {{\n\treturn invoke_registered_handler(_{id}_dyn_table, command, arg);\n}}\n"
        );
    }
    // Dispatcher.
    let real = format!("{id}_do_ioctl");
    let transform_decl = |out: &mut String| match d.transform {
        CmdTransform::None => {
            let _ = writeln!(out, "\tunsigned int cmd = command;");
        }
        CmdTransform::IocNr => {
            let _ = writeln!(out, "\tunsigned int cmd = _IOC_NR(command);");
        }
        CmdTransform::Masked(m) => {
            let _ = writeln!(out, "\tunsigned int cmd = command & {m:#x};");
        }
    };
    match &d.dispatch {
        DispatchStyle::Switch | DispatchStyle::Delegated(_) => {
            let _ = writeln!(
                out,
                "static long {real}(struct file *file, unsigned int command, unsigned long arg) {{"
            );
            transform_decl(out);
            let _ = writeln!(out, "\tswitch (cmd) {{");
            for cmd in bp.cmds.iter().filter(|c| !c.hidden) {
                let label = dispatch_label(bp, cmd);
                let _ = writeln!(out, "\tcase {label}:");
                let _ = writeln!(out, "\t\treturn {};", cmd_dispatch_call(bp, cmd));
            }
            let _ = writeln!(
                out,
                "\tdefault:\n\t\treturn {};\n\t}}\n}}\n",
                dynamic_tail(bp)
            );
        }
        DispatchStyle::IfChain => {
            let _ = writeln!(
                out,
                "static long {real}(struct file *file, unsigned int command, unsigned long arg) {{"
            );
            transform_decl(out);
            for cmd in bp.cmds.iter().filter(|c| !c.hidden) {
                let label = dispatch_label(bp, cmd);
                let _ = writeln!(out, "\tif (cmd == {label})");
                let _ = writeln!(out, "\t\treturn {};", cmd_dispatch_call(bp, cmd));
            }
            let _ = writeln!(out, "\treturn {};\n}}\n", dynamic_tail(bp));
        }
        DispatchStyle::LookupTable => {
            // typedef + entry struct + table + lookup fn.
            let _ = writeln!(
                out,
                "typedef int (*{id}_ioctl_fn)(struct file *file, unsigned long arg);\n"
            );
            let _ = writeln!(
                out,
                "struct {id}_ioctl_entry {{\n\tunsigned int cmd;\n\t{id}_ioctl_fn fn;\n}};\n"
            );
            let _ = writeln!(out, "static struct {id}_ioctl_entry _{id}_ioctls[] = {{");
            for cmd in bp.cmds.iter().filter(|c| !c.hidden) {
                let label = dispatch_label(bp, cmd);
                let _ = writeln!(out, "\t{{ {label}, (void *){} }},", cmd_fn_name(bp, cmd));
            }
            let _ = writeln!(out, "}};\n");
            let _ = writeln!(
                out,
                "static {id}_ioctl_fn {id}_lookup_ioctl(unsigned int cmd) {{\n\tfor (int i = 0; i < {}; i++) {{\n\t\tif (_{id}_ioctls[i].cmd == cmd)\n\t\t\treturn _{id}_ioctls[i].fn;\n\t}}\n\treturn 0;\n}}\n",
                bp.cmds.iter().filter(|c| !c.hidden).count()
            );
            let _ = writeln!(
                out,
                "static long {real}(struct file *file, unsigned int command, unsigned long arg) {{"
            );
            transform_decl(out);
            let _ = writeln!(
                out,
                "\t{id}_ioctl_fn fn = {id}_lookup_ioctl(cmd);\n\tif (!fn)\n\t\treturn {};\n\treturn fn(file, arg);\n}}\n",
                dynamic_tail(bp)
            );
        }
    }
    // Delegation wrappers (registered handler → … → real dispatcher).
    let depth = d.dispatch.delegation_depth();
    let mut entry = real.clone();
    for i in (0..depth).rev() {
        let wrapper = if i == 0 {
            format!("{id}_ctl_ioctl")
        } else {
            format!("{id}_ioctl_hop{i}")
        };
        let _ = writeln!(
            out,
            "static long {wrapper}(struct file *file, unsigned int command, unsigned long u) {{\n\treturn {entry}(file, command, u);\n}}\n"
        );
        entry = wrapper;
    }
    let registered = if depth > 0 {
        entry
    } else {
        let direct = format!("{id}_ctl_ioctl");
        let _ = writeln!(
            out,
            "static long {direct}(struct file *file, unsigned int command, unsigned long u) {{\n\treturn {real}(file, command, u);\n}}\n"
        );
        direct
    };
    // file_operations.
    let _ = writeln!(
        out,
        "static const struct file_operations _{id}_fops = {{\n\t.open = {id}_open,\n\t.unlocked_ioctl = {registered},\n\t.compat_ioctl = {registered},\n}};\n"
    );
    // Registration.
    match &d.reg {
        RegStyle::MiscName => {
            let name = d.dev_path.strip_prefix("/dev/").unwrap_or(&d.dev_path);
            let _ = writeln!(
                out,
                "static struct miscdevice _{id}_misc = {{\n\t.minor = 255,\n\t.name = \"{name}\",\n\t.fops = &_{id}_fops,\n}};\n"
            );
        }
        RegStyle::MiscNodename => {
            let node = d.dev_path.strip_prefix("/dev/").unwrap_or(&d.dev_path);
            // The paper's device-mapper case: .name is a *different*
            // human-readable name; .nodename carries the real path.
            let _ = writeln!(
                out,
                "static struct miscdevice _{id}_misc = {{\n\t.minor = 252,\n\t.name = \"{id}-controller\",\n\t.nodename = \"{node}\",\n\t.fops = &_{id}_fops,\n}};\n"
            );
        }
        RegStyle::Cdev => {
            let name = d.dev_path.strip_prefix("/dev/").unwrap_or(&d.dev_path);
            let _ = writeln!(
                out,
                "static int __init {id}_init(void) {{\n\tcdev_init(&{id}_cdev, &_{id}_fops);\n\tcdev_add(&{id}_cdev, {id}_devt, 1);\n\tdevice_create({id}_class, 0, {id}_devt, 0, \"{name}\");\n\treturn 0;\n}}\n"
            );
        }
        RegStyle::CdevIndexed => {
            // Replace the trailing index digits with a printf pattern.
            let name = d.dev_path.strip_prefix("/dev/").unwrap_or(&d.dev_path);
            let pattern = match name.find(|c: char| c.is_ascii_digit()) {
                Some(i) => format!("{}%i", &name[..i]),
                None => format!("{name}%i"),
            };
            let _ = writeln!(
                out,
                "static int __init {id}_init(void) {{\n\tcdev_init(&{id}_cdev, &_{id}_fops);\n\tcdev_add(&{id}_cdev, {id}_devt, 1);\n\tdevice_create({id}_class, 0, {id}_devt, 0, \"{pattern}\", card->number);\n\treturn 0;\n}}\n"
            );
        }
        RegStyle::ProcOps => {
            let name = d.dev_path.strip_prefix("/proc/").unwrap_or(&d.dev_path);
            let _ = writeln!(
                out,
                "static int __init {id}_init(void) {{\n\tproc_create(\"{name}\", 0, 0, &_{id}_fops);\n\treturn 0;\n}}\n"
            );
        }
        RegStyle::Anon => {
            let _ = writeln!(
                out,
                "/* fds for this handler are created by another driver's ioctl */"
            );
        }
    }
}

fn dispatch_label(bp: &Blueprint, cmd: &CmdBlueprint) -> String {
    let d = bp.driver();
    match d.map_or(CmdTransform::None, |dr| dr.transform) {
        CmdTransform::None => cmd.name.clone(),
        // Post-transform dispatch compares against the *command number*;
        // real kernels write the raw nr or `_IOC_NR(CMD)` here. We emit
        // `_IOC_NR(CMD)` so the macro connection stays in the text.
        CmdTransform::IocNr => format!("_IOC_NR({})", cmd.name),
        CmdTransform::Masked(m) => format!("({} & {m:#x})", cmd.name),
    }
}

fn emit_socket(bp: &Blueprint, out: &mut String) {
    let s = bp.socket().expect("socket blueprint");
    let id = &bp.id;
    for cmd in &bp.cmds {
        emit_sockopt_handler(bp, cmd, out);
    }
    // setsockopt dispatcher (always switch-based).
    let _ = writeln!(
        out,
        "static int {id}_setsockopt(struct socket *sock, int level, int optname, char __user *optval, unsigned int optlen) {{"
    );
    let _ = writeln!(out, "\tif (level != {})\n\t\treturn -92;", s.level_name);
    let _ = writeln!(out, "\tswitch (optname) {{");
    for cmd in bp.cmds.iter().filter(|c| !c.hidden) {
        let _ = writeln!(out, "\tcase {}:", cmd.name);
        let call = match &cmd.arg {
            ArgKind::Struct(sn) => format!(
                "{}(sock, (struct {sn} __user *)optval, optlen)",
                cmd_fn_name(bp, cmd)
            ),
            _ => format!("{}(sock, optval, optlen)", cmd_fn_name(bp, cmd)),
        };
        let _ = writeln!(out, "\t\treturn {call};");
    }
    let _ = writeln!(out, "\tdefault:\n\t\treturn -92;\n\t}}\n}}\n");
    // Generic calls.
    for call in &s.calls {
        let (name, sig, body) = match call {
            SockCall::Bind => (
                "bind",
                "struct socket *sock, struct sockaddr *uaddr, int addr_len",
                format!(
                    "\tstruct sockaddr_{id} *sa = (struct sockaddr_{id} *)uaddr;\n\tif (addr_len < sizeof(struct sockaddr_{id}))\n\t\treturn -22;\n\tif (sa->family != {})\n\t\treturn -97;\n\treturn 0;",
                    s.family_name
                ),
            ),
            SockCall::Connect => (
                "connect",
                "struct socket *sock, struct sockaddr *uaddr, int addr_len",
                format!(
                    "\tif (addr_len < sizeof(struct sockaddr_{id}))\n\t\treturn -22;\n\treturn 0;"
                ),
            ),
            SockCall::Sendto => (
                "sendmsg",
                "struct socket *sock, struct msghdr *msg, size_t len",
                "\tif (len == 0)\n\t\treturn -22;\n\treturn len;".to_string(),
            ),
            SockCall::Recvfrom => (
                "recvmsg",
                "struct socket *sock, struct msghdr *msg, size_t len, int flags",
                "\treturn 0;".to_string(),
            ),
            SockCall::Accept => (
                "accept",
                "struct socket *sock, struct socket *newsock, int flags, bool kern",
                "\treturn 0;".to_string(),
            ),
        };
        let _ = writeln!(out, "static int {id}_{name}({sig}) {{\n{body}\n}}\n");
    }
    // proto_ops registration.
    let _ = writeln!(out, "static const struct proto_ops {id}_proto_ops = {{");
    if s.opaque_family {
        let _ = writeln!(out, "\t.family = 0,");
    } else {
        let _ = writeln!(out, "\t.family = {},", s.family_name);
    }
    let _ = writeln!(out, "\t.setsockopt = {id}_setsockopt,");
    let _ = writeln!(out, "\t.getsockopt = {id}_setsockopt,");
    for call in &s.calls {
        let name = match call {
            SockCall::Bind => "bind",
            SockCall::Connect => "connect",
            SockCall::Sendto => "sendmsg",
            SockCall::Recvfrom => "recvmsg",
            SockCall::Accept => "accept",
        };
        let _ = writeln!(out, "\t.{name} = {id}_{name},");
    }
    let _ = writeln!(out, "}};\n");
    // create + family registration.
    let _ = writeln!(
        out,
        "static int {id}_create(struct net *net, struct socket *sock, int protocol, int kern) {{\n\tif (protocol != {})\n\t\treturn -93;\n\tif (sock->type != {})\n\t\treturn -94;\n\tsock->ops = &{id}_proto_ops;\n\treturn 0;\n}}\n",
        s.proto, s.sock_type
    );
    if s.opaque_family {
        let _ = writeln!(out, "int runtime_family_id(void);\n");
        let _ = writeln!(
            out,
            "static int __init {id}_register(void) {{\n\t{id}_family_ops.family = runtime_family_id();\n\tsock_register(&{id}_family_ops);\n\treturn 0;\n}}\n"
        );
        let _ = writeln!(
            out,
            "static struct net_proto_family {id}_family_ops = {{\n\t.create = {id}_create,\n}};\n"
        );
    } else {
        let _ = writeln!(
            out,
            "static struct net_proto_family {id}_family_ops = {{\n\t.family = {},\n\t.create = {id}_create,\n}};\n",
            s.family_name
        );
    }
}

fn emit_sockopt_handler(bp: &Blueprint, cmd: &CmdBlueprint, out: &mut String) {
    let fname = cmd_fn_name(bp, cmd);
    match &cmd.arg {
        ArgKind::Struct(sname) => {
            let _ = writeln!(
                out,
                "static int {fname}(struct socket *sock, struct {sname} __user *optval, unsigned int optlen) {{"
            );
            let _ = writeln!(
                out,
                "\tstruct {sname} p;\n\tif (optlen < sizeof(struct {sname}))\n\t\treturn -22;"
            );
            let _ = writeln!(
                out,
                "\tif (copy_from_user(&p, optval, sizeof(struct {sname})))\n\t\treturn -14;"
            );
            if let Some(s) = bp.arg_struct(sname) {
                emit_field_checks(bp, s, out);
            }
            let _ = writeln!(out, "\treturn 0;\n}}\n");
        }
        _ => {
            let _ = writeln!(
                out,
                "static int {fname}(struct socket *sock, char __user *optval, unsigned int optlen) {{\n\tint v;\n\tif (optlen < sizeof(int))\n\t\treturn -22;\n\tif (copy_from_user(&v, optval, sizeof(int)))\n\t\treturn -14;\n\treturn 0;\n}}\n"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blueprint::{
        ArgDir, ArgField, BlueprintKind, DriverBlueprint, ExistingSpec, SocketBlueprint,
    };
    use crate::cmacro;
    use crate::index::Corpus;
    use crate::parser::cparse;

    fn sample() -> Blueprint {
        Blueprint {
            id: "dm".into(),
            kind: BlueprintKind::Driver(DriverBlueprint {
                reg: RegStyle::MiscNodename,
                dev_path: "/dev/mapper/control".into(),
                dispatch: DispatchStyle::LookupTable,
                transform: CmdTransform::IocNr,
                magic: 0xfd,
                open_blocks: 4,
            }),
            cmds: vec![
                CmdBlueprint::new(
                    "DM_VERSION",
                    0,
                    ArgKind::Struct("dm_ioctl".into()),
                    ArgDir::InOut,
                ),
                CmdBlueprint::new(
                    "DM_DEV_CREATE",
                    3,
                    ArgKind::Struct("dm_ioctl".into()),
                    ArgDir::In,
                ),
            ],
            structs: vec![ArgStruct {
                name: "dm_ioctl".into(),
                fields: vec![
                    ArgField::plain("version", FieldTy::Array(Box::new(FieldTy::U32), 3)),
                    ArgField::with_role("data_size", FieldTy::U32, FieldRole::SizeOfPayload),
                    ArgField::plain("name", FieldTy::CharArray(16)),
                ],
                is_union: false,
            }],
            flag_sets: vec![],
            bugs: vec![],
            loaded: true,
            existing: ExistingSpec::None,
            source_file: "drivers/md/dm-ioctl.c".into(),
            comment: Some("Device mapper control interface".into()),
        }
    }

    #[test]
    fn emitted_source_parses() {
        let bp = sample();
        let src = emit_blueprint(&bp);
        let f = cparse(&bp.source_file, &src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        assert!(f.items.len() > 5);
    }

    #[test]
    fn macro_values_agree_with_blueprint() {
        let bp = sample();
        let src = emit_blueprint(&bp);
        let corpus = Corpus::build(vec![cparse("dm.c", &src).unwrap()]);
        for cmd in &bp.cmds {
            let from_c = cmacro::eval_const(&corpus, &cmd.name)
                .unwrap_or_else(|| panic!("cannot eval {}", cmd.name));
            assert_eq!(
                from_c,
                bp.cmd_value(cmd),
                "macro {} disagrees: C={from_c:#x} bp={:#x}",
                cmd.name,
                bp.cmd_value(cmd)
            );
        }
    }

    #[test]
    fn nodename_present_name_misleading() {
        let bp = sample();
        let src = emit_blueprint(&bp);
        assert!(src.contains(".nodename = \"mapper/control\""));
        assert!(src.contains(".name = \"dm-controller\""));
    }

    #[test]
    fn all_dispatch_styles_parse() {
        for style in [
            DispatchStyle::Switch,
            DispatchStyle::IfChain,
            DispatchStyle::LookupTable,
            DispatchStyle::Delegated(3),
        ] {
            let mut bp = sample();
            if let BlueprintKind::Driver(d) = &mut bp.kind {
                d.dispatch = style.clone();
            }
            let src = emit_blueprint(&bp);
            cparse("t.c", &src).unwrap_or_else(|e| panic!("{style:?}: {e}\n{src}"));
            assert!(src.contains(".unlocked_ioctl = dm_ctl_ioctl"));
        }
    }

    #[test]
    fn all_reg_styles_parse() {
        for reg in [
            RegStyle::MiscName,
            RegStyle::MiscNodename,
            RegStyle::Cdev,
            RegStyle::ProcOps,
            RegStyle::Anon,
        ] {
            let mut bp = sample();
            if let BlueprintKind::Driver(d) = &mut bp.kind {
                d.reg = reg.clone();
            }
            let src = emit_blueprint(&bp);
            cparse("t.c", &src).unwrap_or_else(|e| panic!("{reg:?}: {e}\n{src}"));
        }
    }

    #[test]
    fn socket_source_parses_and_registers() {
        let bp = Blueprint {
            id: "rds".into(),
            kind: BlueprintKind::Socket(SocketBlueprint {
                family_name: "AF_RDS".into(),
                family: 21,
                sock_type: 5,
                proto: 0,
                level: 276,
                level_name: "SOL_RDS".into(),
                calls: vec![SockCall::Bind, SockCall::Sendto, SockCall::Recvfrom],
                socket_blocks: 4,
                opaque_family: false,
            }),
            cmds: vec![CmdBlueprint {
                name: "RDS_CANCEL_SENT_TO".into(),
                nr: 1,
                encoding: CmdEncoding::Raw(1),
                arg: ArgKind::Struct("rds_opt".into()),
                dir: ArgDir::In,
                effect: crate::blueprint::CmdEffect::Pure,
                blocks: 6,
                deep_blocks: 4,
                hidden: false,
            }],
            structs: vec![
                ArgStruct {
                    name: "rds_opt".into(),
                    fields: vec![ArgField::plain("v", FieldTy::U64)],
                    is_union: false,
                },
                ArgStruct {
                    name: "sockaddr_rds".into(),
                    fields: vec![
                        ArgField::with_role("family", FieldTy::U16, FieldRole::MagicCheck(21)),
                        ArgField::plain("port", FieldTy::U16),
                        ArgField::plain("addr", FieldTy::U32),
                    ],
                    is_union: false,
                },
            ],
            flag_sets: vec![],
            bugs: vec![],
            loaded: true,
            existing: ExistingSpec::None,
            source_file: "net/rds/af_rds.c".into(),
            comment: None,
        };
        let src = emit_blueprint(&bp);
        let f = cparse("rds.c", &src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        assert!(src.contains(".family = AF_RDS"));
        assert!(src.contains(".setsockopt = rds_setsockopt"));
        assert!(f.items.iter().any(|i| i.name() == "rds_family_ops"));
    }

    #[test]
    fn field_checks_encode_roles() {
        let mut bp = sample();
        bp.flag_sets = vec![(
            "dm_flags".into(),
            vec![("DM_F_A".into(), 1), ("DM_F_B".into(), 2)],
        )];
        bp.structs[0].fields.push(ArgField::with_role(
            "prio",
            FieldTy::U32,
            FieldRole::CheckedRange(0, 3),
        ));
        bp.structs[0].fields.push(ArgField::with_role(
            "flags",
            FieldTy::U32,
            FieldRole::Flags("dm_flags".into()),
        ));
        let src = emit_blueprint(&bp);
        assert!(src.contains("if (p.prio > 3)"));
        assert!(src.contains("if (p.flags & ~0x3)"));
        assert!(src.contains("kvmalloc(p.data_size"));
        cparse("t.c", &src).unwrap();
    }
}
