//! Symbol index over a set of parsed C files — the query surface behind
//! `ExtractCode` in the paper's Algorithm 1.

use crate::ast::{
    CArraySize, CEnumDef, CFile, CFunction, CItemKind, CStructDef, CType, CVarDef, MacroDef,
};
use std::collections::BTreeMap;

/// Indexed collection of C files.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    files: Vec<CFile>,
    functions: BTreeMap<String, (usize, usize)>,
    structs: BTreeMap<String, (usize, usize)>,
    macros: BTreeMap<String, (usize, usize)>,
    vars: BTreeMap<String, (usize, usize)>,
    enums: BTreeMap<String, (usize, usize)>,
    enum_variant_owner: BTreeMap<String, (usize, usize)>,
}

impl Corpus {
    /// Build an index over parsed files. Later definitions shadow
    /// earlier ones with the same name (like link order in the kernel).
    #[must_use]
    pub fn build(files: Vec<CFile>) -> Corpus {
        let mut c = Corpus {
            files,
            ..Corpus::default()
        };
        for (fi, file) in c.files.iter().enumerate() {
            for (ii, item) in file.items.iter().enumerate() {
                let key = (fi, ii);
                match &item.kind {
                    CItemKind::Function(f) => {
                        // Prototypes must not shadow definitions.
                        if !f.is_proto || !c.functions.contains_key(&f.name) {
                            c.functions.insert(f.name.clone(), key);
                        }
                    }
                    CItemKind::Struct(s) => {
                        c.structs.insert(s.name.clone(), key);
                    }
                    CItemKind::Macro(m) => {
                        c.macros.insert(m.name.clone(), key);
                    }
                    CItemKind::Var(v) => {
                        c.vars.insert(v.name.clone(), key);
                    }
                    CItemKind::Enum(e) => {
                        if !e.name.is_empty() {
                            c.enums.insert(e.name.clone(), key);
                        }
                        for (vn, _) in &e.variants {
                            c.enum_variant_owner.insert(vn.clone(), key);
                        }
                    }
                    CItemKind::Typedef(_) => {}
                }
            }
        }
        c
    }

    /// The indexed files.
    #[must_use]
    pub fn files(&self) -> &[CFile] {
        &self.files
    }

    fn item(&self, key: (usize, usize)) -> &crate::ast::CItem {
        &self.files[key.0].items[key.1]
    }

    /// Look up a function definition (prototypes only if no definition).
    #[must_use]
    pub fn function(&self, name: &str) -> Option<&CFunction> {
        self.functions.get(name).map(|k| match &self.item(*k).kind {
            CItemKind::Function(f) => f,
            _ => unreachable!(),
        })
    }

    /// Look up a struct/union definition.
    #[must_use]
    pub fn struct_def(&self, name: &str) -> Option<&CStructDef> {
        self.structs.get(name).map(|k| match &self.item(*k).kind {
            CItemKind::Struct(s) => s,
            _ => unreachable!(),
        })
    }

    /// Look up a macro.
    #[must_use]
    pub fn macro_def(&self, name: &str) -> Option<&MacroDef> {
        self.macros.get(name).map(|k| match &self.item(*k).kind {
            CItemKind::Macro(m) => m,
            _ => unreachable!(),
        })
    }

    /// Look up a global variable.
    #[must_use]
    pub fn var_def(&self, name: &str) -> Option<&CVarDef> {
        self.vars.get(name).map(|k| match &self.item(*k).kind {
            CItemKind::Var(v) => v,
            _ => unreachable!(),
        })
    }

    /// Look up an enum by tag.
    #[must_use]
    pub fn enum_def(&self, name: &str) -> Option<&CEnumDef> {
        self.enums.get(name).map(|k| match &self.item(*k).kind {
            CItemKind::Enum(e) => e,
            _ => unreachable!(),
        })
    }

    /// Find the enum that declares a variant.
    #[must_use]
    pub fn enum_of_variant(&self, variant: &str) -> Option<&CEnumDef> {
        self.enum_variant_owner
            .get(variant)
            .map(|k| match &self.item(*k).kind {
                CItemKind::Enum(e) => e,
                _ => unreachable!(),
            })
    }

    /// Value of an enum variant.
    #[must_use]
    pub fn enum_value(&self, variant: &str) -> Option<u64> {
        self.enum_of_variant(variant)?
            .values()
            .into_iter()
            .find(|(n, _)| n == variant)
            .map(|(_, v)| v)
    }

    /// Raw source text of the definition of `name` in any namespace —
    /// the `ExtractCode` primitive of Algorithm 1. Functions win over
    /// other namespaces; otherwise structs, macros, vars, enums.
    #[must_use]
    pub fn source_of(&self, name: &str) -> Option<&str> {
        let key = self
            .functions
            .get(name)
            .or_else(|| self.structs.get(name))
            .or_else(|| self.macros.get(name))
            .or_else(|| self.vars.get(name))
            .or_else(|| self.enums.get(name))
            .or_else(|| self.enum_variant_owner.get(name))?;
        Some(&self.item(*key).text)
    }

    /// All global variables, with their file names.
    pub fn all_vars(&self) -> impl Iterator<Item = (&str, &CVarDef)> {
        self.files.iter().flat_map(|f| {
            f.items.iter().filter_map(move |i| match &i.kind {
                CItemKind::Var(v) => Some((f.name.as_str(), v)),
                _ => None,
            })
        })
    }

    /// Uses of an identifier: source texts of items (other than its own
    /// definition) whose text mentions `name`. This backs the paper's
    /// "usage information" in prompts.
    #[must_use]
    pub fn usages_of(&self, name: &str) -> Vec<&str> {
        let mut out = Vec::new();
        for f in &self.files {
            for item in &f.items {
                if item.name() != name && item.text.contains(name) {
                    out.push(item.text.as_str());
                }
            }
        }
        out
    }

    // ---- C sizeof/alignof ------------------------------------------

    /// Size in bytes of a C type under x86-64 rules, or `None` for
    /// unknown named types.
    #[must_use]
    pub fn sizeof_type(&self, ty: &CType) -> Option<u64> {
        let (size, _) = self.size_align(ty, 0)?;
        Some(size)
    }

    /// Size of a named struct/union.
    #[must_use]
    pub fn sizeof_struct(&self, name: &str) -> Option<u64> {
        let def = self.struct_def(name)?;
        let (size, _) = self.struct_size_align(def, 0)?;
        Some(size)
    }

    /// Byte offset of `field` within struct `name`.
    #[must_use]
    pub fn offset_of(&self, name: &str, field: &str) -> Option<u64> {
        let def = self.struct_def(name)?;
        if def.is_union {
            return def.fields.iter().any(|f| f.name == field).then_some(0);
        }
        let mut off = 0u64;
        for f in &def.fields {
            let (size, align) = self.size_align(&f.ty, 0)?;
            off = round_up(off, align);
            if f.name == field {
                return Some(off);
            }
            off += size;
        }
        None
    }

    fn size_align(&self, ty: &CType, depth: usize) -> Option<(u64, u64)> {
        if depth > 16 {
            return None;
        }
        if ty.ptr > 0 || ty.base.starts_with("fnptr:") {
            return self.apply_array(ty, 8, 8);
        }
        let (size, align) = match ty.base.as_str() {
            "void" => (0, 1),
            "char" | "uchar" | "bool" | "u8" | "s8" | "__u8" | "__s8" => (1, 1),
            "short" | "ushort" | "u16" | "s16" | "__u16" | "__s16" | "__le16" | "__be16" => (2, 2),
            "int" | "uint" | "u32" | "s32" | "__u32" | "__s32" | "__le32" | "__be32" | "enum"
            | "poll_t" | "__poll_t" | "dev_t" | "pid_t" | "uid_t" | "gid_t" | "float" => (4, 4),
            "long" | "ulong" | "u64" | "s64" | "__u64" | "__s64" | "__le64" | "__be64"
            | "size_t" | "ssize_t" | "loff_t" | "off_t" | "uintptr_t" | "intptr_t" | "double" => {
                (8, 8)
            }
            other => {
                if let Some(tag) = other
                    .strip_prefix("struct ")
                    .or_else(|| other.strip_prefix("union "))
                {
                    let def = self.struct_def(tag)?;
                    self.struct_size_align(def, depth + 1)?
                } else if let Some(tag) = other.strip_prefix("enum ") {
                    let _ = tag;
                    (4, 4)
                } else {
                    return None;
                }
            }
        };
        self.apply_array(ty, size, align)
    }

    fn apply_array(&self, ty: &CType, size: u64, align: u64) -> Option<(u64, u64)> {
        match &ty.array {
            None => Some((size, align)),
            Some(CArraySize::Fixed(n)) => Some((size * n, align)),
            Some(CArraySize::Flex) => Some((0, align)),
            Some(CArraySize::Named(n)) => {
                let count = self
                    .enum_value(n)
                    .or_else(|| crate::cmacro::eval_const(self, n))?;
                Some((size * count, align))
            }
        }
    }

    fn struct_size_align(&self, def: &CStructDef, depth: usize) -> Option<(u64, u64)> {
        let mut size = 0u64;
        let mut align = 1u64;
        for f in &def.fields {
            let (s, a) = self.size_align(&f.ty, depth)?;
            align = align.max(a);
            if def.is_union {
                size = size.max(s);
            } else {
                size = round_up(size, a) + s;
            }
        }
        Some((round_up(size, align), align))
    }
}

fn round_up(v: u64, align: u64) -> u64 {
    (v + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::cparse;

    fn corpus(src: &str) -> Corpus {
        Corpus::build(vec![cparse("t.c", src).unwrap()])
    }

    #[test]
    fn indexes_all_namespaces() {
        let c = corpus(
            "#define M 7\nstruct s { int a; };\nenum e { E_A = 3 };\nstatic int v = 1;\nstatic int f(void) { return 0; }\n",
        );
        assert!(c.macro_def("M").is_some());
        assert!(c.struct_def("s").is_some());
        assert!(c.enum_def("e").is_some());
        assert!(c.var_def("v").is_some());
        assert!(c.function("f").is_some());
        assert_eq!(c.enum_value("E_A"), Some(3));
    }

    #[test]
    fn source_of_returns_exact_text() {
        let c = corpus("struct s { int a; };\n");
        assert_eq!(c.source_of("s"), Some("struct s { int a; };"));
        assert_eq!(c.source_of("nope"), None);
    }

    #[test]
    fn definition_beats_prototype() {
        let c = corpus("int f(void);\nint f(void) { return 1; }\n");
        assert!(!c.function("f").unwrap().is_proto);
        // And the reverse order too.
        let c = corpus("int g(void) { return 1; }\nint g(void);\n");
        assert!(!c.function("g").unwrap().is_proto);
    }

    #[test]
    fn sizeof_scalars_and_structs() {
        let c =
            corpus("struct inner { u64 x; };\nstruct s { u8 a; u32 b; u16 c; struct inner i; };\n");
        assert_eq!(c.sizeof_struct("inner"), Some(8));
        // a@0, b@4, c@8, pad, i@16 → 24
        assert_eq!(c.sizeof_struct("s"), Some(24));
        assert_eq!(c.offset_of("s", "i"), Some(16));
        assert_eq!(c.offset_of("s", "b"), Some(4));
    }

    #[test]
    fn sizeof_union_and_arrays() {
        let c = corpus("union u { u8 a[7]; u64 b; };\nstruct t { u32 v[3]; char tail[]; };\n");
        assert_eq!(c.sizeof_struct("u"), Some(8));
        assert_eq!(c.sizeof_struct("t"), Some(12));
    }

    #[test]
    fn named_array_size_from_enum() {
        let c = corpus("enum { DM_NAME_LEN = 128 };\nstruct d { char name[DM_NAME_LEN]; };\n");
        assert_eq!(c.sizeof_struct("d"), Some(128));
    }

    #[test]
    fn usages_found() {
        let c = corpus(
            "static long dm_ctl_ioctl(struct file *f, uint c, ulong u) { return 0; }\nstatic const struct file_operations _ctl_fops = { .unlocked_ioctl = dm_ctl_ioctl };\n",
        );
        let uses = c.usages_of("dm_ctl_ioctl");
        assert_eq!(uses.len(), 1);
        assert!(uses[0].contains("_ctl_fops"));
    }

    #[test]
    fn pointer_fields_are_word_sized() {
        let c = corpus("struct s { struct undefined_elsewhere *p; };\n");
        assert_eq!(c.sizeof_struct("s"), Some(8));
    }
}
