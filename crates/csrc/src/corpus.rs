//! Assembly of the full synthetic kernel: blueprints → emitted C files
//! → parsed/indexed corpus + constant table + spec suites + census.

use crate::blueprint::{Blueprint, ExistingSpec};
use crate::emit::emit_blueprint;
use crate::flagship;
use crate::index::Corpus;
use crate::parser::cparse;
use crate::synth::{self, SynthPlan};
use kgpt_syzlang::{ConstDb, SpecFile};

/// Census rows backing Table 1 and Figure 7.
#[derive(Debug, Clone, PartialEq)]
pub struct Census {
    /// Total driver operation handlers scanned (`allyesconfig`).
    pub drivers_total: usize,
    /// Driver handlers loaded under the syzbot configuration.
    pub drivers_loaded: usize,
    /// Loaded driver handlers missing ≥1 syscall description.
    pub drivers_incomplete: usize,
    /// Loaded driver handlers with no descriptions at all.
    pub drivers_none: usize,
    /// Same fields for sockets.
    pub sockets_total: usize,
    /// Loaded socket handlers.
    pub sockets_loaded: usize,
    /// Loaded socket handlers missing ≥1 syscall description.
    pub sockets_incomplete: usize,
    /// Loaded socket handlers missing >80% of their syscalls.
    pub sockets_mostly_missing: usize,
}

/// The complete synthetic kernel: blueprints, parsed source corpus,
/// constant table.
#[derive(Debug, Clone)]
pub struct KernelCorpus {
    blueprints: Vec<Blueprint>,
    corpus: Corpus,
    consts: ConstDb,
}

/// Baseline constants every suite needs (open flags, dirfd sentinels).
#[must_use]
pub fn base_consts() -> ConstDb {
    let mut db = ConstDb::new();
    db.define("AT_FDCWD", 0xffff_ff9c);
    db.define("O_RDONLY", 0);
    db.define("O_WRONLY", 1);
    db.define("O_RDWR", 2);
    db.define("O_NONBLOCK", 0x800);
    db
}

impl KernelCorpus {
    /// Build from an explicit blueprint set.
    #[must_use]
    pub fn from_blueprints(blueprints: Vec<Blueprint>) -> KernelCorpus {
        let mut files = Vec::with_capacity(blueprints.len());
        for bp in &blueprints {
            let src = emit_blueprint(bp);
            let file = cparse(&bp.source_file, &src)
                .unwrap_or_else(|e| panic!("emitted source for {} fails to parse: {e}", bp.id));
            files.push(file);
        }
        let corpus = Corpus::build(files);
        let mut consts = base_consts();
        for bp in &blueprints {
            for (k, v) in bp.const_entries() {
                consts.define(k, v);
            }
        }
        KernelCorpus {
            blueprints,
            corpus,
            consts,
        }
    }

    /// Flagship targets only — fast; used by tests, examples and the
    /// per-driver experiments (Tables 4–6).
    #[must_use]
    pub fn flagship_only() -> KernelCorpus {
        KernelCorpus::from_blueprints(flagship::all_flagships())
    }

    /// Flagships plus the full procedurally-generated population — the
    /// Table 1 / Figure 7 / Table 2 census corpus.
    #[must_use]
    pub fn full(seed: u64) -> KernelCorpus {
        let mut bps = flagship::all_flagships();
        bps.extend(synth::generate(&SynthPlan::paper_defaults(), seed));
        KernelCorpus::from_blueprints(bps)
    }

    /// All blueprints.
    #[must_use]
    pub fn blueprints(&self) -> &[Blueprint] {
        &self.blueprints
    }

    /// Look up a blueprint by id.
    #[must_use]
    pub fn blueprint(&self, id: &str) -> Option<&Blueprint> {
        self.blueprints.iter().find(|b| b.id == id)
    }

    /// The parsed, indexed C corpus (what the analyzers query).
    #[must_use]
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The symbolic constant table (syz-extract analogue).
    #[must_use]
    pub fn consts(&self) -> &ConstDb {
        &self.consts
    }

    /// Blueprints loaded under the syzbot configuration.
    pub fn loaded(&self) -> impl Iterator<Item = &Blueprint> {
        self.blueprints.iter().filter(|b| b.loaded)
    }

    /// The pre-existing "Syzkaller" spec suite (partial by design).
    #[must_use]
    pub fn existing_suite(&self) -> Vec<SpecFile> {
        self.blueprints
            .iter()
            .filter(|b| b.loaded)
            .filter_map(Blueprint::existing_spec_file)
            .collect()
    }

    /// The full ground-truth suite for loaded handlers.
    #[must_use]
    pub fn ground_truth_suite(&self) -> Vec<SpecFile> {
        self.blueprints
            .iter()
            .filter(|b| b.loaded)
            .map(Blueprint::ground_truth_spec)
            .collect()
    }

    /// Fraction of a handler's ground-truth syscalls that the existing
    /// specs do **not** describe (0.0 = fully described, 1.0 = nothing).
    #[must_use]
    pub fn missing_fraction(&self, bp: &Blueprint) -> f64 {
        let total = bp.ground_truth_spec().syscalls().count();
        if total == 0 {
            return 0.0;
        }
        let described = bp.existing_spec_file().map_or(0, |f| f.syscalls().count());
        1.0 - (described.min(total) as f64 / total as f64)
    }

    /// Compute the Table 1 / Figure 7 census.
    #[must_use]
    pub fn census(&self) -> Census {
        let mut c = Census {
            drivers_total: 0,
            drivers_loaded: 0,
            drivers_incomplete: 0,
            drivers_none: 0,
            sockets_total: 0,
            sockets_loaded: 0,
            sockets_incomplete: 0,
            sockets_mostly_missing: 0,
        };
        for bp in &self.blueprints {
            let is_driver = bp.driver().is_some();
            if is_driver {
                c.drivers_total += 1;
            } else {
                c.sockets_total += 1;
            }
            if !bp.loaded {
                continue;
            }
            if is_driver {
                c.drivers_loaded += 1;
            } else {
                c.sockets_loaded += 1;
            }
            let missing = self.missing_fraction(bp);
            let incomplete = missing > 0.0;
            if is_driver {
                if incomplete {
                    c.drivers_incomplete += 1;
                }
                if matches!(bp.existing, ExistingSpec::None) {
                    c.drivers_none += 1;
                }
            } else {
                if incomplete {
                    c.sockets_incomplete += 1;
                }
                if missing > 0.8 {
                    c.sockets_mostly_missing += 1;
                }
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flagship_corpus_builds_and_indexes() {
        let kc = KernelCorpus::flagship_only();
        assert!(kc.blueprint("dm").is_some());
        // The dm dispatcher function is findable by name.
        assert!(kc.corpus().function("dm_ctl_ioctl").is_some());
        // And its macro table resolves.
        assert!(kc.consts().contains("DM_DEV_CREATE"));
        assert!(kc.consts().contains("AT_FDCWD"));
    }

    #[test]
    fn missing_fraction_bounds() {
        let kc = KernelCorpus::flagship_only();
        for bp in kc.blueprints() {
            let f = kc.missing_fraction(bp);
            assert!((0.0..=1.0).contains(&f), "{}: {f}", bp.id);
        }
        // dm has no existing spec → fully missing.
        let dm = kc.blueprint("dm").unwrap();
        assert!((kc.missing_fraction(dm) - 1.0).abs() < 1e-9);
        // i2c is fully described → nothing missing.
        let i2c = kc.blueprint("i2c").unwrap();
        assert!(kc.missing_fraction(i2c).abs() < 1e-9);
    }

    #[test]
    fn full_census_matches_paper_table1() {
        let kc = KernelCorpus::full(0);
        let c = kc.census();
        assert_eq!(c.drivers_total, 666, "paper: 666 driver handlers");
        assert_eq!(c.sockets_total, 85, "paper: 85 socket handlers");
        assert_eq!(c.drivers_loaded, 278, "paper: 278 loaded drivers");
        assert_eq!(c.sockets_loaded, 81, "paper: 81 loaded sockets");
        assert_eq!(c.drivers_incomplete, 75, "paper: 75 incomplete drivers");
        assert_eq!(c.sockets_incomplete, 66, "paper: 66 incomplete sockets");
        assert_eq!(c.drivers_none, 45, "paper: 45 drivers without specs");
        assert!(
            c.sockets_mostly_missing >= 15,
            "paper: 22 sockets >80% missing; got {}",
            c.sockets_mostly_missing
        );
    }

    #[test]
    fn existing_suite_validates() {
        let kc = KernelCorpus::flagship_only();
        let db = kgpt_syzlang::SpecDb::from_files(kc.existing_suite());
        let errors = kgpt_syzlang::validate::validate(&db, kc.consts());
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn ground_truth_suite_validates() {
        let kc = KernelCorpus::flagship_only();
        let db = kgpt_syzlang::SpecDb::from_files(kc.ground_truth_suite());
        let errors = kgpt_syzlang::validate::validate(&db, kc.consts());
        assert!(errors.is_empty(), "{errors:?}");
    }
}
