//! AST for the kernel-C subset.
//!
//! Every top-level item keeps its raw source text (`text`), which is
//! what gets embedded into LLM prompts; the structured form is what the
//! oracle model and the SyzDescribe baseline actually analyze.

use std::fmt;

/// A parsed C translation unit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CFile {
    /// File path within the synthetic tree (e.g. `drivers/md/dm-ioctl.c`).
    pub name: String,
    /// Top-level items in order.
    pub items: Vec<CItem>,
}

/// A top-level item with its raw source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CItem {
    /// Structured form.
    pub kind: CItemKind,
    /// Raw source text of the item (for prompts).
    pub text: String,
}

impl CItem {
    /// The name this item defines.
    #[must_use]
    pub fn name(&self) -> &str {
        match &self.kind {
            CItemKind::Macro(m) => &m.name,
            CItemKind::Struct(s) => &s.name,
            CItemKind::Enum(e) => &e.name,
            CItemKind::Var(v) => &v.name,
            CItemKind::Function(f) => &f.name,
            CItemKind::Typedef(t) => &t.name,
        }
    }
}

/// Kind of top-level item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CItemKind {
    /// `#define ...`.
    Macro(MacroDef),
    /// `struct`/`union` definition.
    Struct(CStructDef),
    /// `enum` definition.
    Enum(CEnumDef),
    /// Global variable (drivers' `file_operations`, `miscdevice`, tables).
    Var(CVarDef),
    /// Function definition.
    Function(CFunction),
    /// `typedef` (stored opaquely; only the name matters).
    Typedef(CTypedef),
}

/// A `#define` macro.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacroDef {
    /// Macro name.
    pub name: String,
    /// Parameter names for function-like macros.
    pub params: Option<Vec<String>>,
    /// Raw body text.
    pub body: String,
}

/// A struct or union definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CStructDef {
    /// Tag name.
    pub name: String,
    /// `true` for `union`.
    pub is_union: bool,
    /// Member fields in order.
    pub fields: Vec<CField>,
}

/// One struct/union member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CField {
    /// Member name.
    pub name: String,
    /// Member type.
    pub ty: CType,
}

/// An enum definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CEnumDef {
    /// Tag name (empty for anonymous enums).
    pub name: String,
    /// `(name, explicit value)` pairs; implicit values count up from the
    /// previous variant.
    pub variants: Vec<(String, Option<u64>)>,
}

impl CEnumDef {
    /// Resolve the concrete value of every variant.
    #[must_use]
    pub fn values(&self) -> Vec<(String, u64)> {
        let mut out = Vec::with_capacity(self.variants.len());
        let mut next = 0u64;
        for (name, v) in &self.variants {
            let val = v.unwrap_or(next);
            out.push((name.clone(), val));
            next = val.wrapping_add(1);
        }
        out
    }
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CVarDef {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: CType,
    /// Initializer, if any (designated initializer lists preserved).
    pub init: Option<Expr>,
}

/// A function definition or prototype.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CFunction {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: CType,
    /// `(name, type)` parameters.
    pub params: Vec<(String, CType)>,
    /// Body statements (empty for prototypes).
    pub body: Vec<Stmt>,
    /// Whether this was only a prototype (`;` body).
    pub is_proto: bool,
}

/// A typedef, stored opaquely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CTypedef {
    /// Introduced type name.
    pub name: String,
}

/// Array size in a declarator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CArraySize {
    /// `[N]` with a literal size.
    Fixed(u64),
    /// `[NAME]` with a macro size.
    Named(String),
    /// `[]` flexible array member.
    Flex,
}

/// A (simplified) C type: canonical base name, pointer depth, array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CType {
    /// Canonical base (`"struct dm_ioctl"`, `"u32"`, `"uint"`, `"void"`).
    pub base: String,
    /// Number of `*`s.
    pub ptr: u8,
    /// Array declarator, if any.
    pub array: Option<CArraySize>,
}

impl CType {
    /// A plain named type with no pointer or array.
    pub fn named(base: impl Into<String>) -> CType {
        CType {
            base: base.into(),
            ptr: 0,
            array: None,
        }
    }

    /// Is this a pointer type?
    #[must_use]
    pub fn is_ptr(&self) -> bool {
        self.ptr > 0
    }

    /// Struct tag, if the base is `struct X`.
    #[must_use]
    pub fn struct_tag(&self) -> Option<&str> {
        self.base
            .strip_prefix("struct ")
            .or_else(|| self.base.strip_prefix("union "))
    }
}

impl fmt::Display for CType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.base)?;
        for _ in 0..self.ptr {
            write!(f, " *")?;
        }
        match &self.array {
            Some(CArraySize::Fixed(n)) => write!(f, "[{n}]"),
            Some(CArraySize::Named(n)) => write!(f, "[{n}]"),
            Some(CArraySize::Flex) => write!(f, "[]"),
            None => Ok(()),
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Num(u64),
    /// String literal.
    Str(String),
    /// Identifier.
    Ident(String),
    /// Function or function-like-macro call. The callee is a name
    /// (indirect calls through members are modelled as `MethodCall`).
    Call {
        /// Callee name.
        func: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `base.field` or `base->field`.
    Member {
        /// Receiver.
        base: Box<Expr>,
        /// Member name.
        field: String,
        /// `true` for `->`.
        arrow: bool,
    },
    /// `base[index]`.
    Index {
        /// Array expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// Prefix unary op (`-`, `!`, `~`, `*`, `&`).
    Unary {
        /// Operator spelling.
        op: &'static str,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary op.
    Binary {
        /// Operator spelling.
        op: &'static str,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Assignment `lhs = rhs` (compound assignments are desugared).
    Assign {
        /// Target.
        lhs: Box<Expr>,
        /// Source.
        rhs: Box<Expr>,
    },
    /// `(type)expr` cast.
    Cast {
        /// Target type.
        ty: CType,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `cond ? then : els`.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then: Box<Expr>,
        /// Value when false.
        els: Box<Expr>,
    },
    /// `{ .a = x, y, { ... } }` initializer list.
    InitList {
        /// `(designator, value)` entries; `None` designator = positional.
        entries: Vec<(Option<String>, Expr)>,
    },
    /// `sizeof(type)`.
    SizeofType(CType),
    /// `sizeof expr`.
    SizeofExpr(Box<Expr>),
}

impl Expr {
    /// If this is a designated-initializer list, get the expression
    /// assigned to `field`.
    #[must_use]
    pub fn init_field(&self, field: &str) -> Option<&Expr> {
        match self {
            Expr::InitList { entries } => entries
                .iter()
                .find(|(d, _)| d.as_deref() == Some(field))
                .map(|(_, e)| e),
            _ => None,
        }
    }

    /// Identifier name, if this is a bare identifier (possibly behind
    /// `&`).
    #[must_use]
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            Expr::Ident(s) => Some(s),
            Expr::Unary { op: "&", expr } => expr.as_ident(),
            _ => None,
        }
    }

    /// String value, if this is a string literal (or concatenation of
    /// literals folded by the parser).
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Expr::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A `case` label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaseLabel {
    /// `case expr:`.
    Expr(Expr),
    /// `default:`.
    Default,
}

/// One arm of a `switch` (labels share a body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchCase {
    /// The labels attached to this body.
    pub labels: Vec<CaseLabel>,
    /// Statements up to (and including) the `break`/`return`.
    pub body: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Local declaration.
    Decl {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: CType,
        /// Initializer.
        init: Option<Expr>,
    },
    /// Expression statement.
    Expr(Expr),
    /// `return expr;`.
    Return(Option<Expr>),
    /// `if`/`else`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Vec<Stmt>,
        /// Else branch (empty when absent).
        els: Vec<Stmt>,
    },
    /// `switch`.
    Switch {
        /// Scrutinee.
        cond: Expr,
        /// Case arms.
        cases: Vec<SwitchCase>,
    },
    /// `while` loop.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `for` loop (header folded into optional expressions).
    For {
        /// Init expression (decls are hoisted to a `Decl`-like expr).
        init: Option<Box<Stmt>>,
        /// Condition.
        cond: Option<Expr>,
        /// Step expression.
        step: Option<Expr>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `break;`.
    Break,
    /// `continue;`.
    Continue,
    /// `{ ... }` block.
    Block(Vec<Stmt>),
}

/// Walk every statement in a body, depth-first, calling `f`.
pub fn walk_stmts<'a>(stmts: &'a [Stmt], f: &mut dyn FnMut(&'a Stmt)) {
    for s in stmts {
        f(s);
        match s {
            Stmt::If { then, els, .. } => {
                walk_stmts(then, f);
                walk_stmts(els, f);
            }
            Stmt::Switch { cases, .. } => {
                for c in cases {
                    walk_stmts(&c.body, f);
                }
            }
            Stmt::While { body, .. } | Stmt::Block(body) => walk_stmts(body, f),
            Stmt::For { init, body, .. } => {
                if let Some(i) = init {
                    f(i);
                }
                walk_stmts(body, f);
            }
            _ => {}
        }
    }
}

/// Walk every expression in a body, depth-first.
pub fn walk_exprs<'a>(stmts: &'a [Stmt], f: &mut dyn FnMut(&'a Expr)) {
    walk_stmts(stmts, &mut |s| {
        let mut visit = |e: &'a Expr| walk_expr(e, f);
        match s {
            Stmt::Decl { init: Some(e), .. } => visit(e),
            Stmt::Expr(e) => visit(e),
            Stmt::Return(Some(e)) => visit(e),
            Stmt::If { cond, .. } | Stmt::While { cond, .. } | Stmt::Switch { cond, .. } => {
                visit(cond);
            }
            Stmt::For { cond, step, .. } => {
                if let Some(c) = cond {
                    visit(c);
                }
                if let Some(st) = step {
                    visit(st);
                }
            }
            _ => {}
        }
        if let Stmt::Switch { cases, .. } = s {
            for c in cases {
                for l in &c.labels {
                    if let CaseLabel::Expr(e) = l {
                        walk_expr(e, f);
                    }
                }
            }
        }
    });
}

/// Walk a single expression tree depth-first.
pub fn walk_expr<'a>(e: &'a Expr, f: &mut dyn FnMut(&'a Expr)) {
    f(e);
    match e {
        Expr::Call { args, .. } => args.iter().for_each(|a| walk_expr(a, f)),
        Expr::Member { base, .. } => walk_expr(base, f),
        Expr::Index { base, index } => {
            walk_expr(base, f);
            walk_expr(index, f);
        }
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::SizeofExpr(expr) => {
            walk_expr(expr, f);
        }
        Expr::Binary { lhs, rhs, .. } | Expr::Assign { lhs, rhs } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        Expr::Ternary { cond, then, els } => {
            walk_expr(cond, f);
            walk_expr(then, f);
            walk_expr(els, f);
        }
        Expr::InitList { entries } => entries.iter().for_each(|(_, e)| walk_expr(e, f)),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_values_count_up() {
        let e = CEnumDef {
            name: "e".into(),
            variants: vec![
                ("A".into(), None),
                ("B".into(), Some(10)),
                ("C".into(), None),
            ],
        };
        assert_eq!(
            e.values(),
            vec![("A".into(), 0), ("B".into(), 10), ("C".into(), 11)]
        );
    }

    #[test]
    fn ctype_display_and_tag() {
        let t = CType {
            base: "struct dm_ioctl".into(),
            ptr: 1,
            array: None,
        };
        assert_eq!(t.to_string(), "struct dm_ioctl *");
        assert_eq!(t.struct_tag(), Some("dm_ioctl"));
        assert!(t.is_ptr());
    }

    #[test]
    fn init_field_lookup() {
        let e = Expr::InitList {
            entries: vec![
                (Some("name".into()), Expr::Str("dm".into())),
                (None, Expr::Num(1)),
            ],
        };
        assert_eq!(e.init_field("name").and_then(Expr::as_str), Some("dm"));
        assert!(e.init_field("missing").is_none());
    }

    #[test]
    fn as_ident_sees_through_addrof() {
        let e = Expr::Unary {
            op: "&",
            expr: Box::new(Expr::Ident("fops".into())),
        };
        assert_eq!(e.as_ident(), Some("fops"));
    }

    #[test]
    fn walkers_visit_nested() {
        let body = vec![Stmt::If {
            cond: Expr::Ident("c".into()),
            then: vec![Stmt::Return(Some(Expr::Call {
                func: "f".into(),
                args: vec![Expr::Num(1)],
            }))],
            els: vec![],
        }];
        let mut idents = Vec::new();
        walk_exprs(&body, &mut |e| {
            if let Expr::Ident(n) = e {
                idents.push(n.clone());
            }
        });
        assert_eq!(idents, vec!["c".to_string()]);
        let mut calls = 0;
        walk_exprs(&body, &mut |e| {
            if matches!(e, Expr::Call { .. }) {
                calls += 1;
            }
        });
        assert_eq!(calls, 1);
    }
}
