//! Evaluation of C constant expressions and kernel `_IOC` macros.
//!
//! Syscall command values in the corpus are defined the way the kernel
//! defines them — `#define DM_VERSION _IOWR(DM_IOCTL, 0, struct
//! dm_ioctl)` — so both the analyzers and the virtual kernel need an
//! evaluator that resolves macros transitively, folds arithmetic, and
//! implements the `_IOC` encoding natively.

use crate::ast::{CType, Expr};
use crate::index::Corpus;
use crate::parser::parse_expr_str;
use std::collections::BTreeMap;

/// `_IOC` direction bits (Linux asm-generic/ioctl.h).
pub const IOC_NONE: u64 = 0;
/// Userspace writes (kernel reads).
pub const IOC_WRITE: u64 = 1;
/// Userspace reads (kernel writes).
pub const IOC_READ: u64 = 2;

const IOC_NRBITS: u64 = 8;
const IOC_TYPEBITS: u64 = 8;
const IOC_SIZEBITS: u64 = 14;
const IOC_NRSHIFT: u64 = 0;
const IOC_TYPESHIFT: u64 = IOC_NRSHIFT + IOC_NRBITS;
const IOC_SIZESHIFT: u64 = IOC_TYPESHIFT + IOC_TYPEBITS;
const IOC_DIRSHIFT: u64 = IOC_SIZESHIFT + IOC_SIZEBITS;

/// Compose an ioctl command value (`_IOC(dir, type, nr, size)`).
#[must_use]
pub fn ioc(dir: u64, ty: u64, nr: u64, size: u64) -> u64 {
    (dir << IOC_DIRSHIFT) | (ty << IOC_TYPESHIFT) | (nr << IOC_NRSHIFT) | (size << IOC_SIZESHIFT)
}

/// `_IOC_NR(cmd)` — extract the command number.
#[must_use]
pub fn ioc_nr(cmd: u64) -> u64 {
    (cmd >> IOC_NRSHIFT) & ((1 << IOC_NRBITS) - 1)
}

/// `_IOC_TYPE(cmd)` — extract the type (magic) byte.
#[must_use]
pub fn ioc_type(cmd: u64) -> u64 {
    (cmd >> IOC_TYPESHIFT) & ((1 << IOC_TYPEBITS) - 1)
}

/// `_IOC_SIZE(cmd)` — extract the argument size.
#[must_use]
pub fn ioc_size(cmd: u64) -> u64 {
    (cmd >> IOC_SIZESHIFT) & ((1 << IOC_SIZEBITS) - 1)
}

/// `_IOC_DIR(cmd)` — extract the direction bits.
#[must_use]
pub fn ioc_dir(cmd: u64) -> u64 {
    (cmd >> IOC_DIRSHIFT) & 0x3
}

/// Resolve a named constant: `#define` macro (evaluated recursively) or
/// enum variant.
#[must_use]
pub fn eval_const(corpus: &Corpus, name: &str) -> Option<u64> {
    eval_const_depth(corpus, name, 0)
}

fn eval_const_depth(corpus: &Corpus, name: &str, depth: usize) -> Option<u64> {
    if depth > 16 {
        return None;
    }
    if let Some(v) = corpus.enum_value(name) {
        return Some(v);
    }
    let m = corpus.macro_def(name)?;
    if m.params.is_some() {
        return None; // function-like macro is not a constant
    }
    let expr = parse_expr_str(&m.body).ok()?;
    eval_expr_depth(corpus, &expr, &BTreeMap::new(), depth + 1)
}

/// Evaluate a constant expression with optional macro-parameter
/// bindings. Returns `None` for anything non-constant.
#[must_use]
pub fn eval_expr(corpus: &Corpus, expr: &Expr, params: &BTreeMap<String, u64>) -> Option<u64> {
    eval_expr_depth(corpus, expr, params, 0)
}

fn eval_expr_depth(
    corpus: &Corpus,
    expr: &Expr,
    params: &BTreeMap<String, u64>,
    depth: usize,
) -> Option<u64> {
    if depth > 32 {
        return None;
    }
    let ev = |e: &Expr| eval_expr_depth(corpus, e, params, depth + 1);
    match expr {
        Expr::Num(n) => Some(*n),
        Expr::Ident(name) => params
            .get(name)
            .copied()
            .or_else(|| eval_const_depth(corpus, name, depth + 1)),
        Expr::Unary { op, expr } => {
            let v = ev(expr)?;
            Some(match *op {
                "-" => v.wrapping_neg(),
                "~" => !v,
                "!" => u64::from(v == 0),
                _ => return None,
            })
        }
        Expr::Binary { op, lhs, rhs } => {
            let a = ev(lhs)?;
            let b = ev(rhs)?;
            Some(match *op {
                "+" => a.wrapping_add(b),
                "-" => a.wrapping_sub(b),
                "*" => a.wrapping_mul(b),
                "/" => a.checked_div(b)?,
                "%" => a.checked_rem(b)?,
                "&" => a & b,
                "|" => a | b,
                "^" => a ^ b,
                "<<" => a.wrapping_shl(u32::try_from(b).ok()?),
                ">>" => a.wrapping_shr(u32::try_from(b).ok()?),
                "==" => u64::from(a == b),
                "!=" => u64::from(a != b),
                "<" => u64::from(a < b),
                "<=" => u64::from(a <= b),
                ">" => u64::from(a > b),
                ">=" => u64::from(a >= b),
                "&&" => u64::from(a != 0 && b != 0),
                "||" => u64::from(a != 0 || b != 0),
                _ => return None,
            })
        }
        Expr::Ternary { cond, then, els } => {
            if ev(cond)? != 0 {
                ev(then)
            } else {
                ev(els)
            }
        }
        Expr::Cast { expr, .. } => ev(expr),
        Expr::SizeofType(ty) => sizeof_for_macro(corpus, ty),
        Expr::SizeofExpr(_) => None,
        Expr::Call { func, args } => eval_call(corpus, func, args, params, depth),
        _ => None,
    }
}

fn sizeof_for_macro(corpus: &Corpus, ty: &CType) -> Option<u64> {
    corpus.sizeof_type(ty)
}

fn eval_call(
    corpus: &Corpus,
    func: &str,
    args: &[Expr],
    params: &BTreeMap<String, u64>,
    depth: usize,
) -> Option<u64> {
    let ev = |e: &Expr| eval_expr_depth(corpus, e, params, depth + 1);
    // Builtin _IOC family.
    match func {
        "_IO" => {
            let (t, nr) = (ev(args.first()?)?, ev(args.get(1)?)?);
            return Some(ioc(IOC_NONE, t, nr, 0));
        }
        "_IOR" | "_IOW" | "_IOWR" => {
            let (t, nr) = (ev(args.first()?)?, ev(args.get(1)?)?);
            let size = match args.get(2)? {
                Expr::SizeofType(ty) => sizeof_for_macro(corpus, ty)?,
                other => ev(other)?,
            };
            let dir = match func {
                "_IOR" => IOC_READ,
                "_IOW" => IOC_WRITE,
                _ => IOC_READ | IOC_WRITE,
            };
            return Some(ioc(dir, t, nr, size));
        }
        "_IOC" => {
            let dir = ev(args.first()?)?;
            let t = ev(args.get(1)?)?;
            let nr = ev(args.get(2)?)?;
            let size = match args.get(3)? {
                Expr::SizeofType(ty) => sizeof_for_macro(corpus, ty)?,
                other => ev(other)?,
            };
            return Some(ioc(dir, t, nr, size));
        }
        "_IOC_NR" => return Some(ioc_nr(ev(args.first()?)?)),
        "_IOC_TYPE" => return Some(ioc_type(ev(args.first()?)?)),
        "_IOC_SIZE" => return Some(ioc_size(ev(args.first()?)?)),
        "_IOC_DIR" => return Some(ioc_dir(ev(args.first()?)?)),
        _ => {}
    }
    // User-defined function-like macro.
    let m = corpus.macro_def(func)?;
    let names = m.params.as_ref()?;
    if names.len() != args.len() {
        return None;
    }
    let mut bound = BTreeMap::new();
    for (n, a) in names.iter().zip(args) {
        bound.insert(n.clone(), ev(a)?);
    }
    let body = parse_expr_str(&m.body).ok()?;
    eval_expr_depth(corpus, &body, &bound, depth + 1)
}

/// Resolve an expression to a string: literals, macros expanding to
/// string literals, and `__concat` chains (`DM_DIR "/" DM_CONTROL_NODE`).
#[must_use]
pub fn eval_string(corpus: &Corpus, expr: &Expr) -> Option<String> {
    eval_string_depth(corpus, expr, 0)
}

fn eval_string_depth(corpus: &Corpus, expr: &Expr, depth: usize) -> Option<String> {
    if depth > 16 {
        return None;
    }
    match expr {
        Expr::Str(s) => Some(s.clone()),
        Expr::Ident(name) => {
            let m = corpus.macro_def(name)?;
            if m.params.is_some() {
                return None;
            }
            let body = parse_expr_str(&m.body).ok()?;
            eval_string_depth(corpus, &body, depth + 1)
        }
        Expr::Call { func, args } if func == "__concat" => {
            let mut out = String::new();
            for a in args {
                out.push_str(&eval_string_depth(corpus, a, depth + 1)?);
            }
            Some(out)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::cparse;

    fn corpus(src: &str) -> Corpus {
        Corpus::build(vec![cparse("t.c", src).unwrap()])
    }

    #[test]
    fn ioc_encoding_matches_linux() {
        // DM_VERSION on Linux: _IOWR(0xfd, 0, struct dm_ioctl) with
        // sizeof(struct dm_ioctl)=312 → 0xc1387d00-ish shape. Verify
        // field extraction round-trips.
        let cmd = ioc(IOC_READ | IOC_WRITE, 0xfd, 3, 312);
        assert_eq!(ioc_nr(cmd), 3);
        assert_eq!(ioc_type(cmd), 0xfd);
        assert_eq!(ioc_size(cmd), 312);
        assert_eq!(ioc_dir(cmd), 3);
    }

    #[test]
    fn evaluates_iowr_macro_with_struct_size() {
        let c = corpus(
            "struct dm_ioctl { u32 version[3]; u32 data_size; };\n#define DM_IOCTL 0xfd\n#define DM_DEV_CREATE _IOWR(DM_IOCTL, 3, struct dm_ioctl)\n",
        );
        let v = eval_const(&c, "DM_DEV_CREATE").unwrap();
        assert_eq!(ioc_nr(v), 3);
        assert_eq!(ioc_type(v), 0xfd);
        assert_eq!(ioc_size(v), 16);
        assert_eq!(ioc_dir(v), IOC_READ | IOC_WRITE);
    }

    #[test]
    fn evaluates_transitive_macros() {
        let c = corpus("#define A 2\n#define B (A << 4)\n#define C (B | 1)\n");
        assert_eq!(eval_const(&c, "C"), Some(0x21));
    }

    #[test]
    fn function_like_macro_with_params() {
        let c = corpus("#define MK(x, y) (((x) << 8) | (y))\n#define V MK(2, 3)\n");
        assert_eq!(eval_const(&c, "V"), Some(0x203));
    }

    #[test]
    fn enum_variants_resolve() {
        let c = corpus("enum cmds { CMD_A = 0x10, CMD_B };\n");
        assert_eq!(eval_const(&c, "CMD_B"), Some(0x11));
    }

    #[test]
    fn recursive_macro_does_not_hang() {
        let c = corpus("#define A B\n#define B A\n");
        assert_eq!(eval_const(&c, "A"), None);
    }

    #[test]
    fn string_concat_resolves() {
        let c = corpus("#define DM_DIR \"mapper\"\n#define NODE DM_DIR \"/\" \"control\"\n");
        let m = c.macro_def("NODE").unwrap();
        let e = parse_expr_str(&m.body).unwrap();
        assert_eq!(eval_string(&c, &e), Some("mapper/control".to_string()));
    }

    #[test]
    fn char_literal_magic() {
        let c = corpus("#define HPET_INFO _IOR('h', 3, struct hpet_info)\nstruct hpet_info { u64 hi_ireqfreq; u32 hi_flags; u16 hi_hpet; u16 hi_timer; };\n");
        let v = eval_const(&c, "HPET_INFO").unwrap();
        assert_eq!(ioc_type(v), u64::from(b'h'));
        assert_eq!(ioc_size(v), 16);
        assert_eq!(ioc_dir(v), IOC_READ);
    }

    #[test]
    fn non_constant_returns_none() {
        let c = corpus("#define F(x) runtime_call(x)\n#define V F(1)\n");
        assert_eq!(eval_const(&c, "V"), None);
    }
}
