//! Blueprints: the single source of truth for every synthetic driver
//! and socket family.
//!
//! A [`Blueprint`] describes one *operation handler* (the unit the paper
//! counts in Table 1): its registration style, dispatch style, command
//! set, argument structures, injected bugs, and how much of it the
//! pre-existing "Syzkaller" specs cover. From a blueprint we derive:
//!
//! * C source text ([`crate::emit`]) — the only thing analyzers see;
//! * the ground-truth syzlang specification ([`Blueprint::ground_truth_spec`]);
//! * the symbolic-constant table ([`Blueprint::const_entries`]);
//! * the pre-existing partial spec ([`Blueprint::existing_spec_file`]);
//! * the virtual kernel's runtime behaviour (`kgpt-vkernel` interprets
//!   blueprints directly), including coverage-block layout and bug
//!   triggers.
//!
//! Because all five views are derived from one structure, a *correct*
//! generated spec provably unlocks the corresponding kernel coverage.

use kgpt_syzlang as syz;
use serde::{Deserialize, Serialize};
use syz::{
    ArrayLen, ConstExpr, Dir, Field, FlagsDef, IntBits, Item, Param, Resource, SpecFile, Syscall,
    Type,
};

/// How a driver registers its device node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegStyle {
    /// `struct miscdevice { .name = "x" }` → `/dev/x` (the common case).
    MiscName,
    /// `struct miscdevice { .nodename = "a/b" }` → `/dev/a/b`. The rare
    /// legitimate case SyzDescribe gets wrong (paper §1, Figure 2).
    MiscNodename,
    /// `cdev_init` + `device_create(class, NULL, dev, NULL, "name")`.
    Cdev,
    /// `device_create` with a printf-style name pattern
    /// (`"controlC%i"`); static copying of the literal yields a wrong
    /// path — the SyzDescribe `controlC#`/`timer` failure in Table 5.
    CdevIndexed,
    /// `proc_create("name", mode, parent, &fops)` under `/proc/`.
    ProcOps,
    /// Not registered directly: the fd is produced by another handler's
    /// command (KVM's vm/vcpu fds).
    Anon,
}

/// How the ioctl handler maps command values to sub-handlers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DispatchStyle {
    /// `switch (cmd) { case CMD: ... }`.
    Switch,
    /// `if (cmd == A) ... else if (cmd == B) ...`.
    IfChain,
    /// Static table `{cmd, fn}` scanned by a lookup function.
    LookupTable,
    /// The registered handler tail-calls through `n` wrapper functions
    /// before the real `switch`. Exercises iterative UNKNOWN expansion.
    Delegated(u8),
}

impl DispatchStyle {
    /// Number of wrapper hops before command values become visible.
    #[must_use]
    pub fn delegation_depth(&self) -> u8 {
        match self {
            DispatchStyle::Delegated(n) => *n,
            _ => 0,
        }
    }
}

/// Transformation the kernel applies to the user-supplied command value
/// before dispatching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmdTransform {
    /// Dispatch on the raw value.
    None,
    /// `cmd = _IOC_NR(command)` — dispatch on the low byte.
    IocNr,
    /// `cmd = command & mask`.
    Masked(u64),
}

/// How a command's numeric value is defined in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmdEncoding {
    /// Plain `#define NAME value`.
    Raw(u64),
    /// `_IO*`-encoded with this direction (see [`crate::cmacro`]);
    /// magic comes from the blueprint, size from the arg struct.
    Ioc {
        /// `_IOC` direction bits.
        dir: u64,
    },
}

/// Argument carried by a command.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArgKind {
    /// Argument ignored.
    None,
    /// Scalar integer argument.
    Int,
    /// Pointer to a named [`ArgStruct`].
    Struct(String),
    /// Pointer to an `int32` holding an id of the named resource
    /// (the `ioctl$CLOSE(..., ptr[in, msm_submitqueue_id])` pattern).
    IdPtr(String),
}

/// Data-flow direction of a command's argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArgDir {
    /// Kernel reads.
    In,
    /// Kernel writes.
    Out,
    /// Both.
    InOut,
}

impl ArgDir {
    /// Equivalent syzlang direction.
    #[must_use]
    pub fn to_dir(self) -> Dir {
        match self {
            ArgDir::In => Dir::In,
            ArgDir::Out => Dir::Out,
            ArgDir::InOut => Dir::InOut,
        }
    }
}

/// Side effect of a command beyond coverage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmdEffect {
    /// No state change.
    Pure,
    /// Returns a fresh fd bound to another blueprint (KVM_CREATE_VM).
    CreatesFd {
        /// `Blueprint::id` of the sub-handler.
        handler: String,
    },
    /// Advances the per-fd state machine to `sets` (only if the current
    /// state is at least `requires`). Deep commands model setup chains.
    StateStep {
        /// State value after this command.
        sets: u8,
        /// Required current state (0 = always allowed).
        requires: u8,
    },
    /// Emits a fresh id for the named resource (queue-create pattern);
    /// the id is written to the struct's `OutId` field.
    IssuesId {
        /// Resource name.
        resource: String,
    },
}

/// One ioctl command or socket option.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CmdBlueprint {
    /// Macro name (`DM_DEV_CREATE`, `KVM_CREATE_VM`).
    pub name: String,
    /// Command number (pre-encoding) or raw option value.
    pub nr: u64,
    /// Value encoding in the C source.
    pub encoding: CmdEncoding,
    /// Argument shape.
    pub arg: ArgKind,
    /// Argument direction.
    pub dir: ArgDir,
    /// Side effect.
    pub effect: CmdEffect,
    /// Coverage blocks behind a *reachable* call (cmd matched).
    pub blocks: u32,
    /// Extra blocks unlocked when every field check passes.
    pub deep_blocks: u32,
    /// Dispatched through a runtime-registered indirect table instead of
    /// the static switch — invisible to static analysis and to the
    /// iterative LLM analysis (the paper's §5.1.3 "missing syscalls"
    /// case). The virtual kernel still implements it, and human-written
    /// existing specs may still describe it.
    pub hidden: bool,
}

impl CmdBlueprint {
    /// A pure `_IOWR` command with default block weights.
    pub fn new(name: impl Into<String>, nr: u64, arg: ArgKind, dir: ArgDir) -> CmdBlueprint {
        CmdBlueprint {
            name: name.into(),
            nr,
            encoding: CmdEncoding::Ioc { dir: 3 },
            arg,
            dir,
            effect: CmdEffect::Pure,
            blocks: 6,
            deep_blocks: 4,
            hidden: false,
        }
    }
}

/// Scalar field type of an [`ArgStruct`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FieldTy {
    /// 1 byte.
    U8,
    /// 2 bytes.
    U16,
    /// 4 bytes.
    U32,
    /// 8 bytes.
    U64,
    /// `char name[n]` buffer.
    CharArray(u64),
    /// Fixed array of a scalar.
    Array(Box<FieldTy>, u64),
    /// Flexible trailing array.
    FlexArray(Box<FieldTy>),
    /// Embedded struct by name.
    Struct(String),
}

impl FieldTy {
    /// C size/alignment of this field type (x86-64 rules), given the
    /// sibling structs of the blueprint.
    #[must_use]
    pub fn size_align(&self, structs: &[ArgStruct]) -> (u64, u64) {
        match self {
            FieldTy::U8 => (1, 1),
            FieldTy::U16 => (2, 2),
            FieldTy::U32 => (4, 4),
            FieldTy::U64 => (8, 8),
            FieldTy::CharArray(n) => (*n, 1),
            FieldTy::Array(e, n) => {
                let (s, a) = e.size_align(structs);
                (s * n, a)
            }
            FieldTy::FlexArray(e) => (0, e.size_align(structs).1),
            FieldTy::Struct(name) => structs
                .iter()
                .find(|s| &s.name == name)
                .map_or((0, 1), |s| s.size_align(structs)),
        }
    }
}

/// Semantic role of a field, driving kernel checks and spec types.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FieldRole {
    /// No special handling.
    Plain,
    /// Counts the *elements* of the sibling flexible array `target`.
    LenOf(String),
    /// Total payload size the kernel passes to its allocator
    /// (`dm_ioctl.data_size`); huge values are the classic kmalloc bug.
    SizeOfPayload,
    /// Value must lie in `[lo, hi]` or the kernel returns `EINVAL`.
    CheckedRange(u64, u64),
    /// Value must equal the given magic or the kernel returns `EINVAL`.
    MagicCheck(u64),
    /// Must be zero (reserved).
    Reserved,
    /// Members of the named flag set (values in the blueprint).
    Flags(String),
    /// Kernel writes a fresh id of the named resource here.
    OutId(String),
    /// Kernel validates this as a previously issued id of the resource.
    InId(String),
}

/// One field of an argument struct.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArgField {
    /// C field name.
    pub name: String,
    /// Scalar/array type.
    pub ty: FieldTy,
    /// Semantic role.
    pub role: FieldRole,
}

impl ArgField {
    /// A plain field.
    pub fn plain(name: impl Into<String>, ty: FieldTy) -> ArgField {
        ArgField {
            name: name.into(),
            ty,
            role: FieldRole::Plain,
        }
    }

    /// A field with a role.
    pub fn with_role(name: impl Into<String>, ty: FieldTy, role: FieldRole) -> ArgField {
        ArgField {
            name: name.into(),
            ty,
            role,
        }
    }
}

/// A C argument struct (or union) used by one or more commands.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArgStruct {
    /// C tag name (`dm_ioctl`).
    pub name: String,
    /// Members in order.
    pub fields: Vec<ArgField>,
    /// `true` for unions.
    pub is_union: bool,
}

impl ArgStruct {
    /// C size/alignment under x86-64 rules.
    #[must_use]
    pub fn size_align(&self, structs: &[ArgStruct]) -> (u64, u64) {
        let mut size = 0u64;
        let mut align = 1u64;
        for f in &self.fields {
            let (s, a) = f.ty.size_align(structs);
            align = align.max(a);
            if self.is_union {
                size = size.max(s);
            } else {
                size = round_up(size, a) + s;
            }
        }
        (round_up(size, align), align)
    }

    /// Byte offset of a field (0 for unions).
    #[must_use]
    pub fn offset_of(&self, field: &str, structs: &[ArgStruct]) -> Option<u64> {
        if self.is_union {
            return self.fields.iter().any(|f| f.name == field).then_some(0);
        }
        let mut off = 0u64;
        for f in &self.fields {
            let (s, a) = f.ty.size_align(structs);
            off = round_up(off, a);
            if f.name == field {
                return Some(off);
            }
            off += s;
        }
        None
    }
}

fn round_up(v: u64, a: u64) -> u64 {
    (v + a - 1) & !(a - 1)
}

/// An injected bug (Table 4 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BugBlueprint {
    /// Crash title (`kmalloc bug in ctl_ioctl`).
    pub title: String,
    /// CVE id if assigned.
    pub cve: Option<String>,
    /// Trigger condition.
    pub trigger: Trigger,
}

/// Condition under which an injected bug fires.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Trigger {
    /// `cmd` executed with struct field `field` above `min`.
    FieldAbove {
        /// Command macro name.
        cmd: String,
        /// Field of the command's arg struct.
        field: String,
        /// Exclusive lower bound.
        min: u64,
    },
    /// `cmd` executed with `field == 0` (divide-by-zero style).
    FieldZero {
        /// Command macro name.
        cmd: String,
        /// Field name.
        field: String,
    },
    /// `then` executed (validly) after `first` on the same fd.
    Sequence {
        /// First command.
        first: String,
        /// Second command.
        then: String,
    },
    /// `cmd` executed validly `times` times on one fd (leak/ODEBUG).
    Repeat {
        /// Command macro name.
        cmd: String,
        /// Valid executions required.
        times: u32,
    },
    /// Socket payload call (`sendto`) with at least `min_len` bytes.
    PayloadLen {
        /// Minimum payload length.
        min_len: u64,
    },
}

/// Socket calls a family implements beyond `socket()` + sockopts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SockCall {
    /// `bind`.
    Bind,
    /// `connect`.
    Connect,
    /// `sendto`.
    Sendto,
    /// `recvfrom`.
    Recvfrom,
    /// `accept` (after bind).
    Accept,
}

/// Driver-specific half of a blueprint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DriverBlueprint {
    /// Registration style.
    pub reg: RegStyle,
    /// Ground-truth device path (`/dev/mapper/control`).
    pub dev_path: String,
    /// Dispatch style.
    pub dispatch: DispatchStyle,
    /// Command-value transform before dispatch.
    pub transform: CmdTransform,
    /// `_IOC` magic byte.
    pub magic: u64,
    /// Coverage blocks behind a successful `open`.
    pub open_blocks: u32,
}

/// Socket-specific half of a blueprint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SocketBlueprint {
    /// Address family constant name (`AF_RDS`).
    pub family_name: String,
    /// Address family value.
    pub family: u64,
    /// Socket type (`SOCK_SEQPACKET` etc.).
    pub sock_type: u64,
    /// Protocol number.
    pub proto: u64,
    /// `setsockopt`/`getsockopt` level value.
    pub level: u64,
    /// Name of the level macro (`SOL_RDS`).
    pub level_name: String,
    /// Which generic socket calls are implemented (each worth blocks).
    pub calls: Vec<SockCall>,
    /// Coverage blocks behind a successful `socket()`.
    pub socket_blocks: u32,
    /// The family id is produced by a runtime helper instead of a macro
    /// (`.family = get_family_id()`), making the domain value invisible
    /// to source-level analysis — the handlers KernelGPT cannot
    /// describe in Table 1.
    pub opaque_family: bool,
}

/// Which portion of a handler the pre-existing Syzkaller specs cover.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExistingSpec {
    /// No existing description at all.
    None,
    /// Only the listed commands are described; `imprecise_types`
    /// replaces struct args with raw byte buffers (hurting depth).
    Partial {
        /// Command names covered.
        cmds: Vec<String>,
        /// Use `array[int8]` instead of the true struct type.
        imprecise_types: bool,
        /// For sockets: which generic calls the existing spec covers
        /// (`None` in the sense of an empty list = cover all).
        calls: Vec<SockCall>,
    },
    /// Everything described correctly.
    Full,
}

/// Kind-specific half of a blueprint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlueprintKind {
    /// A device driver operation handler.
    Driver(DriverBlueprint),
    /// A socket family operation handler.
    Socket(SocketBlueprint),
}

/// A complete description of one operation handler.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Blueprint {
    /// Unique short id (`"dm"`, `"kvm_vm"`, `"rds"`).
    pub id: String,
    /// Driver or socket specifics.
    pub kind: BlueprintKind,
    /// Commands (ioctls or sockopts).
    pub cmds: Vec<CmdBlueprint>,
    /// Argument structs.
    pub structs: Vec<ArgStruct>,
    /// Flag sets `(set name, [(macro, value)])`.
    pub flag_sets: Vec<(String, Vec<(String, u64)>)>,
    /// Injected bugs.
    pub bugs: Vec<BugBlueprint>,
    /// Loaded under the syzbot configuration (Table 1 census).
    pub loaded: bool,
    /// Pre-existing Syzkaller spec coverage.
    pub existing: ExistingSpec,
    /// Synthetic source path (`drivers/md/dm-ioctl.c`).
    pub source_file: String,
    /// Optional comment emitted above the handler (textual hint for L-3).
    pub comment: Option<String>,
}

impl Blueprint {
    /// The driver half, if this is a driver.
    #[must_use]
    pub fn driver(&self) -> Option<&DriverBlueprint> {
        match &self.kind {
            BlueprintKind::Driver(d) => Some(d),
            BlueprintKind::Socket(_) => None,
        }
    }

    /// The socket half, if this is a socket family.
    #[must_use]
    pub fn socket(&self) -> Option<&SocketBlueprint> {
        match &self.kind {
            BlueprintKind::Socket(s) => Some(s),
            BlueprintKind::Driver(_) => None,
        }
    }

    /// Look up an argument struct by name.
    #[must_use]
    pub fn arg_struct(&self, name: &str) -> Option<&ArgStruct> {
        self.structs.iter().find(|s| s.name == name)
    }

    /// Look up a command by macro name.
    #[must_use]
    pub fn cmd(&self, name: &str) -> Option<&CmdBlueprint> {
        self.cmds.iter().find(|c| c.name == name)
    }

    /// The full encoded value the *user* must pass for a command.
    #[must_use]
    pub fn cmd_value(&self, cmd: &CmdBlueprint) -> u64 {
        match cmd.encoding {
            CmdEncoding::Raw(v) => v,
            CmdEncoding::Ioc { dir } => {
                let magic = self.driver().map_or(0, |d| d.magic);
                let (dir, size) = match &cmd.arg {
                    ArgKind::Struct(name) => {
                        if dir == 0 {
                            (0, 0)
                        } else {
                            (
                                dir,
                                self.arg_struct(name)
                                    .map_or(0, |s| s.size_align(&self.structs).0),
                            )
                        }
                    }
                    ArgKind::IdPtr(_) => {
                        if dir == 0 {
                            (0, 0)
                        } else {
                            (dir, 4)
                        }
                    }
                    // `int` arguments encode as `_IOR/_IOW(m, nr, int)`;
                    // no-argument commands are always `_IO(m, nr)`.
                    ArgKind::Int => {
                        if dir == 0 {
                            (0, 0)
                        } else {
                            (dir, 4)
                        }
                    }
                    ArgKind::None => (0, 0),
                };
                crate::cmacro::ioc(dir, magic, cmd.nr, size)
            }
        }
    }

    /// The value the kernel's dispatcher compares against (post
    /// transform): the `case` labels in the emitted C.
    #[must_use]
    pub fn dispatch_value(&self, cmd: &CmdBlueprint) -> u64 {
        let full = self.cmd_value(cmd);
        match self.driver().map_or(CmdTransform::None, |d| d.transform) {
            CmdTransform::None => full,
            CmdTransform::IocNr => crate::cmacro::ioc_nr(full),
            CmdTransform::Masked(m) => full & m,
        }
    }

    /// Resource name for this handler's fd (`fd_dm` / `sock_rds`).
    #[must_use]
    pub fn fd_resource(&self) -> String {
        match &self.kind {
            BlueprintKind::Driver(_) => format!("fd_{}", self.id),
            BlueprintKind::Socket(_) => format!("sock_{}", self.id),
        }
    }

    /// All resources issued by commands (`IssuesId` effects), deduped.
    #[must_use]
    pub fn issued_resources(&self) -> Vec<String> {
        let mut out = Vec::new();
        for c in &self.cmds {
            if let CmdEffect::IssuesId { resource } = &c.effect {
                if !out.contains(resource) {
                    out.push(resource.clone());
                }
            }
        }
        out
    }

    /// Symbolic constants this handler contributes (cmd macros with
    /// their *full* user-facing values, flag macros, family/level names).
    #[must_use]
    pub fn const_entries(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        for c in &self.cmds {
            out.push((c.name.clone(), self.cmd_value(c)));
        }
        for (_, values) in &self.flag_sets {
            for (name, v) in values {
                out.push((name.clone(), *v));
            }
        }
        if let Some(s) = self.socket() {
            out.push((s.family_name.clone(), s.family));
            out.push((s.level_name.clone(), s.level));
        }
        out
    }

    // ---- spec derivation --------------------------------------------

    /// The complete, correct syzlang specification for this handler.
    ///
    /// This is the ground truth used for §5.1.3 correctness accounting
    /// and for deriving the partial "existing Syzkaller" specs.
    #[must_use]
    pub fn ground_truth_spec(&self) -> SpecFile {
        self.spec_for_cmds(
            &self.cmds.iter().map(|c| c.name.clone()).collect::<Vec<_>>(),
            false,
            &format!("{}_truth", self.id),
        )
    }

    /// The pre-existing Syzkaller spec file, if any.
    #[must_use]
    pub fn existing_spec_file(&self) -> Option<SpecFile> {
        match &self.existing {
            ExistingSpec::None => None,
            ExistingSpec::Full => Some(self.spec_for_cmds(
                &self.cmds.iter().map(|c| c.name.clone()).collect::<Vec<_>>(),
                false,
                &format!("{}_existing", self.id),
            )),
            ExistingSpec::Partial {
                cmds,
                imprecise_types,
                calls,
            } => {
                let call_filter = if calls.is_empty() {
                    None
                } else {
                    Some(calls.as_slice())
                };
                Some(self.spec_subset(
                    cmds,
                    *imprecise_types,
                    call_filter,
                    &format!("{}_existing", self.id),
                ))
            }
        }
    }

    /// Build a spec covering a subset of commands. `imprecise` replaces
    /// struct args with untyped buffers (the paper's "incomplete
    /// existing description" failure mode).
    #[must_use]
    pub fn spec_for_cmds(&self, cmd_names: &[String], imprecise: bool, file: &str) -> SpecFile {
        self.spec_subset(cmd_names, imprecise, None, file)
    }

    /// Like [`Blueprint::spec_for_cmds`] but also restricting which
    /// generic socket calls are described.
    #[must_use]
    pub fn spec_subset(
        &self,
        cmd_names: &[String],
        imprecise: bool,
        call_filter: Option<&[SockCall]>,
        file: &str,
    ) -> SpecFile {
        let mut items = Vec::new();
        let fd_res = self.fd_resource();
        items.push(Item::Resource(Resource {
            name: fd_res.clone(),
            base: match &self.kind {
                BlueprintKind::Driver(_) => "fd".to_string(),
                BlueprintKind::Socket(_) => "sock".to_string(),
            },
            values: Vec::new(),
        }));
        for r in self.issued_resources() {
            items.push(Item::Resource(Resource {
                name: r,
                base: "int32".to_string(),
                values: Vec::new(),
            }));
        }
        match &self.kind {
            BlueprintKind::Driver(d) => {
                if !matches!(d.reg, RegStyle::Anon) {
                    items.push(Item::Syscall(Syscall {
                        base: "openat".into(),
                        variant: Some(self.id.clone()),
                        params: vec![
                            Param::new("dir", Type::sym_const("AT_FDCWD", IntBits::I64)),
                            Param::new(
                                "file",
                                Type::ptr(
                                    Dir::In,
                                    Type::StringLit {
                                        values: vec![d.dev_path.clone()],
                                    },
                                ),
                            ),
                            Param::new(
                                "flags",
                                Type::Const {
                                    value: ConstExpr::Num(2), // O_RDWR
                                    bits: IntBits::I64,
                                },
                            ),
                            Param::new(
                                "mode",
                                Type::Const {
                                    value: ConstExpr::Num(0),
                                    bits: IntBits::I64,
                                },
                            ),
                        ],
                        ret: Some(fd_res.clone()),
                    }));
                }
            }
            BlueprintKind::Socket(s) => {
                items.push(Item::Syscall(Syscall {
                    base: "socket".into(),
                    variant: Some(self.id.clone()),
                    params: vec![
                        Param::new("domain", Type::sym_const(&s.family_name, IntBits::I64)),
                        Param::new(
                            "type",
                            Type::Const {
                                value: ConstExpr::Num(s.sock_type),
                                bits: IntBits::I64,
                            },
                        ),
                        Param::new(
                            "proto",
                            Type::Const {
                                value: ConstExpr::Num(s.proto),
                                bits: IntBits::I64,
                            },
                        ),
                    ],
                    ret: Some(fd_res.clone()),
                }));
                for call in &s.calls {
                    if call_filter.is_some_and(|f| !f.contains(call)) {
                        continue;
                    }
                    items.push(Item::Syscall(self.socket_call_syscall(*call, &fd_res)));
                }
            }
        }
        for name in cmd_names {
            let Some(cmd) = self.cmd(name) else { continue };
            // Resources produced by sub-handler-creating commands are
            // declared here so the file is self-contained even when the
            // sub-handler's own spec is absent from a suite.
            if let CmdEffect::CreatesFd { handler } = &cmd.effect {
                let res_name = format!("fd_{handler}");
                let already = items
                    .iter()
                    .any(|i| matches!(i, Item::Resource(r) if r.name == res_name));
                if !already {
                    items.push(Item::Resource(Resource {
                        name: res_name,
                        base: "fd".to_string(),
                        values: Vec::new(),
                    }));
                }
            }
            items.push(Item::Syscall(self.cmd_syscall(cmd, &fd_res, imprecise)));
        }
        {
            let mut needed: Vec<&str> = Vec::new();
            let imprecise_skip = imprecise;
            if !imprecise_skip {
                for name in cmd_names {
                    if let Some(CmdBlueprint {
                        arg: ArgKind::Struct(s),
                        ..
                    }) = self.cmd(name)
                    {
                        collect_structs(self, s, &mut needed);
                    }
                }
            }
            // Socket address structs are always needed by bind/connect/….
            if self.socket().is_some() {
                let addr = format!("sockaddr_{}", self.id);
                if self.arg_struct(&addr).is_some() && !needed.contains(&addr.as_str()) {
                    collect_structs(
                        self,
                        self.arg_struct(&addr)
                            .map(|s| s.name.as_str())
                            .unwrap_or(""),
                        &mut needed,
                    );
                }
            }
            for s in &self.structs {
                if needed.contains(&s.name.as_str()) {
                    items.push(Item::Struct(self.syz_struct(s)));
                }
            }
            let used_sets: Vec<String> = items
                .iter()
                .filter_map(|i| match i {
                    Item::Struct(s) => Some(s),
                    _ => None,
                })
                .flat_map(|s| s.fields.iter())
                .filter_map(|f| match &f.ty {
                    Type::Flags { set, .. } => Some(set.clone()),
                    _ => None,
                })
                .collect();
            for (set, values) in &self.flag_sets {
                if used_sets.contains(set) {
                    items.push(Item::Flags(FlagsDef {
                        name: set.clone(),
                        values: values
                            .iter()
                            .map(|(n, _)| ConstExpr::Sym(n.clone()))
                            .collect(),
                    }));
                }
            }
        }
        SpecFile {
            name: format!("{file}.txt"),
            items,
        }
    }

    fn cmd_syscall(&self, cmd: &CmdBlueprint, fd_res: &str, imprecise: bool) -> Syscall {
        let (base, params) = match &self.kind {
            BlueprintKind::Driver(_) => {
                let arg_ty = self.cmd_arg_type(cmd, imprecise);
                (
                    "ioctl",
                    vec![
                        Param::new("fd", Type::Resource(fd_res.to_string())),
                        Param::new("cmd", Type::sym_const(&cmd.name, IntBits::I64)),
                        Param::new("arg", arg_ty),
                    ],
                )
            }
            BlueprintKind::Socket(s) => {
                let arg_ty = self.cmd_arg_type(cmd, imprecise);
                (
                    "setsockopt",
                    vec![
                        Param::new("fd", Type::Resource(fd_res.to_string())),
                        Param::new("level", Type::sym_const(&s.level_name, IntBits::I64)),
                        Param::new("opt", Type::sym_const(&cmd.name, IntBits::I64)),
                        Param::new("val", arg_ty),
                        Param::new(
                            "len",
                            Type::Bytesize {
                                target: "val".into(),
                                bits: IntBits::I64,
                            },
                        ),
                    ],
                )
            }
        };
        let ret = match &cmd.effect {
            CmdEffect::CreatesFd { handler } => Some(format!("fd_{handler}")),
            _ => None,
        };
        Syscall {
            base: base.to_string(),
            variant: Some(cmd.name.clone()),
            params,
            ret,
        }
    }

    fn cmd_arg_type(&self, cmd: &CmdBlueprint, imprecise: bool) -> Type {
        if imprecise {
            return Type::ptr(Dir::In, Type::buffer());
        }
        match &cmd.arg {
            ArgKind::None => Type::Const {
                value: ConstExpr::Num(0),
                bits: IntBits::I64,
            },
            ArgKind::Int => Type::int(IntBits::I64),
            ArgKind::Struct(name) => {
                Type::ptr(cmd.dir.to_dir(), Type::Named(format!("{}_{name}", self.id)))
            }
            ArgKind::IdPtr(resource) => Type::ptr(cmd.dir.to_dir(), Type::Named(resource.clone())),
        }
    }

    fn socket_call_syscall(&self, call: SockCall, fd_res: &str) -> Syscall {
        let addr_struct = format!("{}_sockaddr_{}", self.id, self.id);
        let addr = |dir: Dir| Type::ptr(dir, Type::Named(addr_struct.clone()));
        let fd = || Param::new("fd", Type::Resource(fd_res.to_string()));
        let bytesize = |target: &str| Type::Bytesize {
            target: target.into(),
            bits: IntBits::I64,
        };
        let zero = || Type::Const {
            value: ConstExpr::Num(0),
            bits: IntBits::I64,
        };
        match call {
            SockCall::Bind => Syscall {
                base: "bind".into(),
                variant: Some(self.id.clone()),
                params: vec![
                    fd(),
                    Param::new("addr", addr(Dir::In)),
                    Param::new("len", bytesize("addr")),
                ],
                ret: None,
            },
            SockCall::Connect => Syscall {
                base: "connect".into(),
                variant: Some(self.id.clone()),
                params: vec![
                    fd(),
                    Param::new("addr", addr(Dir::In)),
                    Param::new("len", bytesize("addr")),
                ],
                ret: None,
            },
            SockCall::Sendto => Syscall {
                base: "sendto".into(),
                variant: Some(self.id.clone()),
                params: vec![
                    fd(),
                    Param::new("buf", Type::ptr(Dir::In, Type::buffer())),
                    Param::new("len", bytesize("buf")),
                    Param::new("flags", zero()),
                    Param::new("addr", addr(Dir::In)),
                    Param::new("addrlen", bytesize("addr")),
                ],
                ret: None,
            },
            SockCall::Recvfrom => Syscall {
                base: "recvfrom".into(),
                variant: Some(self.id.clone()),
                params: vec![
                    fd(),
                    Param::new("buf", Type::ptr(Dir::Out, Type::buffer())),
                    Param::new("len", bytesize("buf")),
                    Param::new("flags", zero()),
                    Param::new("addr", addr(Dir::Out)),
                    Param::new("addrlen", bytesize("addr")),
                ],
                ret: None,
            },
            SockCall::Accept => Syscall {
                base: "accept".into(),
                variant: Some(self.id.clone()),
                params: vec![
                    fd(),
                    Param::new("addr", addr(Dir::Out)),
                    Param::new("len", Type::ptr(Dir::In, Type::int(IntBits::I32))),
                ],
                ret: Some(fd_res.to_string()),
            },
        }
    }

    /// Convert an [`ArgStruct`] into a namespaced syzlang struct
    /// definition (`dm_dm_ioctl` for blueprint `dm`, struct `dm_ioctl`).
    #[must_use]
    pub fn syz_struct(&self, s: &ArgStruct) -> syz::StructDef {
        let fields = s
            .fields
            .iter()
            .map(|f| {
                let (ty, dir) = self.syz_field_type(f);
                Field {
                    name: f.name.clone(),
                    ty,
                    dir,
                }
            })
            .collect();
        syz::StructDef {
            name: format!("{}_{}", self.id, s.name),
            fields,
            is_union: s.is_union,
            packed: false,
        }
    }

    fn syz_field_type(&self, f: &ArgField) -> (Type, Option<Dir>) {
        let bits = |ty: &FieldTy| match ty {
            FieldTy::U8 => IntBits::I8,
            FieldTy::U16 => IntBits::I16,
            FieldTy::U32 => IntBits::I32,
            _ => IntBits::I64,
        };
        match &f.role {
            FieldRole::LenOf(target) => (
                Type::Len {
                    target: target.clone(),
                    bits: bits(&f.ty),
                },
                None,
            ),
            FieldRole::CheckedRange(lo, hi) => (
                Type::Int {
                    bits: bits(&f.ty),
                    range: Some((*lo, *hi)),
                },
                None,
            ),
            FieldRole::MagicCheck(v) => (
                Type::Const {
                    value: ConstExpr::Num(*v),
                    bits: bits(&f.ty),
                },
                None,
            ),
            FieldRole::Reserved => (
                Type::Const {
                    value: ConstExpr::Num(0),
                    bits: bits(&f.ty),
                },
                None,
            ),
            FieldRole::Flags(set) => (
                Type::Flags {
                    set: set.clone(),
                    bits: bits(&f.ty),
                },
                None,
            ),
            FieldRole::OutId(res) => (Type::Resource(res.clone()), Some(Dir::Out)),
            FieldRole::InId(res) => (Type::Resource(res.clone()), None),
            FieldRole::SizeOfPayload | FieldRole::Plain => (self.plain_field_type(&f.ty), None),
        }
    }

    fn plain_field_type(&self, ty: &FieldTy) -> Type {
        match ty {
            FieldTy::U8 => Type::int(IntBits::I8),
            FieldTy::U16 => Type::int(IntBits::I16),
            FieldTy::U32 => Type::int(IntBits::I32),
            FieldTy::U64 => Type::int(IntBits::I64),
            FieldTy::CharArray(n) => Type::Array {
                elem: Box::new(Type::int(IntBits::I8)),
                len: ArrayLen::Fixed(*n),
            },
            FieldTy::Array(e, n) => Type::Array {
                elem: Box::new(self.plain_field_type(e)),
                len: ArrayLen::Fixed(*n),
            },
            FieldTy::FlexArray(e) => Type::Array {
                elem: Box::new(self.plain_field_type(e)),
                len: ArrayLen::Unsized,
            },
            FieldTy::Struct(name) => Type::Named(format!("{}_{name}", self.id)),
        }
    }
}

fn collect_structs<'a>(bp: &'a Blueprint, name: &'a str, out: &mut Vec<&'a str>) {
    if name.is_empty() || out.contains(&name) {
        return;
    }
    out.push(name);
    if let Some(s) = bp.arg_struct(name) {
        for f in &s.fields {
            let mut t = &f.ty;
            loop {
                match t {
                    FieldTy::Struct(inner) => {
                        collect_structs(bp, inner, out);
                        break;
                    }
                    FieldTy::Array(e, _) | FieldTy::FlexArray(e) => t = e,
                    _ => break,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_driver() -> Blueprint {
        Blueprint {
            id: "dm".into(),
            kind: BlueprintKind::Driver(DriverBlueprint {
                reg: RegStyle::MiscNodename,
                dev_path: "/dev/mapper/control".into(),
                dispatch: DispatchStyle::LookupTable,
                transform: CmdTransform::IocNr,
                magic: 0xfd,
                open_blocks: 4,
            }),
            cmds: vec![
                CmdBlueprint::new(
                    "DM_VERSION",
                    0,
                    ArgKind::Struct("dm_ioctl".into()),
                    ArgDir::InOut,
                ),
                CmdBlueprint::new(
                    "DM_DEV_CREATE",
                    3,
                    ArgKind::Struct("dm_ioctl".into()),
                    ArgDir::In,
                ),
            ],
            structs: vec![ArgStruct {
                name: "dm_ioctl".into(),
                fields: vec![
                    ArgField::plain("version", FieldTy::Array(Box::new(FieldTy::U32), 3)),
                    ArgField::with_role("data_size", FieldTy::U32, FieldRole::SizeOfPayload),
                    ArgField::plain("name", FieldTy::CharArray(16)),
                ],
                is_union: false,
            }],
            flag_sets: vec![],
            bugs: vec![BugBlueprint {
                title: "kmalloc bug in ctl_ioctl".into(),
                cve: Some("CVE-2024-23851".into()),
                trigger: Trigger::FieldAbove {
                    cmd: "DM_DEV_CREATE".into(),
                    field: "data_size".into(),
                    min: 0x1000_0000,
                },
            }],
            loaded: true,
            existing: ExistingSpec::None,
            source_file: "drivers/md/dm-ioctl.c".into(),
            comment: None,
        }
    }

    #[test]
    fn struct_size_matches_c_rules() {
        let bp = sample_driver();
        let s = bp.arg_struct("dm_ioctl").unwrap();
        // version 12 bytes, data_size 4, name 16 → 32, align 4.
        assert_eq!(s.size_align(&bp.structs), (32, 4));
        assert_eq!(s.offset_of("data_size", &bp.structs), Some(12));
    }

    #[test]
    fn cmd_value_uses_ioc_encoding() {
        let bp = sample_driver();
        let cmd = bp.cmd("DM_DEV_CREATE").unwrap();
        let v = bp.cmd_value(cmd);
        assert_eq!(crate::cmacro::ioc_nr(v), 3);
        assert_eq!(crate::cmacro::ioc_type(v), 0xfd);
        assert_eq!(crate::cmacro::ioc_size(v), 32);
    }

    #[test]
    fn dispatch_value_applies_transform() {
        let bp = sample_driver();
        let cmd = bp.cmd("DM_DEV_CREATE").unwrap();
        assert_eq!(bp.dispatch_value(cmd), 3);
    }

    #[test]
    fn ground_truth_spec_is_valid_syzlang() {
        let bp = sample_driver();
        let spec = bp.ground_truth_spec();
        let mut consts = kgpt_syzlang::ConstDb::new();
        consts.define("AT_FDCWD", 0xffff_ff9c);
        for (k, v) in bp.const_entries() {
            consts.define(k, v);
        }
        let db = kgpt_syzlang::SpecDb::from_files(vec![spec]);
        let errors = kgpt_syzlang::validate::validate(&db, &consts);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(db.syscall_count(), 3); // openat + 2 ioctls
    }

    #[test]
    fn spec_round_trips_through_printer() {
        let bp = sample_driver();
        let spec = bp.ground_truth_spec();
        let printed = kgpt_syzlang::print_file(&spec);
        let reparsed = kgpt_syzlang::parse("rt", &printed).unwrap();
        assert_eq!(reparsed.items.len(), spec.items.len());
    }

    #[test]
    fn existing_partial_spec_subsets_cmds() {
        let mut bp = sample_driver();
        bp.existing = ExistingSpec::Partial {
            cmds: vec!["DM_VERSION".into()],
            imprecise_types: true,
            calls: vec![],
        };
        let f = bp.existing_spec_file().unwrap();
        let calls: Vec<String> = f.syscalls().map(Syscall::name).collect();
        assert!(calls.contains(&"ioctl$DM_VERSION".to_string()));
        assert!(!calls.iter().any(|c| c.contains("DM_DEV_CREATE")));
        assert_eq!(f.structs().count(), 0);
    }

    #[test]
    fn const_entries_cover_cmds() {
        let bp = sample_driver();
        let names: Vec<String> = bp.const_entries().into_iter().map(|(n, _)| n).collect();
        assert!(names.contains(&"DM_VERSION".to_string()));
        assert!(names.contains(&"DM_DEV_CREATE".to_string()));
    }

    #[test]
    fn socket_blueprint_spec_shape() {
        let bp = Blueprint {
            id: "rds".into(),
            kind: BlueprintKind::Socket(SocketBlueprint {
                family_name: "AF_RDS".into(),
                family: 21,
                sock_type: 5,
                proto: 0,
                level: 276,
                level_name: "SOL_RDS".into(),
                calls: vec![SockCall::Bind, SockCall::Sendto, SockCall::Recvfrom],
                socket_blocks: 4,
                opaque_family: false,
            }),
            cmds: vec![CmdBlueprint {
                name: "RDS_CANCEL_SENT_TO".into(),
                nr: 1,
                encoding: CmdEncoding::Raw(1),
                arg: ArgKind::Struct("rds_opt".into()),
                dir: ArgDir::In,
                effect: CmdEffect::Pure,
                blocks: 6,
                deep_blocks: 4,
                hidden: false,
            }],
            structs: vec![
                ArgStruct {
                    name: "rds_opt".into(),
                    fields: vec![ArgField::plain("v", FieldTy::U64)],
                    is_union: false,
                },
                ArgStruct {
                    name: "sockaddr_rds".into(),
                    fields: vec![
                        ArgField::with_role("family", FieldTy::U16, FieldRole::MagicCheck(21)),
                        ArgField::plain("port", FieldTy::U16),
                        ArgField::plain("addr", FieldTy::U32),
                    ],
                    is_union: false,
                },
            ],
            flag_sets: vec![],
            bugs: vec![],
            loaded: true,
            existing: ExistingSpec::None,
            source_file: "net/rds/af_rds.c".into(),
            comment: None,
        };
        let spec = bp.ground_truth_spec();
        let names: Vec<String> = spec.syscalls().map(Syscall::name).collect();
        assert!(names.contains(&"socket$rds".to_string()));
        assert!(names.contains(&"bind$rds".to_string()));
        assert!(names.contains(&"sendto$rds".to_string()));
        assert!(names.contains(&"setsockopt$RDS_CANCEL_SENT_TO".to_string()));
        // Socket specs must validate too.
        let mut consts = kgpt_syzlang::ConstDb::new();
        for (k, v) in bp.const_entries() {
            consts.define(k, v);
        }
        let db = kgpt_syzlang::SpecDb::from_files(vec![spec]);
        let errors = kgpt_syzlang::validate::validate(&db, &consts);
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn issued_resources_deduplicated() {
        let mut bp = sample_driver();
        for (name, nr) in [("DM_Q_NEW", 7), ("DM_Q_NEW2", 8)] {
            bp.cmds.push(CmdBlueprint {
                name: name.into(),
                nr,
                encoding: CmdEncoding::Ioc { dir: 3 },
                arg: ArgKind::Struct("dm_ioctl".into()),
                dir: ArgDir::InOut,
                effect: CmdEffect::IssuesId {
                    resource: "dm_qid".into(),
                },
                blocks: 6,
                deep_blocks: 4,
                hidden: false,
            });
        }
        assert_eq!(bp.issued_resources(), vec!["dm_qid".to_string()]);
    }
}
