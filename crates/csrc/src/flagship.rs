//! Hand-authored blueprints for the paper's flagship targets: every
//! driver of Table 5, every socket of Table 6, and every driver that
//! hosts a Table 4 bug, plus KVM's anonymous vm/vcpu sub-handlers.
//!
//! Command counts are scaled to roughly one third of the paper's `#Sys`
//! columns (documented in EXPERIMENTS.md); the *relative* sizes and the
//! analysis-difficulty features (nodename registration, `_IOC_NR`
//! transforms, lookup tables, delegation chains, hidden dynamic
//! dispatch) mirror the paper's case studies.

use crate::blueprint::{
    ArgDir, ArgField, ArgKind, ArgStruct, Blueprint, BlueprintKind, BugBlueprint, CmdBlueprint,
    CmdEffect, CmdEncoding, CmdTransform, DispatchStyle, DriverBlueprint, ExistingSpec, FieldRole,
    FieldTy, RegStyle, SockCall, SocketBlueprint, Trigger,
};

// ---- small builders --------------------------------------------------

fn drv(
    id: &str,
    path: &str,
    reg: RegStyle,
    dispatch: DispatchStyle,
    transform: CmdTransform,
    magic: u64,
    file: &str,
) -> Blueprint {
    Blueprint {
        id: id.into(),
        kind: BlueprintKind::Driver(DriverBlueprint {
            reg,
            dev_path: path.into(),
            dispatch,
            transform,
            magic,
            open_blocks: 4,
        }),
        cmds: Vec::new(),
        structs: Vec::new(),
        flag_sets: Vec::new(),
        bugs: Vec::new(),
        loaded: true,
        existing: ExistingSpec::None,
        source_file: file.into(),
        comment: None,
    }
}

fn sock(
    id: &str,
    family_name: &str,
    family: u64,
    sock_type: u64,
    proto: u64,
    level: u64,
    file: &str,
) -> Blueprint {
    Blueprint {
        id: id.into(),
        kind: BlueprintKind::Socket(SocketBlueprint {
            family_name: family_name.into(),
            family,
            sock_type,
            proto,
            level,
            level_name: format!("SOL_{}", id.to_uppercase()),
            calls: vec![
                SockCall::Bind,
                SockCall::Connect,
                SockCall::Sendto,
                SockCall::Recvfrom,
            ],
            socket_blocks: 4,
            opaque_family: false,
        }),
        cmds: Vec::new(),
        structs: Vec::new(),
        flag_sets: Vec::new(),
        bugs: Vec::new(),
        loaded: true,
        existing: ExistingSpec::None,
        source_file: file.into(),
        comment: None,
    }
}

fn c(name: &str, nr: u64, arg: ArgKind, dir: ArgDir) -> CmdBlueprint {
    CmdBlueprint::new(name, nr, arg, dir)
}

fn craw(name: &str, value: u64, arg: ArgKind, dir: ArgDir) -> CmdBlueprint {
    CmdBlueprint {
        encoding: CmdEncoding::Raw(value),
        ..CmdBlueprint::new(name, value, arg, dir)
    }
}

fn hidden(mut cmd: CmdBlueprint) -> CmdBlueprint {
    cmd.hidden = true;
    cmd
}

fn st(name: &str, fields: Vec<ArgField>) -> ArgStruct {
    ArgStruct {
        name: name.into(),
        fields,
        is_union: false,
    }
}

fn p(name: &str, ty: FieldTy) -> ArgField {
    ArgField::plain(name, ty)
}

fn r(name: &str, ty: FieldTy, role: FieldRole) -> ArgField {
    ArgField::with_role(name, ty, role)
}

fn bug(title: &str, cve: Option<&str>, trigger: Trigger) -> BugBlueprint {
    BugBlueprint {
        title: title.into(),
        cve: cve.map(str::to_string),
        trigger,
    }
}

fn partial(cmds: &[&str]) -> ExistingSpec {
    ExistingSpec::Partial {
        cmds: cmds.iter().map(|s| (*s).to_string()).collect(),
        imprecise_types: false,
        calls: Vec::new(),
    }
}

fn partial_imprecise(cmds: &[&str]) -> ExistingSpec {
    ExistingSpec::Partial {
        cmds: cmds.iter().map(|s| (*s).to_string()).collect(),
        imprecise_types: true,
        calls: Vec::new(),
    }
}

// ---- bug-hosting drivers (Table 4) -----------------------------------

/// Device mapper (`drivers/md/dm-ioctl.c`) — the paper's running
/// example: `.nodename` registration, lookup-table dispatch behind one
/// delegation hop, `_IOC_NR` command transform, and three Table 4 bugs.
#[must_use]
pub fn dm() -> Blueprint {
    let mut bp = drv(
        "dm",
        "/dev/mapper/control",
        RegStyle::MiscNodename,
        DispatchStyle::LookupTable,
        CmdTransform::IocNr,
        0xfd,
        "drivers/md/dm-ioctl.c",
    );
    bp.comment = Some(
        "Device-mapper userspace control interface; commands carry a struct dm_ioctl header".into(),
    );
    bp.structs = vec![
        st(
            "dm_target_spec",
            vec![
                p("sector_start", FieldTy::U64),
                p("length", FieldTy::U64),
                p("status", FieldTy::U32),
                p("next", FieldTy::U32),
                p("target_type", FieldTy::CharArray(16)),
            ],
        ),
        st(
            "dm_ioctl",
            vec![
                p("version", FieldTy::Array(Box::new(FieldTy::U32), 3)),
                r("data_size", FieldTy::U32, FieldRole::SizeOfPayload),
                p("data_start", FieldTy::U32),
                r(
                    "target_count",
                    FieldTy::U32,
                    FieldRole::LenOf("targets".into()),
                ),
                p("open_count", FieldTy::U32),
                r(
                    "flags",
                    FieldTy::U32,
                    FieldRole::Flags("dm_ioctl_flags".into()),
                ),
                p("event_nr", FieldTy::U32),
                r("padding", FieldTy::U32, FieldRole::Reserved),
                p("dev", FieldTy::U64),
                p("name", FieldTy::CharArray(128)),
                p("uuid", FieldTy::CharArray(129)),
                p("data", FieldTy::CharArray(7)),
                p(
                    "targets",
                    FieldTy::FlexArray(Box::new(FieldTy::Struct("dm_target_spec".into()))),
                ),
            ],
        ),
    ];
    bp.flag_sets = vec![(
        "dm_ioctl_flags".into(),
        vec![
            ("DM_READONLY_FLAG".into(), 1),
            ("DM_SUSPEND_FLAG".into(), 2),
            ("DM_PERSISTENT_DEV_FLAG".into(), 8),
        ],
    )];
    let arg = || ArgKind::Struct("dm_ioctl".into());
    bp.cmds = vec![
        c("DM_VERSION", 0, arg(), ArgDir::InOut),
        c("DM_REMOVE_ALL", 1, arg(), ArgDir::In),
        c("DM_LIST_DEVICES", 2, arg(), ArgDir::InOut),
        CmdBlueprint {
            effect: CmdEffect::StateStep {
                sets: 1,
                requires: 0,
            },
            ..c("DM_DEV_CREATE", 3, arg(), ArgDir::InOut)
        },
        CmdBlueprint {
            effect: CmdEffect::StateStep {
                sets: 0,
                requires: 1,
            },
            ..c("DM_DEV_REMOVE", 4, arg(), ArgDir::In)
        },
        c("DM_DEV_RENAME", 5, arg(), ArgDir::In),
        c("DM_DEV_SUSPEND", 6, arg(), ArgDir::In),
        c("DM_DEV_STATUS", 7, arg(), ArgDir::InOut),
        c("DM_DEV_WAIT", 8, arg(), ArgDir::InOut),
        CmdBlueprint {
            effect: CmdEffect::StateStep {
                sets: 2,
                requires: 1,
            },
            ..c("DM_TABLE_LOAD", 9, arg(), ArgDir::In)
        },
        c("DM_TABLE_CLEAR", 10, arg(), ArgDir::In),
        c("DM_TABLE_DEPS", 11, arg(), ArgDir::InOut),
        c("DM_TABLE_STATUS", 12, arg(), ArgDir::InOut),
        c("DM_LIST_VERSIONS", 13, arg(), ArgDir::InOut),
        c("DM_TARGET_MSG", 14, arg(), ArgDir::InOut),
        c("DM_DEV_SET_GEOMETRY", 15, arg(), ArgDir::In),
        c("DM_DEV_ARM_POLL", 16, arg(), ArgDir::In),
        c("DM_GET_TARGET_VERSION", 17, arg(), ArgDir::InOut),
    ];
    bp.bugs = vec![
        bug(
            "kmalloc bug in ctl_ioctl",
            Some("CVE-2024-23851"),
            Trigger::FieldAbove {
                cmd: "DM_DEV_CREATE".into(),
                field: "data_size".into(),
                min: 0x1000_0000,
            },
        ),
        bug(
            "kmalloc bug in dm_table_create",
            Some("CVE-2023-52429"),
            Trigger::FieldAbove {
                cmd: "DM_TABLE_LOAD".into(),
                field: "data_start".into(),
                min: 0x0fff_ffff,
            },
        ),
        bug(
            "general protection fault in cleanup_mapped_device",
            Some("CVE-2024-50277"),
            Trigger::Sequence {
                first: "DM_DEV_CREATE".into(),
                then: "DM_REMOVE_ALL".into(),
            },
        ),
    ];
    bp
}

/// CEC (consumer electronics control, `drivers/media/cec/core`) — no
/// existing Syzkaller descriptions; hosts five Table 4 bugs.
#[must_use]
pub fn cec() -> Blueprint {
    let mut bp = drv(
        "cec",
        "/dev/cec0",
        RegStyle::CdevIndexed,
        DispatchStyle::Switch,
        CmdTransform::None,
        0x61, // 'a'
        "drivers/media/cec/core/cec-api.c",
    );
    bp.comment =
        Some("HDMI CEC adapter control: logical addresses, message transmit/receive".into());
    bp.structs = vec![
        st(
            "cec_caps",
            vec![
                p("driver", FieldTy::CharArray(32)),
                p("name", FieldTy::CharArray(32)),
                p("available_log_addrs", FieldTy::U32),
                p("capabilities", FieldTy::U32),
                p("version", FieldTy::U32),
            ],
        ),
        st(
            "cec_log_addrs",
            vec![
                p("log_addr", FieldTy::Array(Box::new(FieldTy::U8), 4)),
                p("log_addr_mask", FieldTy::U16),
                p("cec_version", FieldTy::U8),
                r("num_log_addrs", FieldTy::U8, FieldRole::CheckedRange(0, 4)),
                p("vendor_id", FieldTy::U32),
                r(
                    "flags",
                    FieldTy::U32,
                    FieldRole::Flags("cec_log_addrs_flags".into()),
                ),
                p("osd_name", FieldTy::CharArray(15)),
                p(
                    "primary_device_type",
                    FieldTy::Array(Box::new(FieldTy::U8), 4),
                ),
                p("log_addr_type", FieldTy::Array(Box::new(FieldTy::U8), 4)),
            ],
        ),
        st(
            "cec_msg",
            vec![
                p("tx_ts", FieldTy::U64),
                p("rx_ts", FieldTy::U64),
                r("len", FieldTy::U32, FieldRole::CheckedRange(1, 16)),
                p("timeout", FieldTy::U32),
                p("sequence", FieldTy::U32),
                r("flags", FieldTy::U32, FieldRole::Reserved),
                p("msg", FieldTy::Array(Box::new(FieldTy::U8), 16)),
                p("reply", FieldTy::U8),
                p("rx_status", FieldTy::U8),
                p("tx_status", FieldTy::U8),
                p("tx_arb_lost_cnt", FieldTy::U8),
            ],
        ),
        st(
            "cec_event",
            vec![
                p("ts", FieldTy::U64),
                r("event", FieldTy::U32, FieldRole::CheckedRange(1, 8)),
                p("flags", FieldTy::U32),
                p("payload", FieldTy::Array(Box::new(FieldTy::U64), 2)),
            ],
        ),
    ];
    bp.flag_sets = vec![(
        "cec_log_addrs_flags".into(),
        vec![
            ("CEC_LOG_ADDRS_FL_ALLOW_UNREG_FALLBACK".into(), 1),
            ("CEC_LOG_ADDRS_FL_ALLOW_RC_PASSTHRU".into(), 2),
            ("CEC_LOG_ADDRS_FL_CDC_ONLY".into(), 4),
        ],
    )];
    bp.cmds = vec![
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c(
                "CEC_ADAP_G_CAPS",
                0,
                ArgKind::Struct("cec_caps".into()),
                ArgDir::Out,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c(
                "CEC_ADAP_G_LOG_ADDRS",
                1,
                ArgKind::Struct("cec_log_addrs".into()),
                ArgDir::Out,
            )
        },
        CmdBlueprint {
            effect: CmdEffect::StateStep {
                sets: 1,
                requires: 0,
            },
            ..c(
                "CEC_ADAP_S_LOG_ADDRS",
                2,
                ArgKind::Struct("cec_log_addrs".into()),
                ArgDir::InOut,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c("CEC_ADAP_G_PHYS_ADDR", 3, ArgKind::Int, ArgDir::Out)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("CEC_ADAP_S_PHYS_ADDR", 4, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c("CEC_G_MODE", 8, ArgKind::Int, ArgDir::Out)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("CEC_S_MODE", 9, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            effect: CmdEffect::StateStep {
                sets: 2,
                requires: 1,
            },
            ..c(
                "CEC_TRANSMIT",
                5,
                ArgKind::Struct("cec_msg".into()),
                ArgDir::InOut,
            )
        },
        c(
            "CEC_RECEIVE",
            6,
            ArgKind::Struct("cec_msg".into()),
            ArgDir::InOut,
        ),
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c(
                "CEC_DQEVENT",
                7,
                ArgKind::Struct("cec_event".into()),
                ArgDir::InOut,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c(
                "CEC_ADAP_G_CONNECTOR_INFO",
                10,
                ArgKind::Struct("cec_caps".into()),
                ArgDir::Out,
            )
        },
        c("CEC_S_RC_PASSTHRU", 11, ArgKind::Int, ArgDir::In),
    ];
    bp.bugs = vec![
        bug(
            "KASAN: slab-use-after-free Read in cec_queue_msg_fh",
            Some("CVE-2024-23848"),
            Trigger::Sequence {
                first: "CEC_ADAP_S_LOG_ADDRS".into(),
                then: "CEC_RECEIVE".into(),
            },
        ),
        bug(
            "ODEBUG bug in cec_transmit_msg_fh",
            None,
            Trigger::Repeat {
                cmd: "CEC_TRANSMIT".into(),
                times: 3,
            },
        ),
        bug(
            "WARNING in cec_data_cancel",
            None,
            Trigger::Sequence {
                first: "CEC_TRANSMIT".into(),
                then: "CEC_S_MODE".into(),
            },
        ),
        bug(
            "INFO: task hung in cec_claim_log_addrs",
            None,
            Trigger::Repeat {
                cmd: "CEC_ADAP_S_LOG_ADDRS".into(),
                times: 3,
            },
        ),
        bug(
            "general protection fault in cec_transmit_done_ts",
            None,
            Trigger::Sequence {
                first: "CEC_TRANSMIT".into(),
                then: "CEC_ADAP_S_PHYS_ADDR".into(),
            },
        ),
    ];
    bp
}

/// btrfs control device — two Table 4 bugs, minimal existing spec.
#[must_use]
pub fn btrfs_control() -> Blueprint {
    let mut bp = drv(
        "btrfs_control",
        "/dev/btrfs-control",
        RegStyle::MiscName,
        DispatchStyle::Delegated(3),
        CmdTransform::None,
        0x94,
        "fs/btrfs/super.c",
    );
    bp.structs = vec![st(
        "btrfs_ioctl_vol_args",
        vec![p("fd", FieldTy::U64), p("name", FieldTy::CharArray(4088))],
    )];
    let arg = || ArgKind::Struct("btrfs_ioctl_vol_args".into());
    bp.cmds = vec![
        CmdBlueprint {
            effect: CmdEffect::StateStep {
                sets: 1,
                requires: 0,
            },
            ..c("BTRFS_IOC_SCAN_DEV", 1, arg(), ArgDir::In)
        },
        c("BTRFS_IOC_FORGET_DEV", 5, arg(), ArgDir::In),
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("BTRFS_IOC_DEVICES_READY", 39, arg(), ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c("BTRFS_IOC_GET_SUPPORTED_FEATURES", 57, arg(), ArgDir::Out)
        },
        CmdBlueprint {
            effect: CmdEffect::StateStep {
                sets: 2,
                requires: 1,
            },
            ..c("BTRFS_IOC_SNAP_CREATE", 50, arg(), ArgDir::In)
        },
    ];
    bp.existing = partial(&["BTRFS_IOC_SCAN_DEV"]);
    bp.bugs = vec![
        bug(
            "kernel BUG in btrfs_get_root_ref",
            Some("CVE-2024-23850"),
            Trigger::Sequence {
                first: "BTRFS_IOC_SCAN_DEV".into(),
                then: "BTRFS_IOC_SNAP_CREATE".into(),
            },
        ),
        bug(
            "general protection fault in btrfs_update_reloc_root",
            None,
            Trigger::FieldAbove {
                cmd: "BTRFS_IOC_SNAP_CREATE".into(),
                field: "fd".into(),
                min: 0xffff_0000,
            },
        ),
    ];
    bp
}

/// UBI control device — zero-size vmalloc + attach leak (Table 4).
#[must_use]
pub fn ubi_ctrl() -> Blueprint {
    let mut bp = drv(
        "ubi",
        "/dev/ubi_ctrl",
        RegStyle::MiscName,
        DispatchStyle::LookupTable,
        CmdTransform::None,
        0x6f, // 'o'
        "drivers/mtd/ubi/cdev.c",
    );
    bp.structs = vec![st(
        "ubi_attach_req",
        vec![
            p("ubi_num", FieldTy::U32),
            p("mtd_num", FieldTy::U32),
            p("vid_hdr_offset", FieldTy::U32),
            p("max_beb_per1024", FieldTy::U16),
            r("padding", FieldTy::U16, FieldRole::Reserved),
            p("disable_fm", FieldTy::U8),
            p("need_resv_pool", FieldTy::U8),
            p("reserved", FieldTy::Array(Box::new(FieldTy::U8), 6)),
        ],
    )];
    bp.cmds = vec![
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            effect: CmdEffect::StateStep {
                sets: 1,
                requires: 0,
            },
            ..c(
                "UBI_IOCATT",
                64,
                ArgKind::Struct("ubi_attach_req".into()),
                ArgDir::In,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("UBI_IOCDET", 65, ArgKind::Int, ArgDir::In)
        },
        c(
            "UBI_IOCVOLCR",
            66,
            ArgKind::Struct("ubi_attach_req".into()),
            ArgDir::In,
        ),
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("UBI_IOCRMVOL", 67, ArgKind::Int, ArgDir::In)
        },
    ];
    bp.bugs = vec![
        bug(
            "zero-size vmalloc in ubi_read_volume_table",
            Some("CVE-2024-25739"),
            Trigger::FieldZero {
                cmd: "UBI_IOCATT".into(),
                field: "vid_hdr_offset".into(),
            },
        ),
        bug(
            "memory leak in ubi_attach",
            Some("CVE-2024-25740"),
            Trigger::Repeat {
                cmd: "UBI_IOCATT".into(),
                times: 3,
            },
        ),
    ];
    bp
}

/// PTP/posix-clock chardev — open leak (Table 4).
#[must_use]
pub fn ptp() -> Blueprint {
    let mut bp = drv(
        "ptp",
        "/dev/ptp0",
        RegStyle::CdevIndexed,
        DispatchStyle::Switch,
        CmdTransform::None,
        0x3d, // '='
        "drivers/ptp/ptp_chardev.c",
    );
    bp.structs = vec![st(
        "ptp_clock_caps",
        vec![
            p("max_adj", FieldTy::U32),
            p("n_alarm", FieldTy::U32),
            p("n_ext_ts", FieldTy::U32),
            p("n_per_out", FieldTy::U32),
            p("pps", FieldTy::U32),
            p("n_pins", FieldTy::U32),
            p("cross_timestamping", FieldTy::U32),
            p("adjust_phase", FieldTy::U32),
            p("rsv", FieldTy::Array(Box::new(FieldTy::U32), 12)),
        ],
    )];
    bp.cmds = vec![
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c(
                "PTP_CLOCK_GETCAPS",
                1,
                ArgKind::Struct("ptp_clock_caps".into()),
                ArgDir::Out,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("PTP_EXTTS_REQUEST", 2, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("PTP_PEROUT_REQUEST", 3, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            effect: CmdEffect::StateStep {
                sets: 1,
                requires: 0,
            },
            ..c("PTP_ENABLE_PPS", 4, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c(
                "PTP_SYS_OFFSET",
                5,
                ArgKind::Struct("ptp_clock_caps".into()),
                ArgDir::InOut,
            )
        },
    ];
    bp.bugs = vec![bug(
        "memory leak in posix_clock_open",
        Some("CVE-2024-26655"),
        Trigger::Repeat {
            cmd: "PTP_ENABLE_PPS".into(),
            times: 4,
        },
    )];
    bp
}

/// DVB demux device — four Table 4 bugs (deadlock, two leaks, GPF).
#[must_use]
pub fn dvb() -> Blueprint {
    let mut bp = drv(
        "dvb",
        "/dev/dvb/adapter0/demux0",
        RegStyle::MiscNodename,
        DispatchStyle::Switch,
        CmdTransform::None,
        0x6f,
        "drivers/media/dvb-core/dmxdev.c",
    );
    bp.structs = vec![
        st(
            "dmx_pes_filter_params",
            vec![
                p("pid", FieldTy::U16),
                r("input", FieldTy::U32, FieldRole::CheckedRange(0, 1)),
                r("output", FieldTy::U32, FieldRole::CheckedRange(0, 3)),
                r("pes_type", FieldTy::U32, FieldRole::CheckedRange(0, 20)),
                r("flags", FieldTy::U32, FieldRole::Flags("dmx_flags".into())),
            ],
        ),
        st(
            "dmx_sct_filter_params",
            vec![
                p("pid", FieldTy::U16),
                p("filter", FieldTy::Array(Box::new(FieldTy::U8), 48)),
                p("timeout", FieldTy::U32),
                r("flags", FieldTy::U32, FieldRole::Flags("dmx_flags".into())),
            ],
        ),
        st(
            "dmx_requestbuffers",
            vec![
                r("count", FieldTy::U32, FieldRole::CheckedRange(1, 32)),
                p("size", FieldTy::U32),
            ],
        ),
        st(
            "dmx_exportbuffer",
            vec![
                p("index", FieldTy::U32),
                p("flags", FieldTy::U32),
                p("fd", FieldTy::U32),
            ],
        ),
    ];
    bp.flag_sets = vec![(
        "dmx_flags".into(),
        vec![
            ("DMX_CHECK_CRC".into(), 1),
            ("DMX_ONESHOT".into(), 2),
            ("DMX_IMMEDIATE_START".into(), 4),
        ],
    )];
    bp.cmds = vec![
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            effect: CmdEffect::StateStep {
                sets: 2,
                requires: 1,
            },
            ..c("DMX_START", 41, ArgKind::None, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("DMX_STOP", 42, ArgKind::None, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            effect: CmdEffect::StateStep {
                sets: 1,
                requires: 0,
            },
            ..c(
                "DMX_SET_FILTER",
                43,
                ArgKind::Struct("dmx_sct_filter_params".into()),
                ArgDir::In,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            effect: CmdEffect::StateStep {
                sets: 1,
                requires: 0,
            },
            ..c(
                "DMX_SET_PES_FILTER",
                44,
                ArgKind::Struct("dmx_pes_filter_params".into()),
                ArgDir::In,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("DMX_SET_BUFFER_SIZE", 45, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("DMX_ADD_PID", 51, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("DMX_REMOVE_PID", 52, ArgKind::Int, ArgDir::In)
        },
        c(
            "DMX_REQBUFS",
            60,
            ArgKind::Struct("dmx_requestbuffers".into()),
            ArgDir::InOut,
        ),
        c(
            "DMX_EXPBUF",
            62,
            ArgKind::Struct("dmx_exportbuffer".into()),
            ArgDir::InOut,
        ),
    ];
    bp.bugs = vec![
        bug(
            "possible deadlock in dvb_demux_release",
            None,
            Trigger::Sequence {
                first: "DMX_START".into(),
                then: "DMX_STOP".into(),
            },
        ),
        bug(
            "memory leak in dvb_dmxdev_add_pid",
            None,
            Trigger::Repeat {
                cmd: "DMX_ADD_PID".into(),
                times: 3,
            },
        ),
        bug(
            "memory leak in dvb_dvr_do_ioctl",
            None,
            Trigger::Repeat {
                cmd: "DMX_SET_BUFFER_SIZE".into(),
                times: 4,
            },
        ),
        bug(
            "general protection fault in dvb_vb2_expbuf",
            Some("CVE-2024-50291"),
            Trigger::FieldAbove {
                cmd: "DMX_EXPBUF".into(),
                field: "index".into(),
                min: 32,
            },
        ),
    ];
    bp
}

/// Virtual USB gadget endpoint driver — two Table 4 bugs.
#[must_use]
pub fn vep() -> Blueprint {
    let mut bp = drv(
        "vep",
        "/dev/vep",
        RegStyle::MiscName,
        DispatchStyle::LookupTable,
        CmdTransform::None,
        0x67, // 'g'
        "drivers/usb/gadget/legacy/vep.c",
    );
    bp.structs = vec![st(
        "vep_request",
        vec![
            p("buf", FieldTy::U64),
            p("length", FieldTy::U32),
            r("stream_id", FieldTy::U32, FieldRole::CheckedRange(0, 15)),
            p("flags", FieldTy::U32),
            r("pad", FieldTy::U32, FieldRole::Reserved),
        ],
    )];
    bp.cmds = vec![
        CmdBlueprint {
            effect: CmdEffect::StateStep {
                sets: 1,
                requires: 0,
            },
            ..c("VEP_ENABLE", 1, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            effect: CmdEffect::StateStep {
                sets: 2,
                requires: 1,
            },
            ..c(
                "VEP_QUEUE",
                2,
                ArgKind::Struct("vep_request".into()),
                ArgDir::In,
            )
        },
        c(
            "VEP_DEQUEUE",
            3,
            ArgKind::Struct("vep_request".into()),
            ArgDir::In,
        ),
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("VEP_DISABLE", 4, ArgKind::None, ArgDir::In)
        },
    ];
    bp.bugs = vec![
        bug(
            "WARNING in usb_ep_queue",
            Some("CVE-2024-25741"),
            Trigger::FieldAbove {
                cmd: "VEP_QUEUE".into(),
                field: "length".into(),
                min: 0x10_0000,
            },
        ),
        bug(
            "BUG: corrupted list in vep_queue",
            None,
            Trigger::Sequence {
                first: "VEP_QUEUE".into(),
                then: "VEP_DEQUEUE".into(),
            },
        ),
    ];
    bp
}

/// UVC video device — divide error + reqbufs warning (Table 4).
#[must_use]
pub fn uvc() -> Blueprint {
    let mut bp = drv(
        "uvc",
        "/dev/video0",
        RegStyle::CdevIndexed,
        DispatchStyle::Switch,
        CmdTransform::None,
        0x56, // 'V'
        "drivers/media/usb/uvc/uvc_queue.c",
    );
    bp.structs = vec![
        st(
            "v4l2_requestbuffers",
            vec![
                p("count", FieldTy::U32),
                r("type", FieldTy::U32, FieldRole::CheckedRange(1, 14)),
                r("memory", FieldTy::U32, FieldRole::CheckedRange(1, 4)),
                p("capabilities", FieldTy::U32),
                p("flags", FieldTy::U8),
                p("reserved", FieldTy::Array(Box::new(FieldTy::U8), 3)),
            ],
        ),
        st(
            "v4l2_format",
            vec![
                r("type", FieldTy::U32, FieldRole::CheckedRange(1, 14)),
                p("width", FieldTy::U32),
                p("height", FieldTy::U32),
                p("pixelformat", FieldTy::U32),
                p("sizeimage", FieldTy::U32),
            ],
        ),
    ];
    bp.cmds = vec![
        c(
            "VIDIOC_REQBUFS",
            8,
            ArgKind::Struct("v4l2_requestbuffers".into()),
            ArgDir::InOut,
        ),
        c(
            "VIDIOC_QUERYBUF",
            9,
            ArgKind::Struct("v4l2_requestbuffers".into()),
            ArgDir::InOut,
        ),
        c(
            "VIDIOC_S_FMT",
            5,
            ArgKind::Struct("v4l2_format".into()),
            ArgDir::InOut,
        ),
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c(
                "VIDIOC_G_FMT",
                4,
                ArgKind::Struct("v4l2_format".into()),
                ArgDir::Out,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            effect: CmdEffect::StateStep {
                sets: 1,
                requires: 0,
            },
            ..c("VIDIOC_STREAMON", 18, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("VIDIOC_STREAMOFF", 19, ArgKind::Int, ArgDir::In)
        },
    ];
    bp.bugs = vec![
        bug(
            "divide error in uvc_queue_setup",
            None,
            Trigger::FieldZero {
                cmd: "VIDIOC_S_FMT".into(),
                field: "sizeimage".into(),
            },
        ),
        bug(
            "WARNING in vb2_core_reqbufs",
            None,
            Trigger::FieldAbove {
                cmd: "VIDIOC_REQBUFS".into(),
                field: "count".into(),
                min: 0x8000,
            },
        ),
    ];
    bp
}

/// Block rq-qos test interface — task-hung bug (Table 4).
#[must_use]
pub fn blk_qos() -> Blueprint {
    let mut bp = drv(
        "blkqos",
        "/proc/blk-qos",
        RegStyle::ProcOps,
        DispatchStyle::Delegated(3),
        CmdTransform::None,
        0x12,
        "block/blk-rq-qos.c",
    );
    bp.structs = vec![st(
        "rq_qos_params",
        vec![
            p("min_lat_nsec", FieldTy::U64),
            r("enabled", FieldTy::U32, FieldRole::CheckedRange(0, 1)),
            r("pad", FieldTy::U32, FieldRole::Reserved),
        ],
    )];
    bp.cmds = vec![
        CmdBlueprint {
            effect: CmdEffect::StateStep {
                sets: 1,
                requires: 0,
            },
            ..c(
                "RQ_QOS_SET",
                1,
                ArgKind::Struct("rq_qos_params".into()),
                ArgDir::In,
            )
        },
        CmdBlueprint {
            effect: CmdEffect::StateStep {
                sets: 2,
                requires: 1,
            },
            ..c(
                "RQ_QOS_THROTTLE",
                2,
                ArgKind::Struct("rq_qos_params".into()),
                ArgDir::In,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c(
                "RQ_QOS_STAT",
                3,
                ArgKind::Struct("rq_qos_params".into()),
                ArgDir::Out,
            )
        },
    ];
    bp.bugs = vec![bug(
        "INFO: task hung in __rq_qos_throttle",
        None,
        Trigger::Sequence {
            first: "RQ_QOS_SET".into(),
            then: "RQ_QOS_THROTTLE".into(),
        },
    )];
    bp
}

// ---- Table 5 drivers --------------------------------------------------

/// Shared "small config struct" used by many simple drivers.
fn small_cfg(name: &str) -> ArgStruct {
    st(
        name,
        vec![
            p("value", FieldTy::U32),
            r("mode", FieldTy::U32, FieldRole::CheckedRange(0, 7)),
            r("rsvd", FieldTy::U32, FieldRole::Reserved),
            p("cookie", FieldTy::U32),
        ],
    )
}

/// ISDN CAPI 2.0 device.
#[must_use]
pub fn capi20() -> Blueprint {
    let mut bp = drv(
        "capi20",
        "/dev/capi20",
        RegStyle::MiscName,
        DispatchStyle::Switch,
        CmdTransform::None,
        0x43,
        "drivers/isdn/capi/capi.c",
    );
    bp.structs = vec![
        st(
            "capi_register_params",
            vec![
                p("level3cnt", FieldTy::U32),
                r("datablkcnt", FieldTy::U32, FieldRole::CheckedRange(0, 441)),
                r(
                    "datablklen",
                    FieldTy::U32,
                    FieldRole::CheckedRange(128, 2048),
                ),
            ],
        ),
        small_cfg("capi_cfg"),
    ];
    bp.cmds = vec![
        CmdBlueprint {
            effect: CmdEffect::StateStep {
                sets: 1,
                requires: 0,
            },
            ..c(
                "CAPI_REGISTER",
                1,
                ArgKind::Struct("capi_register_params".into()),
                ArgDir::In,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c(
                "CAPI_GET_MANUFACTURER",
                6,
                ArgKind::Struct("capi_cfg".into()),
                ArgDir::InOut,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c(
                "CAPI_GET_VERSION",
                7,
                ArgKind::Struct("capi_cfg".into()),
                ArgDir::InOut,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c(
                "CAPI_GET_SERIAL",
                8,
                ArgKind::Struct("capi_cfg".into()),
                ArgDir::InOut,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c(
                "CAPI_GET_PROFILE",
                9,
                ArgKind::Struct("capi_cfg".into()),
                ArgDir::InOut,
            )
        },
        c(
            "CAPI_MANUFACTURER_CMD",
            32,
            ArgKind::Struct("capi_cfg".into()),
            ArgDir::InOut,
        ),
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c("CAPI_GET_ERRCODE", 33, ArgKind::Int, ArgDir::Out)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("CAPI_INSTALLED", 34, ArgKind::None, ArgDir::In)
        },
        c("CAPI_NCCI_OPENCOUNT", 38, ArgKind::Int, ArgDir::In),
    ];
    bp.existing = partial(&[
        "CAPI_REGISTER",
        "CAPI_GET_MANUFACTURER",
        "CAPI_GET_VERSION",
        "CAPI_GET_SERIAL",
        "CAPI_GET_ERRCODE",
        "CAPI_INSTALLED",
    ]);
    bp
}

/// ALSA control device `controlC%i` — SyzDescribe's wrong-device-name
/// case (the registration uses a printf pattern).
#[must_use]
pub fn controlc() -> Blueprint {
    let mut bp = drv(
        "controlc",
        "/dev/controlC0",
        RegStyle::CdevIndexed,
        DispatchStyle::Switch,
        CmdTransform::None,
        0x55,
        "sound/core/control.c",
    );
    bp.structs = vec![
        st(
            "snd_ctl_card_info",
            vec![
                p("card", FieldTy::U32),
                r("pad", FieldTy::U32, FieldRole::Reserved),
                p("id", FieldTy::CharArray(16)),
                p("driver", FieldTy::CharArray(16)),
                p("name", FieldTy::CharArray(32)),
            ],
        ),
        st(
            "snd_ctl_elem_list",
            vec![
                p("offset", FieldTy::U32),
                r("space", FieldTy::U32, FieldRole::CheckedRange(0, 1024)),
                p("used", FieldTy::U32),
                p("count", FieldTy::U32),
                p("pids", FieldTy::U64),
            ],
        ),
    ];
    bp.cmds = vec![
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c("SNDRV_CTL_IOCTL_PVERSION", 0, ArgKind::Int, ArgDir::Out)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c(
                "SNDRV_CTL_IOCTL_CARD_INFO",
                1,
                ArgKind::Struct("snd_ctl_card_info".into()),
                ArgDir::Out,
            )
        },
        c(
            "SNDRV_CTL_IOCTL_ELEM_LIST",
            16,
            ArgKind::Struct("snd_ctl_elem_list".into()),
            ArgDir::InOut,
        ),
        c(
            "SNDRV_CTL_IOCTL_ELEM_INFO",
            17,
            ArgKind::Struct("snd_ctl_elem_list".into()),
            ArgDir::InOut,
        ),
        c(
            "SNDRV_CTL_IOCTL_ELEM_READ",
            18,
            ArgKind::Struct("snd_ctl_elem_list".into()),
            ArgDir::InOut,
        ),
        c(
            "SNDRV_CTL_IOCTL_ELEM_WRITE",
            19,
            ArgKind::Struct("snd_ctl_elem_list".into()),
            ArgDir::InOut,
        ),
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c(
                "SNDRV_CTL_IOCTL_SUBSCRIBE_EVENTS",
                22,
                ArgKind::Int,
                ArgDir::In,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("SNDRV_CTL_IOCTL_POWER", 0xd0, ArgKind::Int, ArgDir::In)
        },
    ];
    bp.existing = partial(&[
        "SNDRV_CTL_IOCTL_PVERSION",
        "SNDRV_CTL_IOCTL_CARD_INFO",
        "SNDRV_CTL_IOCTL_ELEM_LIST",
        "SNDRV_CTL_IOCTL_ELEM_INFO",
        "SNDRV_CTL_IOCTL_SUBSCRIBE_EVENTS",
        "SNDRV_CTL_IOCTL_POWER",
    ]);
    bp
}

/// FUSE device — tiny command surface; the existing description uses an
/// imprecise untyped buffer (the paper's coverage gap on equal #Sys).
#[must_use]
pub fn fuse() -> Blueprint {
    let mut bp = drv(
        "fuse",
        "/dev/fuse",
        RegStyle::MiscName,
        DispatchStyle::IfChain,
        CmdTransform::None,
        0xe5,
        "fs/fuse/dev.c",
    );
    bp.structs = vec![st(
        "fuse_dev_clone_arg",
        vec![
            p("fd", FieldTy::U32),
            r(
                "flags",
                FieldTy::U32,
                FieldRole::Flags("fuse_clone_flags".into()),
            ),
        ],
    )];
    bp.flag_sets = vec![(
        "fuse_clone_flags".into(),
        vec![("FUSE_CLONE_WAIT".into(), 1), ("FUSE_CLONE_POLL".into(), 2)],
    )];
    bp.cmds = vec![
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c(
                "FUSE_DEV_IOC_CLONE",
                0,
                ArgKind::Struct("fuse_dev_clone_arg".into()),
                ArgDir::In,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c(
                "FUSE_DEV_IOC_BACKING_OPEN",
                1,
                ArgKind::Struct("fuse_dev_clone_arg".into()),
                ArgDir::In,
            )
        },
    ];
    bp.existing = partial_imprecise(&["FUSE_DEV_IOC_CLONE", "FUSE_DEV_IOC_BACKING_OPEN"]);
    bp
}

/// HPET timer device.
#[must_use]
pub fn hpet() -> Blueprint {
    let mut bp = drv(
        "hpet",
        "/dev/hpet",
        RegStyle::MiscName,
        DispatchStyle::Switch,
        CmdTransform::None,
        0x68,
        "drivers/char/hpet.c",
    );
    bp.structs = vec![st(
        "hpet_info",
        vec![
            p("hi_ireqfreq", FieldTy::U64),
            p("hi_flags", FieldTy::U64),
            p("hi_hpet", FieldTy::U16),
            p("hi_timer", FieldTy::U16),
            r("pad", FieldTy::U32, FieldRole::Reserved),
        ],
    )];
    bp.cmds = vec![
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            effect: CmdEffect::StateStep {
                sets: 1,
                requires: 0,
            },
            ..c("HPET_IE_ON", 1, ArgKind::None, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("HPET_IE_OFF", 2, ArgKind::None, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c(
                "HPET_INFO",
                3,
                ArgKind::Struct("hpet_info".into()),
                ArgDir::Out,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("HPET_EPI", 4, ArgKind::None, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("HPET_DPI", 5, ArgKind::None, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            effect: CmdEffect::StateStep {
                sets: 2,
                requires: 1,
            },
            ..c("HPET_IRQFREQ", 6, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c("HPET_DGET", 7, ArgKind::Int, ArgDir::Out)
        },
    ];
    bp.existing = partial(&["HPET_INFO"]);
    bp
}

/// I²C adapter device — fully described by everyone (parity case).
#[must_use]
pub fn i2c() -> Blueprint {
    let mut bp = drv(
        "i2c",
        "/dev/i2c-0",
        RegStyle::Cdev,
        DispatchStyle::Switch,
        CmdTransform::None,
        0x07,
        "drivers/i2c/i2c-dev.c",
    );
    bp.structs = vec![st(
        "i2c_rdwr_ioctl_data",
        vec![
            p("msgs", FieldTy::U64),
            r("nmsgs", FieldTy::U32, FieldRole::CheckedRange(1, 42)),
            r("pad", FieldTy::U32, FieldRole::Reserved),
        ],
    )];
    bp.cmds = vec![
        craw("I2C_RETRIES", 0x701, ArgKind::Int, ArgDir::In),
        craw("I2C_TIMEOUT", 0x702, ArgKind::Int, ArgDir::In),
        craw("I2C_SLAVE", 0x703, ArgKind::Int, ArgDir::In),
        craw("I2C_SLAVE_FORCE", 0x706, ArgKind::Int, ArgDir::In),
        craw("I2C_TENBIT", 0x704, ArgKind::Int, ArgDir::In),
        craw("I2C_FUNCS", 0x705, ArgKind::Int, ArgDir::Out),
        craw(
            "I2C_RDWR",
            0x707,
            ArgKind::Struct("i2c_rdwr_ioctl_data".into()),
            ArgDir::In,
        ),
        craw("I2C_PEC", 0x708, ArgKind::Int, ArgDir::In),
        craw(
            "I2C_SMBUS",
            0x720,
            ArgKind::Struct("i2c_rdwr_ioctl_data".into()),
            ArgDir::In,
        ),
        craw("I2C_STAT", 0x721, ArgKind::Int, ArgDir::Out),
    ];
    bp.existing = ExistingSpec::Full;
    bp
}

/// KVM hypervisor root device; `KVM_CREATE_VM` yields a vm fd handled
/// by [`kvm_vm`] — the dependency chain the paper credits for the 42.5%
/// coverage jump.
#[must_use]
pub fn kvm() -> Blueprint {
    let mut bp = drv(
        "kvm",
        "/dev/kvm",
        RegStyle::MiscName,
        DispatchStyle::Switch,
        CmdTransform::None,
        0xae,
        "virt/kvm/kvm_main.c",
    );
    bp.comment = Some("KVM: /dev/kvm system ioctls; KVM_CREATE_VM returns a VM fd".into());
    bp.structs = vec![st(
        "kvm_msr_list",
        vec![
            r("nmsrs", FieldTy::U32, FieldRole::LenOf("indices".into())),
            p("indices", FieldTy::FlexArray(Box::new(FieldTy::U32))),
        ],
    )];
    bp.cmds = vec![
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("KVM_GET_API_VERSION", 0, ArgKind::None, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            effect: CmdEffect::CreatesFd {
                handler: "kvm_vm".into(),
            },
            blocks: 10,
            ..c("KVM_CREATE_VM", 1, ArgKind::Int, ArgDir::In)
        },
        c(
            "KVM_GET_MSR_INDEX_LIST",
            2,
            ArgKind::Struct("kvm_msr_list".into()),
            ArgDir::InOut,
        ),
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("KVM_CHECK_EXTENSION", 3, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("KVM_GET_VCPU_MMAP_SIZE", 4, ArgKind::None, ArgDir::In)
        },
        c(
            "KVM_GET_SUPPORTED_CPUID",
            5,
            ArgKind::Struct("kvm_msr_list".into()),
            ArgDir::InOut,
        ),
        c(
            "KVM_GET_EMULATED_CPUID",
            9,
            ArgKind::Struct("kvm_msr_list".into()),
            ArgDir::InOut,
        ),
        c(
            "KVM_GET_MSR_FEATURE_INDEX_LIST",
            10,
            ArgKind::Struct("kvm_msr_list".into()),
            ArgDir::InOut,
        ),
    ];
    bp.existing = partial(&[
        "KVM_GET_API_VERSION",
        "KVM_CREATE_VM",
        "KVM_CHECK_EXTENSION",
        "KVM_GET_VCPU_MMAP_SIZE",
        "KVM_GET_MSR_INDEX_LIST",
        "KVM_GET_SUPPORTED_CPUID",
    ]);
    bp
}

/// KVM VM fd (anonymous handler produced by `KVM_CREATE_VM`).
#[must_use]
pub fn kvm_vm() -> Blueprint {
    let mut bp = drv(
        "kvm_vm",
        "",
        RegStyle::Anon,
        DispatchStyle::Switch,
        CmdTransform::None,
        0xae,
        "virt/kvm/kvm_vm.c",
    );
    bp.structs = vec![st(
        "kvm_userspace_memory_region",
        vec![
            r("slot", FieldTy::U32, FieldRole::CheckedRange(0, 32)),
            r(
                "flags",
                FieldTy::U32,
                FieldRole::Flags("kvm_mem_flags".into()),
            ),
            p("guest_phys_addr", FieldTy::U64),
            p("memory_size", FieldTy::U64),
            p("userspace_addr", FieldTy::U64),
        ],
    )];
    bp.flag_sets = vec![(
        "kvm_mem_flags".into(),
        vec![
            ("KVM_MEM_LOG_DIRTY_PAGES".into(), 1),
            ("KVM_MEM_READONLY".into(), 2),
            ("KVM_MEM_GUEST_MEMFD".into(), 4),
        ],
    )];
    bp.cmds = vec![
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            effect: CmdEffect::CreatesFd {
                handler: "kvm_vcpu".into(),
            },
            blocks: 10,
            ..c("KVM_CREATE_VCPU", 0x41, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            effect: CmdEffect::StateStep {
                sets: 1,
                requires: 0,
            },
            ..c(
                "KVM_SET_USER_MEMORY_REGION",
                0x46,
                ArgKind::Struct("kvm_userspace_memory_region".into()),
                ArgDir::In,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("KVM_CREATE_IRQCHIP", 0x60, ArgKind::None, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("KVM_IRQ_LINE", 0x61, ArgKind::Int, ArgDir::In)
        },
        c(
            "KVM_IOEVENTFD",
            0x79,
            ArgKind::Struct("kvm_userspace_memory_region".into()),
            ArgDir::In,
        ),
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("KVM_SET_TSS_ADDR", 0x47, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("KVM_SET_IDENTITY_MAP_ADDR", 0x48, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            effect: CmdEffect::StateStep {
                sets: 2,
                requires: 1,
            },
            ..c("KVM_CREATE_PIT2", 0x77, ArgKind::Int, ArgDir::In)
        },
    ];
    bp
}

/// KVM vCPU fd (anonymous handler produced by `KVM_CREATE_VCPU`).
#[must_use]
pub fn kvm_vcpu() -> Blueprint {
    let mut bp = drv(
        "kvm_vcpu",
        "",
        RegStyle::Anon,
        DispatchStyle::Switch,
        CmdTransform::None,
        0xae,
        "virt/kvm/kvm_vcpu.c",
    );
    bp.structs = vec![st(
        "kvm_regs",
        vec![
            p("rax", FieldTy::U64),
            p("rbx", FieldTy::U64),
            p("rcx", FieldTy::U64),
            p("rdx", FieldTy::U64),
            p("rsp", FieldTy::U64),
            p("rbp", FieldTy::U64),
            p("rip", FieldTy::U64),
            p("rflags", FieldTy::U64),
        ],
    )];
    bp.cmds = vec![
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            effect: CmdEffect::StateStep {
                sets: 2,
                requires: 1,
            },
            blocks: 12,
            ..c("KVM_RUN", 0x80, ArgKind::None, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c(
                "KVM_GET_REGS",
                0x81,
                ArgKind::Struct("kvm_regs".into()),
                ArgDir::Out,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            effect: CmdEffect::StateStep {
                sets: 1,
                requires: 0,
            },
            ..c(
                "KVM_SET_REGS",
                0x82,
                ArgKind::Struct("kvm_regs".into()),
                ArgDir::In,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c(
                "KVM_GET_SREGS",
                0x83,
                ArgKind::Struct("kvm_regs".into()),
                ArgDir::Out,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c(
                "KVM_SET_SREGS",
                0x84,
                ArgKind::Struct("kvm_regs".into()),
                ArgDir::In,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c(
                "KVM_GET_FPU",
                0x8c,
                ArgKind::Struct("kvm_regs".into()),
                ArgDir::Out,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c(
                "KVM_SET_FPU",
                0x8d,
                ArgKind::Struct("kvm_regs".into()),
                ArgDir::In,
            )
        },
    ];
    bp
}

/// loop-control device (raw command values, if-chain).
#[must_use]
pub fn loop_control() -> Blueprint {
    let mut bp = drv(
        "loop_control",
        "/dev/loop-control",
        RegStyle::MiscName,
        DispatchStyle::IfChain,
        CmdTransform::None,
        0x4c,
        "drivers/block/loop.c",
    );
    bp.cmds = vec![
        craw("LOOP_CTL_ADD", 0x4c80, ArgKind::Int, ArgDir::In),
        craw("LOOP_CTL_REMOVE", 0x4c81, ArgKind::Int, ArgDir::In),
        craw("LOOP_CTL_GET_FREE", 0x4c82, ArgKind::None, ArgDir::In),
    ];
    // Existing coverage is complete but misses the 4th command in the
    // paper; keep Full here (counts are scaled anyway).
    bp.existing = ExistingSpec::Full;
    bp
}

/// loop block device.
#[must_use]
pub fn loop_dev() -> Blueprint {
    let mut bp = drv(
        "loopdev",
        "/dev/loop0",
        RegStyle::Cdev,
        DispatchStyle::Switch,
        CmdTransform::None,
        0x4c,
        "drivers/block/loop.c",
    );
    bp.structs = vec![st(
        "loop_info64",
        vec![
            p("lo_device", FieldTy::U64),
            p("lo_inode", FieldTy::U64),
            p("lo_rdevice", FieldTy::U64),
            p("lo_offset", FieldTy::U64),
            p("lo_sizelimit", FieldTy::U64),
            p("lo_number", FieldTy::U32),
            r(
                "lo_encrypt_type",
                FieldTy::U32,
                FieldRole::CheckedRange(0, 32),
            ),
            r(
                "lo_flags",
                FieldTy::U32,
                FieldRole::Flags("loop_flags".into()),
            ),
            r("pad", FieldTy::U32, FieldRole::Reserved),
            p("lo_file_name", FieldTy::CharArray(64)),
        ],
    )];
    bp.flag_sets = vec![(
        "loop_flags".into(),
        vec![
            ("LO_FLAGS_READ_ONLY".into(), 1),
            ("LO_FLAGS_AUTOCLEAR".into(), 4),
            ("LO_FLAGS_PARTSCAN".into(), 8),
            ("LO_FLAGS_DIRECT_IO".into(), 16),
        ],
    )];
    bp.cmds = vec![
        craw("LOOP_SET_FD", 0x4c00, ArgKind::Int, ArgDir::In),
        craw("LOOP_CLR_FD", 0x4c01, ArgKind::None, ArgDir::In),
        craw(
            "LOOP_SET_STATUS64",
            0x4c04,
            ArgKind::Struct("loop_info64".into()),
            ArgDir::In,
        ),
        craw(
            "LOOP_GET_STATUS64",
            0x4c05,
            ArgKind::Struct("loop_info64".into()),
            ArgDir::Out,
        ),
        craw("LOOP_CHANGE_FD", 0x4c06, ArgKind::Int, ArgDir::In),
        craw("LOOP_SET_CAPACITY", 0x4c07, ArgKind::None, ArgDir::In),
        craw("LOOP_SET_DIRECT_IO", 0x4c08, ArgKind::Int, ArgDir::In),
        craw("LOOP_SET_BLOCK_SIZE", 0x4c09, ArgKind::Int, ArgDir::In),
        craw(
            "LOOP_CONFIGURE",
            0x4c0a,
            ArgKind::Struct("loop_info64".into()),
            ArgDir::In,
        ),
        craw(
            "LOOP_SET_STATUS",
            0x4c02,
            ArgKind::Struct("loop_info64".into()),
            ArgDir::In,
        ),
        craw(
            "LOOP_GET_STATUS",
            0x4c03,
            ArgKind::Struct("loop_info64".into()),
            ArgDir::Out,
        ),
        craw(
            "LOOP_QUERY",
            0x4c0b,
            ArgKind::Struct("loop_info64".into()),
            ArgDir::Out,
        ),
    ];
    bp.existing = ExistingSpec::Full;
    bp
}

/// mISDN timer device.
#[must_use]
pub fn misdntimer() -> Blueprint {
    let mut bp = drv(
        "misdntimer",
        "/dev/mISDNtimer",
        RegStyle::MiscName,
        DispatchStyle::Switch,
        CmdTransform::None,
        0x49,
        "drivers/isdn/mISDN/timerdev.c",
    );
    bp.cmds = vec![
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("IMADDTIMER", 1, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("IMDELTIMER", 2, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("IMGETVERSION", 3, ArgKind::None, ArgDir::In)
        },
    ];
    bp.existing = ExistingSpec::Full;
    bp
}

/// NBD network block device.
#[must_use]
pub fn nbd() -> Blueprint {
    let mut bp = drv(
        "nbd",
        "/dev/nbd0",
        RegStyle::Cdev,
        DispatchStyle::Switch,
        CmdTransform::None,
        0xab,
        "drivers/block/nbd.c",
    );
    bp.cmds = vec![
        craw("NBD_SET_SOCK", 0xab00, ArgKind::Int, ArgDir::In),
        craw("NBD_SET_BLKSIZE", 0xab01, ArgKind::Int, ArgDir::In),
        craw("NBD_SET_SIZE", 0xab02, ArgKind::Int, ArgDir::In),
        craw("NBD_DO_IT", 0xab03, ArgKind::None, ArgDir::In),
        craw("NBD_CLEAR_SOCK", 0xab04, ArgKind::None, ArgDir::In),
        craw("NBD_CLEAR_QUE", 0xab05, ArgKind::None, ArgDir::In),
        craw("NBD_PRINT_DEBUG", 0xab06, ArgKind::None, ArgDir::In),
        craw("NBD_SET_SIZE_BLOCKS", 0xab07, ArgKind::Int, ArgDir::In),
        craw("NBD_DISCONNECT", 0xab08, ArgKind::None, ArgDir::In),
        craw("NBD_SET_TIMEOUT", 0xab09, ArgKind::Int, ArgDir::In),
        craw("NBD_SET_FLAGS", 0xab0a, ArgKind::Int, ArgDir::In),
        craw("NBD_GET_STATUS", 0xab0b, ArgKind::Int, ArgDir::Out),
    ];
    bp.existing = partial(&[
        "NBD_SET_SOCK",
        "NBD_SET_BLKSIZE",
        "NBD_SET_SIZE",
        "NBD_DO_IT",
        "NBD_CLEAR_SOCK",
        "NBD_CLEAR_QUE",
        "NBD_SET_SIZE_BLOCKS",
        "NBD_DISCONNECT",
        "NBD_SET_TIMEOUT",
        "NBD_SET_FLAGS",
        "NBD_PRINT_DEBUG",
    ]);
    bp
}

/// CMOS NVRAM device.
#[must_use]
pub fn nvram() -> Blueprint {
    let mut bp = drv(
        "nvram",
        "/dev/nvram",
        RegStyle::MiscName,
        DispatchStyle::Switch,
        CmdTransform::None,
        0x70,
        "drivers/char/nvram.c",
    );
    bp.cmds = vec![
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("NVRAM_INIT", 0x40, ArgKind::None, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("NVRAM_SETCKS", 0x41, ArgKind::None, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c("NVRAM_GETSIZE", 0x42, ArgKind::Int, ArgDir::Out)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("NVRAM_SETSIZE", 0x43, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c("NVRAM_RDCKS", 0x44, ArgKind::Int, ArgDir::Out)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("NVRAM_LOCK", 0x45, ArgKind::None, ArgDir::In)
        },
    ];
    bp.existing = partial(&["NVRAM_INIT"]);
    bp
}

/// PPP device — one delegation hop, imprecise existing types.
#[must_use]
pub fn ppp() -> Blueprint {
    let mut bp = drv(
        "ppp",
        "/dev/ppp",
        RegStyle::MiscName,
        DispatchStyle::Delegated(1),
        CmdTransform::None,
        0x74,
        "drivers/net/ppp/ppp_generic.c",
    );
    bp.structs = vec![st(
        "ppp_option_data",
        vec![
            p("ptr", FieldTy::U64),
            r("length", FieldTy::U32, FieldRole::CheckedRange(0, 65536)),
            p("transmit", FieldTy::U32),
        ],
    )];
    bp.cmds = vec![
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            effect: CmdEffect::StateStep {
                sets: 1,
                requires: 0,
            },
            ..c("PPPIOCNEWUNIT", 62, ArgKind::Int, ArgDir::InOut)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("PPPIOCATTACH", 61, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("PPPIOCATTCHAN", 56, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("PPPIOCDISCONN", 57, ArgKind::None, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c("PPPIOCGUNIT", 86, ArgKind::Int, ArgDir::Out)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c("PPPIOCGFLAGS", 90, ArgKind::Int, ArgDir::Out)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("PPPIOCSFLAGS", 89, ArgKind::Int, ArgDir::In)
        },
        c(
            "PPPIOCSCOMPRESS",
            77,
            ArgKind::Struct("ppp_option_data".into()),
            ArgDir::In,
        ),
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c("PPPIOCGMRU", 83, ArgKind::Int, ArgDir::Out)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("PPPIOCSMRU", 82, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("PPPIOCSMAXCID", 81, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c(
                "PPPIOCGIDLE",
                63,
                ArgKind::Struct("ppp_option_data".into()),
                ArgDir::Out,
            )
        },
    ];
    bp.existing = partial_imprecise(&[
        "PPPIOCNEWUNIT",
        "PPPIOCATTACH",
        "PPPIOCDISCONN",
        "PPPIOCGUNIT",
        "PPPIOCGFLAGS",
        "PPPIOCSFLAGS",
        "PPPIOCGMRU",
        "PPPIOCSMRU",
    ]);
    bp
}

/// PTY master multiplexer — human specs beat generation here: three
/// commands hide behind a runtime-registered ldisc table.
#[must_use]
pub fn ptmx() -> Blueprint {
    let mut bp = drv(
        "ptmx",
        "/dev/ptmx",
        RegStyle::MiscName,
        DispatchStyle::Switch,
        CmdTransform::None,
        0x54,
        "drivers/tty/pty.c",
    );
    bp.structs = vec![st(
        "winsize",
        vec![
            p("ws_row", FieldTy::U16),
            p("ws_col", FieldTy::U16),
            p("ws_xpixel", FieldTy::U16),
            p("ws_ypixel", FieldTy::U16),
        ],
    )];
    bp.cmds = vec![
        craw("TIOCGPTN", 0x80045430, ArgKind::Int, ArgDir::Out),
        craw("TIOCSPTLCK", 0x40045431, ArgKind::Int, ArgDir::In),
        craw("TIOCGPTLCK", 0x80045439, ArgKind::Int, ArgDir::Out),
        craw("TIOCPKT", 0x5420, ArgKind::Int, ArgDir::In),
        craw(
            "TIOCGWINSZ",
            0x5413,
            ArgKind::Struct("winsize".into()),
            ArgDir::Out,
        ),
        craw(
            "TIOCSWINSZ",
            0x5414,
            ArgKind::Struct("winsize".into()),
            ArgDir::In,
        ),
        craw(
            "TCGETS",
            0x5401,
            ArgKind::Struct("winsize".into()),
            ArgDir::Out,
        ),
        craw(
            "TCSETS",
            0x5402,
            ArgKind::Struct("winsize".into()),
            ArgDir::In,
        ),
        craw("TCFLSH", 0x540b, ArgKind::Int, ArgDir::In),
        craw("TIOCSIG", 0x40045436, ArgKind::Int, ArgDir::In),
        hidden(craw("TIOCLINUX", 0x541c, ArgKind::Int, ArgDir::In)),
        hidden(craw("TIOCCONS", 0x541d, ArgKind::None, ArgDir::In)),
        hidden(craw("TIOCVHANGUP", 0x5437, ArgKind::None, ArgDir::In)),
    ];
    bp.existing = ExistingSpec::Full;
    bp
}

/// Intel QAT control device.
#[must_use]
pub fn qat_adf_ctl() -> Blueprint {
    let mut bp = drv(
        "qat",
        "/dev/qat_adf_ctl",
        RegStyle::MiscName,
        DispatchStyle::Switch,
        CmdTransform::None,
        0xca,
        "drivers/crypto/intel/qat/qat_common/adf_ctl_drv.c",
    );
    bp.structs = vec![st(
        "adf_user_cfg_ctl_data",
        vec![
            p("device_id", FieldTy::U32),
            r("pad", FieldTy::U32, FieldRole::Reserved),
            p("config_section", FieldTy::CharArray(64)),
        ],
    )];
    let arg = || ArgKind::Struct("adf_user_cfg_ctl_data".into());
    bp.cmds = vec![
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            effect: CmdEffect::StateStep {
                sets: 1,
                requires: 0,
            },
            ..c("IOCTL_CONFIG_SYS_RESOURCE_PARAMETERS", 0, arg(), ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            effect: CmdEffect::StateStep {
                sets: 2,
                requires: 1,
            },
            ..c("IOCTL_START_ACCEL_DEV", 1, arg(), ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("IOCTL_STOP_ACCEL_DEV", 2, arg(), ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c("IOCTL_GET_NUM_DEVICES", 3, ArgKind::Int, ArgDir::Out)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c("IOCTL_STATUS_ACCEL_DEV", 4, arg(), ArgDir::InOut)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c("IOCTL_RESERVED", 5, ArgKind::Int, ArgDir::In)
        },
    ];
    bp.existing = ExistingSpec::Full;
    bp
}

/// rfkill switch device.
#[must_use]
pub fn rfkill() -> Blueprint {
    let mut bp = drv(
        "rfkill",
        "/dev/rfkill",
        RegStyle::MiscName,
        DispatchStyle::IfChain,
        CmdTransform::None,
        0x52,
        "net/rfkill/core.c",
    );
    bp.cmds = vec![
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("RFKILL_IOCTL_NOINPUT", 1, ArgKind::None, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("RFKILL_IOCTL_MAX_SIZE", 2, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c("RFKILL_IOCTL_GET_STATE", 3, ArgKind::Int, ArgDir::Out)
        },
    ];
    bp.existing = partial(&[
        "RFKILL_IOCTL_NOINPUT",
        "RFKILL_IOCTL_MAX_SIZE",
        "RFKILL_IOCTL_GET_STATE",
    ]);
    bp
}

/// RTC device — two commands are reachable only via a runtime table.
#[must_use]
pub fn rtc() -> Blueprint {
    let mut bp = drv(
        "rtc",
        "/dev/rtc0",
        RegStyle::Cdev,
        DispatchStyle::Switch,
        CmdTransform::None,
        0x70,
        "drivers/rtc/dev.c",
    );
    bp.structs = vec![st(
        "rtc_time",
        vec![
            r("tm_sec", FieldTy::U32, FieldRole::CheckedRange(0, 59)),
            r("tm_min", FieldTy::U32, FieldRole::CheckedRange(0, 59)),
            r("tm_hour", FieldTy::U32, FieldRole::CheckedRange(0, 23)),
            r("tm_mday", FieldTy::U32, FieldRole::CheckedRange(1, 31)),
            r("tm_mon", FieldTy::U32, FieldRole::CheckedRange(0, 11)),
            p("tm_year", FieldTy::U32),
            p("tm_wday", FieldTy::U32),
            p("tm_yday", FieldTy::U32),
            p("tm_isdst", FieldTy::U32),
        ],
    )];
    bp.cmds = vec![
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("RTC_AIE_ON", 1, ArgKind::None, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("RTC_AIE_OFF", 2, ArgKind::None, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("RTC_UIE_ON", 3, ArgKind::None, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("RTC_UIE_OFF", 4, ArgKind::None, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c(
                "RTC_RD_TIME",
                9,
                ArgKind::Struct("rtc_time".into()),
                ArgDir::Out,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c(
                "RTC_SET_TIME",
                10,
                ArgKind::Struct("rtc_time".into()),
                ArgDir::In,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c(
                "RTC_ALM_READ",
                8,
                ArgKind::Struct("rtc_time".into()),
                ArgDir::Out,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c(
                "RTC_ALM_SET",
                7,
                ArgKind::Struct("rtc_time".into()),
                ArgDir::In,
            )
        },
        hidden(CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("RTC_IRQP_SET", 12, ArgKind::Int, ArgDir::In)
        }),
        hidden(CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c("RTC_IRQP_READ", 11, ArgKind::Int, ArgDir::Out)
        }),
    ];
    bp.existing = ExistingSpec::Full;
    bp
}

/// SCSI generic device.
#[must_use]
pub fn sg() -> Blueprint {
    let mut bp = drv(
        "sg",
        "/dev/sg0",
        RegStyle::Cdev,
        DispatchStyle::IfChain,
        CmdTransform::None,
        0x22,
        "drivers/scsi/sg.c",
    );
    bp.structs = vec![st(
        "sg_io_hdr",
        vec![
            r("interface_id", FieldTy::U32, FieldRole::MagicCheck(0x53)),
            r(
                "dxfer_direction",
                FieldTy::U32,
                FieldRole::CheckedRange(0, 5),
            ),
            p("cmd_len", FieldTy::U8),
            p("mx_sb_len", FieldTy::U8),
            p("iovec_count", FieldTy::U16),
            p("dxfer_len", FieldTy::U32),
            p("dxferp", FieldTy::U64),
            p("cmdp", FieldTy::U64),
            p("sbp", FieldTy::U64),
            p("timeout", FieldTy::U32),
            r("flags", FieldTy::U32, FieldRole::Flags("sg_flags".into())),
        ],
    )];
    bp.flag_sets = vec![(
        "sg_flags".into(),
        vec![
            ("SG_FLAG_DIRECT_IO".into(), 1),
            ("SG_FLAG_MMAP_IO".into(), 4),
            ("SG_FLAG_NO_DXFER".into(), 0x10000),
        ],
    )];
    bp.cmds = vec![
        craw(
            "SG_IO",
            0x2285,
            ArgKind::Struct("sg_io_hdr".into()),
            ArgDir::InOut,
        ),
        craw("SG_GET_VERSION_NUM", 0x2282, ArgKind::Int, ArgDir::Out),
        craw("SG_SET_TIMEOUT", 0x2201, ArgKind::Int, ArgDir::In),
        craw("SG_GET_TIMEOUT", 0x2202, ArgKind::None, ArgDir::In),
        craw("SG_EMULATED_HOST", 0x2203, ArgKind::Int, ArgDir::Out),
        craw("SG_SET_RESERVED_SIZE", 0x2275, ArgKind::Int, ArgDir::In),
        craw("SG_GET_RESERVED_SIZE", 0x2272, ArgKind::Int, ArgDir::Out),
        craw(
            "SG_GET_SCSI_ID",
            0x2276,
            ArgKind::Struct("sg_io_hdr".into()),
            ArgDir::Out,
        ),
        craw("SG_SET_FORCE_PACK_ID", 0x227b, ArgKind::Int, ArgDir::In),
        craw("SG_GET_PACK_ID", 0x227c, ArgKind::Int, ArgDir::Out),
        craw("SG_GET_NUM_WAITING", 0x227d, ArgKind::Int, ArgDir::Out),
        craw("SG_SET_DEBUG", 0x227e, ArgKind::Int, ArgDir::In),
        craw("SG_GET_SG_TABLESIZE", 0x227f, ArgKind::Int, ArgDir::Out),
        craw("SG_NEXT_CMD_LEN", 0x2283, ArgKind::Int, ArgDir::In),
    ];
    bp.existing = partial(&[
        "SG_IO",
        "SG_GET_VERSION_NUM",
        "SG_SET_TIMEOUT",
        "SG_GET_TIMEOUT",
        "SG_EMULATED_HOST",
        "SG_SET_RESERVED_SIZE",
        "SG_GET_RESERVED_SIZE",
        "SG_SET_FORCE_PACK_ID",
        "SG_GET_PACK_ID",
        "SG_GET_NUM_WAITING",
        "SG_SET_DEBUG",
        "SG_NEXT_CMD_LEN",
    ]);
    bp
}

/// Software-suspend snapshot device.
#[must_use]
pub fn snapshot() -> Blueprint {
    let mut bp = drv(
        "snapshot",
        "/dev/snapshot",
        RegStyle::MiscName,
        DispatchStyle::Switch,
        CmdTransform::None,
        0x33,
        "kernel/power/user.c",
    );
    bp.cmds = vec![
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            effect: CmdEffect::StateStep {
                sets: 1,
                requires: 0,
            },
            ..c("SNAPSHOT_FREEZE", 1, ArgKind::None, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("SNAPSHOT_UNFREEZE", 2, ArgKind::None, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            effect: CmdEffect::StateStep {
                sets: 2,
                requires: 1,
            },
            ..c("SNAPSHOT_CREATE_IMAGE", 17, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("SNAPSHOT_ATOMIC_RESTORE", 4, ArgKind::None, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("SNAPSHOT_FREE", 5, ArgKind::None, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("SNAPSHOT_PREF_IMAGE_SIZE", 18, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c("SNAPSHOT_GET_IMAGE_SIZE", 14, ArgKind::Int, ArgDir::Out)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c("SNAPSHOT_AVAIL_SWAP_SIZE", 19, ArgKind::Int, ArgDir::Out)
        },
    ];
    bp.existing = partial(&[
        "SNAPSHOT_FREEZE",
        "SNAPSHOT_UNFREEZE",
        "SNAPSHOT_CREATE_IMAGE",
        "SNAPSHOT_ATOMIC_RESTORE",
        "SNAPSHOT_FREE",
        "SNAPSHOT_PREF_IMAGE_SIZE",
        "SNAPSHOT_GET_IMAGE_SIZE",
    ]);
    bp
}

/// SCSI CD-ROM device — the paper's Syzkaller specs had only one call.
#[must_use]
pub fn sr() -> Blueprint {
    let mut bp = drv(
        "sr",
        "/dev/sr0",
        RegStyle::Cdev,
        DispatchStyle::Switch,
        CmdTransform::None,
        0x53,
        "drivers/scsi/sr_ioctl.c",
    );
    bp.structs = vec![st(
        "cdrom_msf",
        vec![
            r("cdmsf_min0", FieldTy::U8, FieldRole::CheckedRange(0, 99)),
            r("cdmsf_sec0", FieldTy::U8, FieldRole::CheckedRange(0, 59)),
            r("cdmsf_frame0", FieldTy::U8, FieldRole::CheckedRange(0, 74)),
            p("cdmsf_min1", FieldTy::U8),
            p("cdmsf_sec1", FieldTy::U8),
            p("cdmsf_frame1", FieldTy::U8),
        ],
    )];
    bp.cmds = vec![
        craw("CDROMPAUSE", 0x5301, ArgKind::None, ArgDir::In),
        craw("CDROMRESUME", 0x5302, ArgKind::None, ArgDir::In),
        craw(
            "CDROMPLAYMSF",
            0x5303,
            ArgKind::Struct("cdrom_msf".into()),
            ArgDir::In,
        ),
        craw(
            "CDROMPLAYTRKIND",
            0x5304,
            ArgKind::Struct("cdrom_msf".into()),
            ArgDir::In,
        ),
        craw(
            "CDROMREADTOCHDR",
            0x5305,
            ArgKind::Struct("cdrom_msf".into()),
            ArgDir::Out,
        ),
        craw(
            "CDROMREADTOCENTRY",
            0x5306,
            ArgKind::Struct("cdrom_msf".into()),
            ArgDir::InOut,
        ),
        craw("CDROMSTOP", 0x5307, ArgKind::None, ArgDir::In),
        craw("CDROMSTART", 0x5308, ArgKind::None, ArgDir::In),
        craw("CDROMEJECT", 0x5309, ArgKind::None, ArgDir::In),
        craw(
            "CDROMVOLCTRL",
            0x530a,
            ArgKind::Struct("cdrom_msf".into()),
            ArgDir::In,
        ),
        craw(
            "CDROMSUBCHNL",
            0x530b,
            ArgKind::Struct("cdrom_msf".into()),
            ArgDir::InOut,
        ),
        craw("CDROMEJECT_SW", 0x530f, ArgKind::Int, ArgDir::In),
        craw(
            "CDROMMULTISESSION",
            0x5310,
            ArgKind::Struct("cdrom_msf".into()),
            ArgDir::InOut,
        ),
        craw(
            "CDROM_GET_MCN",
            0x5311,
            ArgKind::Struct("cdrom_msf".into()),
            ArgDir::Out,
        ),
        craw("CDROMRESET", 0x5312, ArgKind::None, ArgDir::In),
        craw(
            "CDROMVOLREAD",
            0x5313,
            ArgKind::Struct("cdrom_msf".into()),
            ArgDir::Out,
        ),
    ];
    bp.existing = partial(&["CDROMPAUSE"]);
    bp
}

/// ALSA timer device — indexed registration, one hidden command.
#[must_use]
pub fn sndtimer() -> Blueprint {
    let mut bp = drv(
        "timer",
        "/dev/sndtimer0",
        RegStyle::CdevIndexed,
        DispatchStyle::Switch,
        CmdTransform::None,
        0x54,
        "sound/core/timer.c",
    );
    bp.structs = vec![st(
        "snd_timer_id",
        vec![
            r("dev_class", FieldTy::U32, FieldRole::CheckedRange(0, 4)),
            p("dev_sclass", FieldTy::U32),
            p("card", FieldTy::U32),
            p("device", FieldTy::U32),
            p("subdevice", FieldTy::U32),
        ],
    )];
    bp.cmds = vec![
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c("SNDRV_TIMER_IOCTL_PVERSION", 0, ArgKind::Int, ArgDir::Out)
        },
        c(
            "SNDRV_TIMER_IOCTL_NEXT_DEVICE",
            1,
            ArgKind::Struct("snd_timer_id".into()),
            ArgDir::InOut,
        ),
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            effect: CmdEffect::StateStep {
                sets: 1,
                requires: 0,
            },
            ..c(
                "SNDRV_TIMER_IOCTL_SELECT",
                16,
                ArgKind::Struct("snd_timer_id".into()),
                ArgDir::In,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c(
                "SNDRV_TIMER_IOCTL_INFO",
                17,
                ArgKind::Struct("snd_timer_id".into()),
                ArgDir::Out,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            effect: CmdEffect::StateStep {
                sets: 2,
                requires: 1,
            },
            ..c("SNDRV_TIMER_IOCTL_START", 0xa0, ArgKind::None, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("SNDRV_TIMER_IOCTL_STOP", 0xa1, ArgKind::None, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c(
                "SNDRV_TIMER_IOCTL_CONTINUE",
                0xa2,
                ArgKind::None,
                ArgDir::In,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("SNDRV_TIMER_IOCTL_PAUSE", 0xa3, ArgKind::None, ArgDir::In)
        },
        hidden(CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("SNDRV_TIMER_IOCTL_TREAD", 2, ArgKind::Int, ArgDir::In)
        }),
    ];
    bp.existing = ExistingSpec::Full;
    bp
}

/// udmabuf device.
#[must_use]
pub fn udmabuf() -> Blueprint {
    let mut bp = drv(
        "udmabuf",
        "/dev/udmabuf",
        RegStyle::MiscName,
        DispatchStyle::Switch,
        CmdTransform::None,
        0x75,
        "drivers/dma-buf/udmabuf.c",
    );
    bp.structs = vec![
        st(
            "udmabuf_create",
            vec![
                p("memfd", FieldTy::U32),
                r(
                    "flags",
                    FieldTy::U32,
                    FieldRole::Flags("udmabuf_flags".into()),
                ),
                p("offset", FieldTy::U64),
                p("size", FieldTy::U64),
            ],
        ),
        st(
            "udmabuf_create_list",
            vec![
                r(
                    "flags",
                    FieldTy::U32,
                    FieldRole::Flags("udmabuf_flags".into()),
                ),
                r("count", FieldTy::U32, FieldRole::LenOf("list".into())),
                p(
                    "list",
                    FieldTy::FlexArray(Box::new(FieldTy::Struct("udmabuf_create".into()))),
                ),
            ],
        ),
    ];
    bp.flag_sets = vec![(
        "udmabuf_flags".into(),
        vec![("UDMABUF_FLAGS_CLOEXEC".into(), 1)],
    )];
    bp.cmds = vec![
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c(
                "UDMABUF_CREATE",
                0x42,
                ArgKind::Struct("udmabuf_create".into()),
                ArgDir::In,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c(
                "UDMABUF_CREATE_LIST",
                0x43,
                ArgKind::Struct("udmabuf_create_list".into()),
                ArgDir::In,
            )
        },
    ];
    bp.existing = partial(&["UDMABUF_CREATE", "UDMABUF_CREATE_LIST"]);
    bp
}

/// uinput device.
#[must_use]
pub fn uinput() -> Blueprint {
    let mut bp = drv(
        "uinput",
        "/dev/uinput",
        RegStyle::MiscName,
        DispatchStyle::Switch,
        CmdTransform::None,
        0x55,
        "drivers/input/misc/uinput.c",
    );
    bp.structs = vec![st(
        "uinput_setup",
        vec![
            p("bustype", FieldTy::U16),
            p("vendor", FieldTy::U16),
            p("product", FieldTy::U16),
            p("version", FieldTy::U16),
            p("name", FieldTy::CharArray(80)),
            p("ff_effects_max", FieldTy::U32),
        ],
    )];
    bp.cmds = vec![
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            effect: CmdEffect::StateStep {
                sets: 1,
                requires: 0,
            },
            ..c(
                "UI_DEV_SETUP",
                3,
                ArgKind::Struct("uinput_setup".into()),
                ArgDir::In,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            effect: CmdEffect::StateStep {
                sets: 2,
                requires: 1,
            },
            ..c("UI_DEV_CREATE", 1, ArgKind::None, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("UI_DEV_DESTROY", 2, ArgKind::None, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("UI_SET_EVBIT", 100, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("UI_SET_KEYBIT", 101, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("UI_SET_RELBIT", 102, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("UI_SET_ABSBIT", 103, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("UI_SET_MSCBIT", 104, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("UI_SET_PHYS", 108, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c("UI_GET_VERSION", 45, ArgKind::Int, ArgDir::Out)
        },
    ];
    bp.existing = partial(&[
        "UI_DEV_SETUP",
        "UI_DEV_CREATE",
        "UI_DEV_DESTROY",
        "UI_SET_EVBIT",
        "UI_SET_KEYBIT",
        "UI_SET_RELBIT",
        "UI_SET_ABSBIT",
        "UI_SET_MSCBIT",
        "UI_GET_VERSION",
    ]);
    bp
}

/// usbmon capture device.
#[must_use]
pub fn usbmon() -> Blueprint {
    let mut bp = drv(
        "usbmon",
        "/dev/usbmon0",
        RegStyle::Cdev,
        DispatchStyle::Switch,
        CmdTransform::None,
        0x92,
        "drivers/usb/mon/mon_bin.c",
    );
    bp.structs = vec![st(
        "mon_bin_get",
        vec![
            p("hdr", FieldTy::U64),
            p("data", FieldTy::U64),
            r("alloc", FieldTy::U64, FieldRole::CheckedRange(0, 0x100000)),
        ],
    )];
    bp.cmds = vec![
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("MON_IOCQ_URB_LEN", 1, ArgKind::None, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("MON_IOCQ_RING_SIZE", 5, ArgKind::None, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("MON_IOCT_RING_SIZE", 4, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c(
                "MON_IOCX_GET",
                6,
                ArgKind::Struct("mon_bin_get".into()),
                ArgDir::In,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c(
                "MON_IOCX_GETX",
                10,
                ArgKind::Struct("mon_bin_get".into()),
                ArgDir::In,
            )
        },
    ];
    bp.existing = partial(&[
        "MON_IOCQ_URB_LEN",
        "MON_IOCQ_RING_SIZE",
        "MON_IOCT_RING_SIZE",
        "MON_IOCX_GET",
    ]);
    bp
}

/// vhost-net device — humans described two commands the analysis
/// cannot see (runtime table).
#[must_use]
pub fn vhost_net() -> Blueprint {
    let mut bp = drv(
        "vhost_net",
        "/dev/vhost-net",
        RegStyle::MiscName,
        DispatchStyle::Delegated(1),
        CmdTransform::None,
        0xaf,
        "drivers/vhost/net.c",
    );
    bp.structs = vec![st(
        "vhost_vring_state",
        vec![
            r("index", FieldTy::U32, FieldRole::CheckedRange(0, 2)),
            p("num", FieldTy::U32),
        ],
    )];
    bp.cmds = vec![
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            effect: CmdEffect::StateStep {
                sets: 1,
                requires: 0,
            },
            ..c("VHOST_SET_OWNER", 1, ArgKind::None, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            ..c("VHOST_RESET_OWNER", 2, ArgKind::None, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c("VHOST_GET_FEATURES", 0, ArgKind::Int, ArgDir::Out)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("VHOST_SET_FEATURES", 0, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            effect: CmdEffect::StateStep {
                sets: 2,
                requires: 1,
            },
            ..c(
                "VHOST_SET_VRING_NUM",
                0x10,
                ArgKind::Struct("vhost_vring_state".into()),
                ArgDir::In,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c(
                "VHOST_SET_VRING_BASE",
                0x12,
                ArgKind::Struct("vhost_vring_state".into()),
                ArgDir::In,
            )
        },
        c(
            "VHOST_GET_VRING_BASE",
            0x12,
            ArgKind::Struct("vhost_vring_state".into()),
            ArgDir::InOut,
        ),
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c(
                "VHOST_NET_SET_BACKEND",
                0x30,
                ArgKind::Struct("vhost_vring_state".into()),
                ArgDir::In,
            )
        },
        hidden(CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("VHOST_SET_LOG_BASE", 4, ArgKind::Int, ArgDir::In)
        }),
        hidden(CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("VHOST_SET_MEM_TABLE", 3, ArgKind::Int, ArgDir::In)
        }),
    ];
    bp.existing = ExistingSpec::Full;
    bp
}

/// vhost-vsock device.
#[must_use]
pub fn vhost_vsock() -> Blueprint {
    let mut bp = drv(
        "vhost_vsock",
        "/dev/vhost-vsock",
        RegStyle::MiscName,
        DispatchStyle::Switch,
        CmdTransform::None,
        0xaf,
        "drivers/vhost/vsock.c",
    );
    bp.structs = vec![st(
        "vhost_vring_addr",
        vec![
            r("index", FieldTy::U32, FieldRole::CheckedRange(0, 2)),
            r(
                "flags",
                FieldTy::U32,
                FieldRole::Flags("vring_addr_flags".into()),
            ),
            p("desc_user_addr", FieldTy::U64),
            p("used_user_addr", FieldTy::U64),
            p("avail_user_addr", FieldTy::U64),
            p("log_guest_addr", FieldTy::U64),
        ],
    )];
    bp.flag_sets = vec![(
        "vring_addr_flags".into(),
        vec![("VHOST_VRING_F_LOG".into(), 1)],
    )];
    bp.cmds = vec![
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 0 },
            effect: CmdEffect::StateStep {
                sets: 1,
                requires: 0,
            },
            ..c("VHOST_VSOCK_SET_OWNER", 1, ArgKind::None, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            effect: CmdEffect::StateStep {
                sets: 2,
                requires: 1,
            },
            ..c("VHOST_VSOCK_SET_GUEST_CID", 0x60, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("VHOST_VSOCK_SET_RUNNING", 0x61, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c(
                "VHOST_VSOCK_SET_VRING_ADDR",
                0x11,
                ArgKind::Struct("vhost_vring_addr".into()),
                ArgDir::In,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c("VHOST_VSOCK_GET_FEATURES", 0, ArgKind::Int, ArgDir::Out)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c("VHOST_VSOCK_SET_FEATURES", 0, ArgKind::Int, ArgDir::In)
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c(
                "VHOST_VSOCK_SET_VRING_KICK",
                0x20,
                ArgKind::Struct("vhost_vring_addr".into()),
                ArgDir::In,
            )
        },
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 1 },
            ..c(
                "VHOST_VSOCK_SET_VRING_CALL",
                0x21,
                ArgKind::Struct("vhost_vring_addr".into()),
                ArgDir::In,
            )
        },
    ];
    bp.existing = partial(&["VHOST_VSOCK_SET_OWNER", "VHOST_VSOCK_SET_GUEST_CID"]);
    bp
}

/// VMware VMCI device.
#[must_use]
pub fn vmci() -> Blueprint {
    let mut bp = drv(
        "vmci",
        "/dev/vmci",
        RegStyle::MiscName,
        DispatchStyle::IfChain,
        CmdTransform::None,
        0x07,
        "drivers/misc/vmw_vmci/vmci_host.c",
    );
    bp.structs = vec![st(
        "vmci_init_blk",
        vec![
            p("cid", FieldTy::U32),
            r("flags", FieldTy::U32, FieldRole::Flags("vmci_flags".into())),
        ],
    )];
    bp.flag_sets = vec![(
        "vmci_flags".into(),
        vec![("VMCI_PRIVILEGED".into(), 1), ("VMCI_RESTRICTED".into(), 2)],
    )];
    bp.cmds = vec![
        craw(
            "IOCTL_VMCI_INIT_CONTEXT",
            0x7a0,
            ArgKind::Struct("vmci_init_blk".into()),
            ArgDir::In,
        ),
        craw(
            "IOCTL_VMCI_DATAGRAM_SEND",
            0x7a7,
            ArgKind::Struct("vmci_init_blk".into()),
            ArgDir::In,
        ),
        craw(
            "IOCTL_VMCI_DATAGRAM_RECEIVE",
            0x7a8,
            ArgKind::Struct("vmci_init_blk".into()),
            ArgDir::Out,
        ),
        craw(
            "IOCTL_VMCI_CTX_ADD_NOTIFICATION",
            0x7ab,
            ArgKind::Int,
            ArgDir::In,
        ),
        craw(
            "IOCTL_VMCI_CTX_REMOVE_NOTIFICATION",
            0x7ac,
            ArgKind::Int,
            ArgDir::In,
        ),
        craw(
            "IOCTL_VMCI_CTX_GET_CPT_STATE",
            0x7ad,
            ArgKind::Struct("vmci_init_blk".into()),
            ArgDir::Out,
        ),
        craw(
            "IOCTL_VMCI_GET_CONTEXT_ID",
            0x7b4,
            ArgKind::Int,
            ArgDir::Out,
        ),
        craw("IOCTL_VMCI_VERSION2", 0x7a4, ArgKind::Int, ArgDir::In),
    ];
    bp.existing = partial(&[
        "IOCTL_VMCI_INIT_CONTEXT",
        "IOCTL_VMCI_DATAGRAM_SEND",
        "IOCTL_VMCI_DATAGRAM_RECEIVE",
        "IOCTL_VMCI_CTX_ADD_NOTIFICATION",
        "IOCTL_VMCI_GET_CONTEXT_ID",
        "IOCTL_VMCI_VERSION2",
    ]);
    bp
}

/// vsock host device.
#[must_use]
pub fn vsock_dev() -> Blueprint {
    let mut bp = drv(
        "vsock",
        "/dev/vsock",
        RegStyle::MiscName,
        DispatchStyle::Switch,
        CmdTransform::None,
        0x07,
        "net/vmw_vsock/af_vsock.c",
    );
    bp.cmds = vec![
        craw(
            "IOCTL_VM_SOCKETS_GET_LOCAL_CID",
            0x7b9,
            ArgKind::Int,
            ArgDir::Out,
        ),
        CmdBlueprint {
            encoding: CmdEncoding::Ioc { dir: 2 },
            ..c("IOCTL_VM_SOCKETS_GET_VERSION", 0, ArgKind::Int, ArgDir::Out)
        },
    ];
    bp.existing = partial(&["IOCTL_VM_SOCKETS_GET_LOCAL_CID"]);
    bp
}

// ---- Table 6 sockets ---------------------------------------------------

fn sockaddr_of(id: &str, family: u64) -> ArgStruct {
    st(
        &format!("sockaddr_{id}"),
        vec![
            r("family", FieldTy::U16, FieldRole::MagicCheck(family)),
            p("port", FieldTy::U16),
            p("addr", FieldTy::U32),
            p("pad", FieldTy::Array(Box::new(FieldTy::U64), 1)),
        ],
    )
}

fn sockopt(name: &str, value: u64, arg: ArgKind) -> CmdBlueprint {
    CmdBlueprint {
        encoding: CmdEncoding::Raw(value),
        ..CmdBlueprint::new(name, value, arg, ArgDir::In)
    }
}

/// CAIF stream socket.
#[must_use]
pub fn caif_stream() -> Blueprint {
    let mut bp = sock("caif", "AF_CAIF", 37, 1, 0, 278, "net/caif/caif_socket.c");
    bp.structs = vec![sockaddr_of("caif", 37)];
    bp.cmds = vec![
        sockopt("CAIFSO_LINK_SELECT", 0x7f, ArgKind::Int),
        sockopt(
            "CAIFSO_REQ_PARAM",
            0x80,
            ArgKind::Struct("sockaddr_caif".into()),
        ),
    ];
    bp.existing = ExistingSpec::Partial {
        cmds: vec![],
        imprecise_types: false,
        calls: vec![SockCall::Bind, SockCall::Connect],
    };
    bp
}

/// L2TP over IPv6 — the paper's "45 option values in one flags list"
/// case, plus a Table 4 leak via repeated sendto.
#[must_use]
pub fn l2tp_ip6() -> Blueprint {
    let mut bp = sock(
        "l2tp_ip6",
        "AF_INET6",
        10,
        2,
        115,
        273,
        "net/l2tp/l2tp_ip6.c",
    );
    bp.structs = vec![
        sockaddr_of("l2tp_ip6", 10),
        st(
            "l2tp_tunnel_cfg",
            vec![
                p("tunnel_id", FieldTy::U32),
                p("peer_tunnel_id", FieldTy::U32),
                r("encap", FieldTy::U32, FieldRole::CheckedRange(0, 1)),
                r("pad", FieldTy::U32, FieldRole::Reserved),
            ],
        ),
    ];
    bp.cmds = (0..12)
        .map(|i| {
            let arg = if i % 3 == 0 {
                ArgKind::Struct("l2tp_tunnel_cfg".into())
            } else {
                ArgKind::Int
            };
            sockopt(&format!("L2TP_IP6_OPT_{i}"), 40 + i, arg)
        })
        .collect();
    // The existing description omits the sendmsg path entirely — the
    // paper's "incomplete existing specification" category; generating
    // it is what exposes the __ip6_append_data leak.
    bp.existing = ExistingSpec::Partial {
        cmds: (0..5).map(|i| format!("L2TP_IP6_OPT_{i}")).collect(),
        imprecise_types: true,
        calls: vec![SockCall::Bind, SockCall::Connect, SockCall::Recvfrom],
    };
    bp.bugs = vec![bug(
        "memory leak in __ip6_append_data",
        None,
        Trigger::PayloadLen { min_len: 2048 },
    )];
    bp
}

/// LLC (802.2) socket.
#[must_use]
pub fn llc_ui() -> Blueprint {
    let mut bp = sock("llc", "AF_LLC", 26, 2, 0, 268, "net/llc/af_llc.c");
    bp.structs = vec![sockaddr_of("llc", 26)];
    bp.cmds = vec![
        sockopt("LLC_OPT_RETRY", 2, ArgKind::Int),
        sockopt("LLC_OPT_SIZE", 3, ArgKind::Int),
        sockopt("LLC_OPT_ACK_TMR_EXP", 4, ArgKind::Int),
        sockopt("LLC_OPT_P_TMR_EXP", 5, ArgKind::Int),
        sockopt("LLC_OPT_REJ_TMR_EXP", 6, ArgKind::Int),
        sockopt("LLC_OPT_BUSY_TMR_EXP", 7, ArgKind::Int),
    ];
    bp.existing = ExistingSpec::Partial {
        cmds: vec!["LLC_OPT_RETRY".into()],
        imprecise_types: true,
        calls: vec![SockCall::Bind],
    };
    bp
}

/// MPTCP socket.
#[must_use]
pub fn mptcp() -> Blueprint {
    let mut bp = sock("mptcp", "AF_INET", 2, 1, 262, 284, "net/mptcp/sockopt.c");
    bp.structs = vec![
        sockaddr_of("mptcp", 2),
        st(
            "mptcp_subflow_addrs",
            vec![
                r("num_subflows", FieldTy::U32, FieldRole::CheckedRange(0, 8)),
                p("flags", FieldTy::U32),
                p("addrs", FieldTy::Array(Box::new(FieldTy::U64), 4)),
            ],
        ),
    ];
    bp.cmds = vec![
        sockopt(
            "MPTCP_INFO",
            1,
            ArgKind::Struct("mptcp_subflow_addrs".into()),
        ),
        sockopt(
            "MPTCP_TCPINFO",
            2,
            ArgKind::Struct("mptcp_subflow_addrs".into()),
        ),
        sockopt(
            "MPTCP_SUBFLOW_ADDRS",
            3,
            ArgKind::Struct("mptcp_subflow_addrs".into()),
        ),
        sockopt(
            "MPTCP_FULL_INFO",
            4,
            ArgKind::Struct("mptcp_subflow_addrs".into()),
        ),
        sockopt("MPTCP_SCHEDULER", 5, ArgKind::Int),
        sockopt("MPTCP_ENABLED", 42, ArgKind::Int),
        sockopt("MPTCP_ADD_ADDR_TIMEOUT", 43, ArgKind::Int),
        sockopt("MPTCP_PM_TYPE", 44, ArgKind::Int),
    ];
    bp.existing = ExistingSpec::Partial {
        cmds: vec![
            "MPTCP_INFO".into(),
            "MPTCP_ENABLED".into(),
            "MPTCP_PM_TYPE".into(),
        ],
        imprecise_types: false,
        calls: vec![
            SockCall::Bind,
            SockCall::Connect,
            SockCall::Sendto,
            SockCall::Recvfrom,
        ],
    };
    bp
}

/// AF_PACKET socket — fully described by humans already (parity case).
#[must_use]
pub fn packet() -> Blueprint {
    let mut bp = sock(
        "packet",
        "AF_PACKET",
        17,
        3,
        0x300,
        263,
        "net/packet/af_packet.c",
    );
    bp.structs = vec![
        sockaddr_of("packet", 17),
        st(
            "tpacket_req",
            vec![
                p("tp_block_size", FieldTy::U32),
                p("tp_block_nr", FieldTy::U32),
                p("tp_frame_size", FieldTy::U32),
                r(
                    "tp_frame_nr",
                    FieldTy::U32,
                    FieldRole::CheckedRange(0, 65536),
                ),
            ],
        ),
    ];
    bp.cmds = vec![
        sockopt(
            "PACKET_ADD_MEMBERSHIP",
            1,
            ArgKind::Struct("sockaddr_packet".into()),
        ),
        sockopt(
            "PACKET_DROP_MEMBERSHIP",
            2,
            ArgKind::Struct("sockaddr_packet".into()),
        ),
        sockopt("PACKET_RX_RING", 5, ArgKind::Struct("tpacket_req".into())),
        sockopt("PACKET_TX_RING", 13, ArgKind::Struct("tpacket_req".into())),
        sockopt("PACKET_VERSION", 10, ArgKind::Int),
        sockopt("PACKET_FANOUT", 18, ArgKind::Int),
    ];
    bp.existing = ExistingSpec::Full;
    bp
}

/// Phonet datagram socket.
#[must_use]
pub fn phonet_dgram() -> Blueprint {
    let mut bp = sock(
        "phonet",
        "AF_PHONET",
        35,
        2,
        0,
        275,
        "net/phonet/datagram.c",
    );
    bp.structs = vec![sockaddr_of("phonet", 35)];
    bp.cmds = vec![
        sockopt("PNPIPE_ENCAP", 1, ArgKind::Int),
        sockopt("PNPIPE_IFINDEX", 2, ArgKind::Int),
        sockopt("PNPIPE_HANDLE", 3, ArgKind::Int),
    ];
    bp.existing = ExistingSpec::Partial {
        cmds: vec!["PNPIPE_ENCAP".into()],
        imprecise_types: false,
        calls: vec![SockCall::Bind, SockCall::Sendto],
    };
    bp
}

/// PPPoL2TP socket.
#[must_use]
pub fn pppol2tp() -> Blueprint {
    let mut bp = sock("pppol2tp", "AF_PPPOX", 24, 1, 1, 273, "net/l2tp/l2tp_ppp.c");
    bp.structs = vec![sockaddr_of("pppol2tp", 24)];
    bp.cmds = vec![
        sockopt("PPPOL2TP_SO_DEBUG", 1, ArgKind::Int),
        sockopt("PPPOL2TP_SO_RECVSEQ", 2, ArgKind::Int),
        sockopt("PPPOL2TP_SO_SENDSEQ", 3, ArgKind::Int),
        sockopt("PPPOL2TP_SO_LNSMODE", 4, ArgKind::Int),
        sockopt("PPPOL2TP_SO_REORDERTO", 5, ArgKind::Int),
    ];
    bp.existing = ExistingSpec::Partial {
        cmds: vec!["PPPOL2TP_SO_DEBUG".into(), "PPPOL2TP_SO_RECVSEQ".into()],
        imprecise_types: false,
        calls: vec![
            SockCall::Bind,
            SockCall::Connect,
            SockCall::Sendto,
            SockCall::Recvfrom,
        ],
    };
    bp
}

/// RDS socket — the paper's case of an existing spec that covers only
/// `recvmsg`; the generated `sendto` exposes CVE-2024-23849.
#[must_use]
pub fn rds() -> Blueprint {
    let mut bp = sock("rds", "AF_RDS", 21, 5, 0, 276, "net/rds/af_rds.c");
    bp.comment = Some("RDS: reliable datagram sockets; sendmsg path handles cmsg payloads".into());
    bp.structs = vec![
        sockaddr_of("rds", 21),
        st(
            "rds_get_mr_args",
            vec![
                p("vec_addr", FieldTy::U64),
                p("vec_bytes", FieldTy::U64),
                p("cookie_addr", FieldTy::U64),
                r(
                    "flags",
                    FieldTy::U64,
                    FieldRole::Flags("rds_mr_flags".into()),
                ),
            ],
        ),
    ];
    bp.flag_sets = vec![(
        "rds_mr_flags".into(),
        vec![
            ("RDS_RDMA_USE_ONCE".into(), 8),
            ("RDS_RDMA_INVALIDATE".into(), 16),
        ],
    )];
    bp.cmds = vec![
        sockopt(
            "RDS_CANCEL_SENT_TO",
            1,
            ArgKind::Struct("sockaddr_rds".into()),
        ),
        sockopt("RDS_GET_MR", 2, ArgKind::Struct("rds_get_mr_args".into())),
        sockopt("RDS_FREE_MR", 3, ArgKind::Struct("rds_get_mr_args".into())),
        sockopt("RDS_RECVERR", 5, ArgKind::Int),
        sockopt("RDS_CONG_MONITOR", 6, ArgKind::Int),
    ];
    bp.existing = ExistingSpec::Partial {
        cmds: vec!["RDS_RECVERR".into()],
        imprecise_types: false,
        calls: vec![SockCall::Bind, SockCall::Recvfrom],
    };
    bp.bugs = vec![bug(
        "UBSAN: array-index-out-of-bounds in rds_cmsg_recv",
        Some("CVE-2024-23849"),
        Trigger::PayloadLen { min_len: 64 },
    )];
    bp
}

/// Bluetooth RFCOMM socket.
#[must_use]
pub fn rfcomm_sock() -> Blueprint {
    let mut bp = sock(
        "rfcomm",
        "AF_BLUETOOTH",
        31,
        1,
        3,
        18,
        "net/bluetooth/rfcomm/sock.c",
    );
    bp.structs = vec![sockaddr_of("rfcomm", 31)];
    bp.cmds = vec![
        sockopt("RFCOMM_LM", 3, ArgKind::Int),
        sockopt("BT_SECURITY", 4, ArgKind::Struct("sockaddr_rfcomm".into())),
        sockopt("BT_DEFER_SETUP", 7, ArgKind::Int),
        sockopt("BT_POWER", 9, ArgKind::Int),
        sockopt("BT_CHANNEL_POLICY", 10, ArgKind::Int),
        hidden(sockopt("BT_SNDMTU", 12, ArgKind::Int)),
    ];
    bp.existing = ExistingSpec::Full;
    bp
}

/// Bluetooth SCO socket.
#[must_use]
pub fn sco_sock() -> Blueprint {
    let mut bp = sock("sco", "AF_BLUETOOTH2", 31, 5, 2, 17, "net/bluetooth/sco.c");
    bp.structs = vec![sockaddr_of("sco", 31)];
    bp.cmds = vec![
        sockopt("SCO_OPTIONS", 1, ArgKind::Struct("sockaddr_sco".into())),
        sockopt("SCO_CONNINFO", 2, ArgKind::Int),
        sockopt("BT_VOICE", 11, ArgKind::Int),
        sockopt("BT_PKT_STATUS", 16, ArgKind::Int),
        hidden(sockopt("BT_CODEC", 19, ArgKind::Int)),
    ];
    bp.existing = ExistingSpec::Full;
    bp
}

// ---- collection --------------------------------------------------------

/// Every flagship blueprint, drivers first, then sockets.
#[must_use]
pub fn all_flagships() -> Vec<Blueprint> {
    vec![
        // Bug-hosting drivers (Table 4).
        dm(),
        cec(),
        btrfs_control(),
        ubi_ctrl(),
        ptp(),
        dvb(),
        vep(),
        uvc(),
        blk_qos(),
        // Table 5 drivers.
        capi20(),
        controlc(),
        fuse(),
        hpet(),
        i2c(),
        kvm(),
        kvm_vm(),
        kvm_vcpu(),
        loop_control(),
        loop_dev(),
        misdntimer(),
        nbd(),
        nvram(),
        ppp(),
        ptmx(),
        qat_adf_ctl(),
        rfkill(),
        rtc(),
        sg(),
        snapshot(),
        sr(),
        sndtimer(),
        udmabuf(),
        uinput(),
        usbmon(),
        vhost_net(),
        vhost_vsock(),
        vmci(),
        vsock_dev(),
        // Table 6 sockets.
        caif_stream(),
        l2tp_ip6(),
        llc_ui(),
        mptcp(),
        packet(),
        phonet_dgram(),
        pppol2tp(),
        rds(),
        rfcomm_sock(),
        sco_sock(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmacro;
    use crate::emit::emit_blueprint;
    use crate::index::Corpus;
    use crate::parser::cparse;
    use std::collections::BTreeSet;

    #[test]
    fn ids_are_unique() {
        let all = all_flagships();
        let ids: BTreeSet<&str> = all.iter().map(|b| b.id.as_str()).collect();
        assert_eq!(ids.len(), all.len());
    }

    #[test]
    fn every_flagship_source_parses() {
        for bp in all_flagships() {
            let src = emit_blueprint(&bp);
            cparse(&bp.source_file, &src).unwrap_or_else(|e| panic!("{}: {e}\n{src}", bp.id));
        }
    }

    #[test]
    fn every_cmd_macro_evaluates_to_blueprint_value() {
        for bp in all_flagships() {
            let src = emit_blueprint(&bp);
            let corpus = Corpus::build(vec![cparse("x.c", &src).unwrap()]);
            for cmd in &bp.cmds {
                let v = cmacro::eval_const(&corpus, &cmd.name)
                    .unwrap_or_else(|| panic!("{}: cannot eval {}", bp.id, cmd.name));
                assert_eq!(v, bp.cmd_value(cmd), "{}:{}", bp.id, cmd.name);
            }
        }
    }

    #[test]
    fn ground_truth_specs_validate_when_merged() {
        let all = all_flagships();
        let mut consts = kgpt_syzlang::ConstDb::new();
        consts.define("AT_FDCWD", 0xffff_ff9c);
        let mut files = Vec::new();
        for bp in &all {
            for (k, v) in bp.const_entries() {
                consts.define(k, v);
            }
            files.push(bp.ground_truth_spec());
        }
        let db = kgpt_syzlang::SpecDb::from_files(files);
        let errors = kgpt_syzlang::validate::validate(&db, &consts);
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn existing_specs_validate_when_merged() {
        let all = all_flagships();
        let mut consts = kgpt_syzlang::ConstDb::new();
        consts.define("AT_FDCWD", 0xffff_ff9c);
        let mut files = Vec::new();
        for bp in &all {
            for (k, v) in bp.const_entries() {
                consts.define(k, v);
            }
            if let Some(f) = bp.existing_spec_file() {
                files.push(f);
            }
        }
        assert!(files.len() > 20);
        let db = kgpt_syzlang::SpecDb::from_files(files);
        let errors = kgpt_syzlang::validate::validate(&db, &consts);
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn table4_bug_inventory_matches_paper_count() {
        let all = all_flagships();
        let bugs: Vec<&BugBlueprint> = all.iter().flat_map(|b| b.bugs.iter()).collect();
        assert_eq!(bugs.len(), 24, "Table 4 lists 24 bugs");
        let cves = bugs.iter().filter(|b| b.cve.is_some()).count();
        assert_eq!(cves, 11, "Table 4 lists 11 CVEs");
        let titles: BTreeSet<&str> = bugs.iter().map(|b| b.title.as_str()).collect();
        assert_eq!(titles.len(), 24, "bug titles must be unique");
    }

    #[test]
    fn bug_triggers_reference_real_commands() {
        for bp in all_flagships() {
            for b in &bp.bugs {
                let cmd_names: Vec<&str> = match &b.trigger {
                    Trigger::FieldAbove { cmd, .. } | Trigger::FieldZero { cmd, .. } => vec![cmd],
                    Trigger::Sequence { first, then } => vec![first, then],
                    Trigger::Repeat { cmd, .. } => vec![cmd],
                    Trigger::PayloadLen { .. } => vec![],
                }
                .into_iter()
                .map(String::as_str)
                .collect();
                for name in cmd_names {
                    assert!(
                        bp.cmd(name).is_some(),
                        "{}: trigger references {name}",
                        bp.id
                    );
                }
                // Field triggers must reference real fields of the cmd's struct.
                if let Trigger::FieldAbove { cmd, field, .. } | Trigger::FieldZero { cmd, field } =
                    &b.trigger
                {
                    let ArgKind::Struct(sname) = &bp.cmd(cmd).unwrap().arg else {
                        panic!("{}: field trigger on non-struct cmd {cmd}", bp.id);
                    };
                    let s = bp.arg_struct(sname).unwrap();
                    assert!(
                        s.fields.iter().any(|f| &f.name == field),
                        "{}: {cmd} has no field {field}",
                        bp.id
                    );
                }
            }
        }
    }

    #[test]
    fn kvm_chain_is_wired() {
        let all = all_flagships();
        let kvm = all.iter().find(|b| b.id == "kvm").unwrap();
        let create = kvm.cmd("KVM_CREATE_VM").unwrap();
        assert_eq!(
            create.effect,
            CmdEffect::CreatesFd {
                handler: "kvm_vm".into()
            }
        );
        assert!(all.iter().any(|b| b.id == "kvm_vm"));
        assert!(all.iter().any(|b| b.id == "kvm_vcpu"));
    }

    #[test]
    fn struct_sizes_agree_with_c_corpus() {
        for bp in all_flagships() {
            let src = emit_blueprint(&bp);
            let corpus = Corpus::build(vec![cparse("x.c", &src).unwrap()]);
            for s in &bp.structs {
                let bp_size = s.size_align(&bp.structs).0;
                let c_size = corpus
                    .sizeof_struct(&s.name)
                    .unwrap_or_else(|| panic!("{}: sizeof {}", bp.id, s.name));
                assert_eq!(bp_size, c_size, "{}: struct {}", bp.id, s.name);
            }
        }
    }

    #[test]
    fn hidden_cmds_absent_from_emitted_dispatch() {
        let bp = ptmx();
        let src = emit_blueprint(&bp);
        assert!(!src.contains("case TIOCLINUX"));
        assert!(src.contains("TIOCLINUX")); // macro still defined
        assert!(src.contains("invoke_registered_handler"));
    }
}
