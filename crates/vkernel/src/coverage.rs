//! Dense coverage bitmap.
//!
//! Basic-block ids are small dense integers by construction — handler
//! `i` owns the stratum `[(i+1)·4096, (i+2)·4096)` — so a word-array
//! bitmap beats a `BTreeSet<u64>` on every hot operation: insert is
//! one or-and-test, union is a word-wise `|` over `O(words)`, and the
//! distinct-block count is maintained incrementally instead of being
//! recomputed. The set view ([`CoverageMap::to_btree_set`]) is kept
//! for reports and serialization compatibility; iteration is lazy and
//! ascending, so existing `BTreeSet`-shaped consumers keep working
//! through [`Extend`]/[`FromIterator`].

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A set of covered basic-block ids, stored as a dense bitmap.
#[derive(Clone, Default, Serialize, Deserialize)]
pub struct CoverageMap {
    /// Bit `b` of `words[w]` set ⇔ block `w * 64 + b` covered.
    words: Vec<u64>,
    /// Number of set bits, maintained incrementally.
    count: usize,
}

impl CoverageMap {
    /// Empty map.
    #[must_use]
    pub fn new() -> CoverageMap {
        CoverageMap::default()
    }

    /// Empty map with room for block ids below `max_block` without
    /// reallocation.
    #[must_use]
    pub fn with_capacity(max_block: u64) -> CoverageMap {
        CoverageMap {
            words: Vec::with_capacity((max_block / 64 + 1) as usize),
            count: 0,
        }
    }

    /// Insert a block id. Returns `true` if it was newly covered.
    pub fn insert(&mut self, block: u64) -> bool {
        let (w, bit) = (block as usize / 64, 1u64 << (block % 64));
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let newly = self.words[w] & bit == 0;
        self.words[w] |= bit;
        self.count += usize::from(newly);
        newly
    }

    /// Whether a block is covered.
    #[must_use]
    pub fn contains(&self, block: u64) -> bool {
        self.words
            .get(block as usize / 64)
            .is_some_and(|w| w & (1 << (block % 64)) != 0)
    }

    /// Number of distinct covered blocks. O(1).
    #[must_use]
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether no block is covered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Remove every block, retaining the allocation (hot-loop reuse).
    pub fn clear(&mut self) {
        self.words.clear();
        self.count = 0;
    }

    /// Union `other` into `self`, word-wise. Returns the number of
    /// newly covered blocks. Commutative in effect: merge order never
    /// changes the resulting set.
    pub fn merge(&mut self, other: &CoverageMap) -> usize {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut newly = 0usize;
        for (dst, src) in self.words.iter_mut().zip(&other.words) {
            let add = *src & !*dst;
            newly += add.count_ones() as usize;
            *dst |= add;
        }
        self.count += newly;
        newly
    }

    /// Number of blocks in `other` not covered by `self`, without
    /// modifying either (the coverage-guided "is this input
    /// interesting" test).
    #[must_use]
    pub fn new_blocks_in(&self, other: &CoverageMap) -> usize {
        let mut n = 0usize;
        for (i, src) in other.words.iter().enumerate() {
            let dst = self.words.get(i).copied().unwrap_or(0);
            n += (src & !dst).count_ones() as usize;
        }
        n
    }

    /// The blocks of `other` not covered by `self`, as a new map —
    /// the per-entry "coverage contributed" key of a corpus seed.
    /// Allocates; guard hot paths with [`CoverageMap::new_blocks_in`]
    /// first when the diff is usually empty.
    #[must_use]
    pub fn diff_in(&self, other: &CoverageMap) -> CoverageMap {
        let mut words = vec![0u64; other.words.len()];
        let mut count = 0usize;
        for (i, src) in other.words.iter().enumerate() {
            let dst = self.words.get(i).copied().unwrap_or(0);
            let add = src & !dst;
            words[i] = add;
            count += add.count_ones() as usize;
        }
        CoverageMap { words, count }
    }

    /// Union `other` into `self` and return the contributed delta as
    /// its own map, in one pass. Equivalent to [`CoverageMap::diff_in`]
    /// followed by [`CoverageMap::merge`].
    pub fn merge_diff(&mut self, other: &CoverageMap) -> CoverageMap {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut words = vec![0u64; other.words.len()];
        let mut count = 0usize;
        for (i, src) in other.words.iter().enumerate() {
            let add = src & !self.words[i];
            words[i] = add;
            count += add.count_ones() as usize;
            self.words[i] |= add;
        }
        self.count += count;
        CoverageMap { words, count }
    }

    /// Whether the two maps share no block.
    #[must_use]
    pub fn is_disjoint(&self, other: &CoverageMap) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Lazy ascending iteration over covered block ids.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Sorted-set view, for reports and serialized artifacts that
    /// predate the bitmap representation.
    #[must_use]
    pub fn to_btree_set(&self) -> BTreeSet<u64> {
        self.iter().collect()
    }

    /// The raw bitmap words (bit `b` of word `w` set ⇔ block
    /// `w * 64 + b` covered) — the checkpoint serialization view.
    /// Trailing zero words may be present; they are representation
    /// noise (equality ignores them) and may be dropped by writers.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild a map from raw bitmap words previously obtained via
    /// [`CoverageMap::words`]. The distinct-block count is recomputed
    /// from the words, so a writer that trimmed (or kept) trailing
    /// zero words restores to a map equal to the original.
    #[must_use]
    pub fn from_words(words: Vec<u64>) -> CoverageMap {
        let count = words.iter().map(|w| w.count_ones() as usize).sum();
        CoverageMap { words, count }
    }

    /// Word-level diff of `self` against `base`: the instructions that
    /// turn `base` into a map equal to `self`. Changed words are
    /// collected into runs of consecutive indices (the run-length fast
    /// path — fresh coverage clusters inside a handler's block
    /// stratum); when the sparse form would serialize larger than the
    /// full bitmap, the diff falls back to [`CoverageWordDiff::Dense`].
    #[must_use]
    pub fn diff_words_since(&self, base: &CoverageMap) -> CoverageWordDiff {
        let len = self.words.len().max(base.words.len());
        let mut runs: Vec<(u32, Vec<u64>)> = Vec::new();
        for i in 0..len {
            let new = self.words.get(i).copied().unwrap_or(0);
            let old = base.words.get(i).copied().unwrap_or(0);
            if new == old {
                continue;
            }
            match runs.last_mut() {
                Some((start, words)) if *start as usize + words.len() == i => words.push(new),
                _ => runs.push((u32::try_from(i).unwrap_or(u32::MAX), vec![new])),
            }
        }
        let sparse = CoverageWordDiff::Sparse(runs);
        if sparse.encoded_bytes() < CoverageWordDiff::dense_bytes(self.words.len()) {
            sparse
        } else {
            CoverageWordDiff::Dense(self.words.clone())
        }
    }

    /// Apply a diff produced by [`CoverageMap::diff_words_since`] to
    /// `self` (the base the diff was taken against) and return the
    /// reconstructed map. Inverse property:
    /// `base.apply_word_diff(&new.diff_words_since(&base)) == new`.
    #[must_use]
    pub fn apply_word_diff(&self, diff: &CoverageWordDiff) -> CoverageMap {
        match diff {
            CoverageWordDiff::Dense(words) => CoverageMap::from_words(words.clone()),
            CoverageWordDiff::Sparse(runs) => {
                let mut words = self.words.clone();
                for (start, run) in runs {
                    let start = *start as usize;
                    if start + run.len() > words.len() {
                        words.resize(start + run.len(), 0);
                    }
                    words[start..start + run.len()].copy_from_slice(run);
                }
                CoverageMap::from_words(words)
            }
        }
    }
}

/// A word-granular coverage diff: how to rebuild a newer
/// [`CoverageMap`] from an agreed base. Produced by
/// [`CoverageMap::diff_words_since`], consumed by
/// [`CoverageMap::apply_word_diff`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoverageWordDiff {
    /// Runs of consecutive changed words: `(first word index,
    /// replacement words)`. An empty run list means the maps are
    /// equal (up to trailing-zero representation noise).
    Sparse(Vec<(u32, Vec<u64>)>),
    /// The newer map's full bitmap — chosen when the sparse form
    /// would serialize larger than simply resending every word.
    Dense(Vec<u64>),
}

impl CoverageWordDiff {
    /// Whether applying this diff is a no-op (the maps were equal).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        match self {
            CoverageWordDiff::Sparse(runs) => runs.is_empty(),
            CoverageWordDiff::Dense(_) => false,
        }
    }

    /// Serialized size of this diff in the checkpoint codec: a u32
    /// count plus, per sparse run, a u32 start + u32 length header
    /// and 8 bytes per word (dense pays the header once). The
    /// dense-fallback decision in [`CoverageMap::diff_words_since`]
    /// compares exactly these numbers.
    #[must_use]
    pub fn encoded_bytes(&self) -> usize {
        match self {
            CoverageWordDiff::Sparse(runs) => {
                4 + runs.iter().map(|(_, w)| 8 + 8 * w.len()).sum::<usize>()
            }
            CoverageWordDiff::Dense(words) => CoverageWordDiff::dense_bytes(words.len()),
        }
    }

    /// Serialized size of a dense diff over `words` bitmap words.
    #[must_use]
    pub fn dense_bytes(words: usize) -> usize {
        4 + 8 * words
    }
}

impl PartialEq for CoverageMap {
    fn eq(&self, other: &CoverageMap) -> bool {
        if self.count != other.count {
            return false;
        }
        // Trailing zero words are representation noise, not content.
        let common = self.words.len().min(other.words.len());
        self.words[..common] == other.words[..common]
            && self.words[common..].iter().all(|w| *w == 0)
            && other.words[common..].iter().all(|w| *w == 0)
    }
}

impl Eq for CoverageMap {}

impl fmt::Debug for CoverageMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Lazy iterator over set bits, ascending.
pub struct Iter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        while self.current == 0 {
            self.word_idx += 1;
            self.current = *self.words.get(self.word_idx)?;
        }
        let bit = self.current.trailing_zeros();
        self.current &= self.current - 1;
        Some(self.word_idx as u64 * 64 + u64::from(bit))
    }
}

impl<'a> IntoIterator for &'a CoverageMap {
    type Item = u64;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Owning iteration (drains nothing; blocks are `Copy`).
pub struct IntoIter {
    words: Vec<u64>,
    word_idx: usize,
    current: u64,
}

impl Iterator for IntoIter {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        while self.current == 0 {
            self.word_idx += 1;
            self.current = *self.words.get(self.word_idx)?;
        }
        let bit = self.current.trailing_zeros();
        self.current &= self.current - 1;
        Some(self.word_idx as u64 * 64 + u64::from(bit))
    }
}

impl IntoIterator for CoverageMap {
    type Item = u64;
    type IntoIter = IntoIter;

    fn into_iter(self) -> IntoIter {
        let current = self.words.first().copied().unwrap_or(0);
        IntoIter {
            words: self.words,
            word_idx: 0,
            current,
        }
    }
}

impl Extend<u64> for CoverageMap {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for b in iter {
            self.insert(b);
        }
    }
}

impl FromIterator<u64> for CoverageMap {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> CoverageMap {
        let mut m = CoverageMap::new();
        m.extend(iter);
        m
    }
}

impl From<&BTreeSet<u64>> for CoverageMap {
    fn from(set: &BTreeSet<u64>) -> CoverageMap {
        set.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_len() {
        let mut m = CoverageMap::new();
        assert!(m.is_empty());
        assert!(m.insert(4096));
        assert!(!m.insert(4096));
        assert!(m.insert(0));
        assert!(m.insert(63));
        assert!(m.insert(64));
        assert_eq!(m.len(), 4);
        assert!(m.contains(63));
        assert!(!m.contains(62));
        assert!(!m.contains(1 << 20));
    }

    #[test]
    fn merge_counts_new_blocks_only() {
        let a: CoverageMap = [1u64, 2, 3].into_iter().collect();
        let b: CoverageMap = [3u64, 4, 200].into_iter().collect();
        let mut m = a.clone();
        assert_eq!(m.new_blocks_in(&b), 2);
        assert_eq!(m.merge(&b), 2);
        assert_eq!(m.len(), 5);
        assert_eq!(m.merge(&b), 0);
        // Merge in the opposite order gives the same set.
        let mut n = b.clone();
        n.merge(&a);
        assert_eq!(m, n);
    }

    #[test]
    fn equality_ignores_trailing_zero_words() {
        let mut a = CoverageMap::new();
        a.insert(5);
        let mut b = CoverageMap::new();
        b.insert(5);
        b.insert(100_000);
        // Force trailing zeros by a merge that adds nothing new there.
        let mut c = a.clone();
        c.merge(&b);
        assert_ne!(a, b);
        assert_eq!(c.len(), 2);
        // a vs a-with-capacity.
        let mut big = CoverageMap::with_capacity(1 << 16);
        big.insert(5);
        assert_eq!(a, big);
    }

    #[test]
    fn iteration_is_sorted_and_lazy_views_match() {
        let blocks = [4096u64, 4097, 8192, 64, 0, 12345];
        let m: CoverageMap = blocks.into_iter().collect();
        let got: Vec<u64> = m.iter().collect();
        let mut want = blocks.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
        assert_eq!(m.to_btree_set(), want.iter().copied().collect());
        let owned: Vec<u64> = m.clone().into_iter().collect();
        assert_eq!(owned, want);
    }

    #[test]
    fn diff_in_and_merge_diff_agree_with_set_difference() {
        let a: CoverageMap = [1u64, 2, 3, 200].into_iter().collect();
        let b: CoverageMap = [3u64, 4, 200, 9000].into_iter().collect();
        let want: CoverageMap = [4u64, 9000].into_iter().collect();
        // Non-mutating diff.
        let d = a.diff_in(&b);
        assert_eq!(d, want);
        assert_eq!(d.len(), 2);
        assert_eq!(a.len(), 4, "diff_in must not modify the receiver");
        // One-pass merge + diff.
        let mut m = a.clone();
        let delta = m.merge_diff(&b);
        assert_eq!(delta, want);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(m, merged);
        // Re-merging contributes nothing.
        assert!(m.merge_diff(&b).is_empty());
        // Diff against an empty receiver is the whole input.
        assert_eq!(CoverageMap::new().diff_in(&b), b);
    }

    #[test]
    fn words_round_trip_restores_equal_maps() {
        let m: CoverageMap = [0u64, 63, 64, 4096, 12345].into_iter().collect();
        let restored = CoverageMap::from_words(m.words().to_vec());
        assert_eq!(m, restored);
        assert_eq!(m.len(), restored.len());
        // Trailing zero words survive the round trip as noise only.
        let mut padded = m.words().to_vec();
        padded.extend([0u64; 7]);
        assert_eq!(CoverageMap::from_words(padded), m);
        assert_eq!(CoverageMap::from_words(Vec::new()), CoverageMap::new());
    }

    #[test]
    fn disjointness() {
        let a: CoverageMap = [4096u64, 4097].into_iter().collect();
        let b: CoverageMap = [8192u64].into_iter().collect();
        let c: CoverageMap = [4097u64].into_iter().collect();
        assert!(a.is_disjoint(&b));
        assert!(!a.is_disjoint(&c));
        assert!(a.is_disjoint(&CoverageMap::new()));
    }

    /// Tiny deterministic word stream for the randomized diff tests
    /// (xorshift64*; no external RNG dependency in this crate).
    struct TestRng(u64);

    impl TestRng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    fn random_map(rng: &mut TestRng, blocks: usize, universe: u64) -> CoverageMap {
        (0..blocks).map(|_| rng.next() % universe).collect()
    }

    #[test]
    fn word_diff_round_trips_on_random_maps() {
        let mut rng = TestRng(0x5EED);
        for case in 0..50 {
            let base = random_map(&mut rng, 40, 4096);
            let mut new = base.clone();
            new.merge(&random_map(&mut rng, (case % 7) * 3, 4096));
            let diff = new.diff_words_since(&base);
            assert_eq!(base.apply_word_diff(&diff), new, "case {case}");
        }
        // Shrinkage (base has blocks the new map lacks) is also
        // representable: the diff writes the vanished words back to
        // zero (or falls back to dense).
        let base = random_map(&mut rng, 60, 4096);
        let new = random_map(&mut rng, 10, 4096);
        assert_eq!(base.apply_word_diff(&new.diff_words_since(&base)), new);
    }

    #[test]
    fn word_diff_of_equal_maps_is_empty() {
        let m = random_map(&mut TestRng(7), 30, 2048);
        let diff = m.diff_words_since(&m);
        assert!(diff.is_empty());
        assert_eq!(diff, CoverageWordDiff::Sparse(Vec::new()));
        assert_eq!(m.apply_word_diff(&diff), m);
        // Trailing zero words are representation noise, not a diff.
        let mut padded_words = m.words().to_vec();
        padded_words.extend([0u64; 9]);
        let padded = CoverageMap::from_words(padded_words);
        assert!(m.diff_words_since(&padded).is_empty());
        assert!(padded.diff_words_since(&m).is_empty());
    }

    #[test]
    fn word_diff_falls_back_to_dense_when_the_diff_is_large() {
        // Every word changes: sparse would pay a run header on top of
        // the words, so the diff must be the dense bitmap.
        let base = CoverageMap::new();
        let new: CoverageMap = (0..4096u64).step_by(64).collect(); // one bit per word
        let diff = new.diff_words_since(&base);
        assert!(matches!(diff, CoverageWordDiff::Dense(_)), "{diff:?}");
        assert_eq!(base.apply_word_diff(&diff), new);
        // A handful of changed words in a big map stays sparse, and a
        // consecutive cluster collapses into one run.
        let big: CoverageMap = (0..100_000u64).step_by(64).collect();
        let mut grown = big.clone();
        grown.insert(640_001);
        grown.insert(640_070);
        grown.insert(640_130);
        let diff = grown.diff_words_since(&big);
        match &diff {
            CoverageWordDiff::Sparse(runs) => {
                assert_eq!(runs.len(), 1, "consecutive words must share a run");
                assert_eq!(runs[0].0, 10_000);
                assert_eq!(runs[0].1.len(), 3);
            }
            CoverageWordDiff::Dense(_) => panic!("small diff must stay sparse"),
        }
        assert!(diff.encoded_bytes() < CoverageWordDiff::dense_bytes(grown.words().len()));
        assert_eq!(big.apply_word_diff(&diff), grown);
    }

    #[test]
    fn word_diff_agrees_with_diff_in_and_merge_diff_on_random_maps() {
        let mut rng = TestRng(0xD1FF);
        for case in 0..30 {
            let base = random_map(&mut rng, 50, 8192);
            let observed = random_map(&mut rng, 25, 8192);
            // The campaign's two growth paths: diff_in + merge, and
            // one-pass merge_diff. Both must land on the same map the
            // word diff reconstructs.
            let contributed = base.diff_in(&observed);
            let mut via_merge = base.clone();
            via_merge.merge(&contributed);
            let mut via_merge_diff = base.clone();
            let contributed2 = via_merge_diff.merge_diff(&observed);
            assert_eq!(contributed, contributed2, "case {case}");
            assert_eq!(via_merge, via_merge_diff, "case {case}");
            let diff = via_merge.diff_words_since(&base);
            assert_eq!(base.apply_word_diff(&diff), via_merge, "case {case}");
            assert_eq!(
                base.apply_word_diff(&diff).len(),
                base.len() + contributed.len(),
                "case {case}: grown count must be base plus contribution"
            );
        }
    }

    #[test]
    fn clear_retains_nothing_logically() {
        let mut m: CoverageMap = [1u64, 2, 3].into_iter().collect();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m, CoverageMap::new());
        assert!(m.insert(2));
    }
}
