//! Dense coverage bitmap.
//!
//! Basic-block ids are small dense integers by construction — handler
//! `i` owns the stratum `[(i+1)·4096, (i+2)·4096)` — so a word-array
//! bitmap beats a `BTreeSet<u64>` on every hot operation: insert is
//! one or-and-test, union is a word-wise `|` over `O(words)`, and the
//! distinct-block count is maintained incrementally instead of being
//! recomputed. The set view ([`CoverageMap::to_btree_set`]) is kept
//! for reports and serialization compatibility; iteration is lazy and
//! ascending, so existing `BTreeSet`-shaped consumers keep working
//! through [`Extend`]/[`FromIterator`].

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A set of covered basic-block ids, stored as a dense bitmap.
#[derive(Clone, Default, Serialize, Deserialize)]
pub struct CoverageMap {
    /// Bit `b` of `words[w]` set ⇔ block `w * 64 + b` covered.
    words: Vec<u64>,
    /// Number of set bits, maintained incrementally.
    count: usize,
}

impl CoverageMap {
    /// Empty map.
    #[must_use]
    pub fn new() -> CoverageMap {
        CoverageMap::default()
    }

    /// Empty map with room for block ids below `max_block` without
    /// reallocation.
    #[must_use]
    pub fn with_capacity(max_block: u64) -> CoverageMap {
        CoverageMap {
            words: Vec::with_capacity((max_block / 64 + 1) as usize),
            count: 0,
        }
    }

    /// Insert a block id. Returns `true` if it was newly covered.
    pub fn insert(&mut self, block: u64) -> bool {
        let (w, bit) = (block as usize / 64, 1u64 << (block % 64));
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let newly = self.words[w] & bit == 0;
        self.words[w] |= bit;
        self.count += usize::from(newly);
        newly
    }

    /// Whether a block is covered.
    #[must_use]
    pub fn contains(&self, block: u64) -> bool {
        self.words
            .get(block as usize / 64)
            .is_some_and(|w| w & (1 << (block % 64)) != 0)
    }

    /// Number of distinct covered blocks. O(1).
    #[must_use]
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether no block is covered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Remove every block, retaining the allocation (hot-loop reuse).
    pub fn clear(&mut self) {
        self.words.clear();
        self.count = 0;
    }

    /// Union `other` into `self`, word-wise. Returns the number of
    /// newly covered blocks. Commutative in effect: merge order never
    /// changes the resulting set.
    pub fn merge(&mut self, other: &CoverageMap) -> usize {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut newly = 0usize;
        for (dst, src) in self.words.iter_mut().zip(&other.words) {
            let add = *src & !*dst;
            newly += add.count_ones() as usize;
            *dst |= add;
        }
        self.count += newly;
        newly
    }

    /// Number of blocks in `other` not covered by `self`, without
    /// modifying either (the coverage-guided "is this input
    /// interesting" test).
    #[must_use]
    pub fn new_blocks_in(&self, other: &CoverageMap) -> usize {
        let mut n = 0usize;
        for (i, src) in other.words.iter().enumerate() {
            let dst = self.words.get(i).copied().unwrap_or(0);
            n += (src & !dst).count_ones() as usize;
        }
        n
    }

    /// The blocks of `other` not covered by `self`, as a new map —
    /// the per-entry "coverage contributed" key of a corpus seed.
    /// Allocates; guard hot paths with [`CoverageMap::new_blocks_in`]
    /// first when the diff is usually empty.
    #[must_use]
    pub fn diff_in(&self, other: &CoverageMap) -> CoverageMap {
        let mut words = vec![0u64; other.words.len()];
        let mut count = 0usize;
        for (i, src) in other.words.iter().enumerate() {
            let dst = self.words.get(i).copied().unwrap_or(0);
            let add = src & !dst;
            words[i] = add;
            count += add.count_ones() as usize;
        }
        CoverageMap { words, count }
    }

    /// Union `other` into `self` and return the contributed delta as
    /// its own map, in one pass. Equivalent to [`CoverageMap::diff_in`]
    /// followed by [`CoverageMap::merge`].
    pub fn merge_diff(&mut self, other: &CoverageMap) -> CoverageMap {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut words = vec![0u64; other.words.len()];
        let mut count = 0usize;
        for (i, src) in other.words.iter().enumerate() {
            let add = src & !self.words[i];
            words[i] = add;
            count += add.count_ones() as usize;
            self.words[i] |= add;
        }
        self.count += count;
        CoverageMap { words, count }
    }

    /// Whether the two maps share no block.
    #[must_use]
    pub fn is_disjoint(&self, other: &CoverageMap) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Lazy ascending iteration over covered block ids.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Sorted-set view, for reports and serialized artifacts that
    /// predate the bitmap representation.
    #[must_use]
    pub fn to_btree_set(&self) -> BTreeSet<u64> {
        self.iter().collect()
    }

    /// The raw bitmap words (bit `b` of word `w` set ⇔ block
    /// `w * 64 + b` covered) — the checkpoint serialization view.
    /// Trailing zero words may be present; they are representation
    /// noise (equality ignores them) and may be dropped by writers.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild a map from raw bitmap words previously obtained via
    /// [`CoverageMap::words`]. The distinct-block count is recomputed
    /// from the words, so a writer that trimmed (or kept) trailing
    /// zero words restores to a map equal to the original.
    #[must_use]
    pub fn from_words(words: Vec<u64>) -> CoverageMap {
        let count = words.iter().map(|w| w.count_ones() as usize).sum();
        CoverageMap { words, count }
    }
}

impl PartialEq for CoverageMap {
    fn eq(&self, other: &CoverageMap) -> bool {
        if self.count != other.count {
            return false;
        }
        // Trailing zero words are representation noise, not content.
        let common = self.words.len().min(other.words.len());
        self.words[..common] == other.words[..common]
            && self.words[common..].iter().all(|w| *w == 0)
            && other.words[common..].iter().all(|w| *w == 0)
    }
}

impl Eq for CoverageMap {}

impl fmt::Debug for CoverageMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Lazy iterator over set bits, ascending.
pub struct Iter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        while self.current == 0 {
            self.word_idx += 1;
            self.current = *self.words.get(self.word_idx)?;
        }
        let bit = self.current.trailing_zeros();
        self.current &= self.current - 1;
        Some(self.word_idx as u64 * 64 + u64::from(bit))
    }
}

impl<'a> IntoIterator for &'a CoverageMap {
    type Item = u64;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Owning iteration (drains nothing; blocks are `Copy`).
pub struct IntoIter {
    words: Vec<u64>,
    word_idx: usize,
    current: u64,
}

impl Iterator for IntoIter {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        while self.current == 0 {
            self.word_idx += 1;
            self.current = *self.words.get(self.word_idx)?;
        }
        let bit = self.current.trailing_zeros();
        self.current &= self.current - 1;
        Some(self.word_idx as u64 * 64 + u64::from(bit))
    }
}

impl IntoIterator for CoverageMap {
    type Item = u64;
    type IntoIter = IntoIter;

    fn into_iter(self) -> IntoIter {
        let current = self.words.first().copied().unwrap_or(0);
        IntoIter {
            words: self.words,
            word_idx: 0,
            current,
        }
    }
}

impl Extend<u64> for CoverageMap {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for b in iter {
            self.insert(b);
        }
    }
}

impl FromIterator<u64> for CoverageMap {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> CoverageMap {
        let mut m = CoverageMap::new();
        m.extend(iter);
        m
    }
}

impl From<&BTreeSet<u64>> for CoverageMap {
    fn from(set: &BTreeSet<u64>) -> CoverageMap {
        set.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_len() {
        let mut m = CoverageMap::new();
        assert!(m.is_empty());
        assert!(m.insert(4096));
        assert!(!m.insert(4096));
        assert!(m.insert(0));
        assert!(m.insert(63));
        assert!(m.insert(64));
        assert_eq!(m.len(), 4);
        assert!(m.contains(63));
        assert!(!m.contains(62));
        assert!(!m.contains(1 << 20));
    }

    #[test]
    fn merge_counts_new_blocks_only() {
        let a: CoverageMap = [1u64, 2, 3].into_iter().collect();
        let b: CoverageMap = [3u64, 4, 200].into_iter().collect();
        let mut m = a.clone();
        assert_eq!(m.new_blocks_in(&b), 2);
        assert_eq!(m.merge(&b), 2);
        assert_eq!(m.len(), 5);
        assert_eq!(m.merge(&b), 0);
        // Merge in the opposite order gives the same set.
        let mut n = b.clone();
        n.merge(&a);
        assert_eq!(m, n);
    }

    #[test]
    fn equality_ignores_trailing_zero_words() {
        let mut a = CoverageMap::new();
        a.insert(5);
        let mut b = CoverageMap::new();
        b.insert(5);
        b.insert(100_000);
        // Force trailing zeros by a merge that adds nothing new there.
        let mut c = a.clone();
        c.merge(&b);
        assert_ne!(a, b);
        assert_eq!(c.len(), 2);
        // a vs a-with-capacity.
        let mut big = CoverageMap::with_capacity(1 << 16);
        big.insert(5);
        assert_eq!(a, big);
    }

    #[test]
    fn iteration_is_sorted_and_lazy_views_match() {
        let blocks = [4096u64, 4097, 8192, 64, 0, 12345];
        let m: CoverageMap = blocks.into_iter().collect();
        let got: Vec<u64> = m.iter().collect();
        let mut want = blocks.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
        assert_eq!(m.to_btree_set(), want.iter().copied().collect());
        let owned: Vec<u64> = m.clone().into_iter().collect();
        assert_eq!(owned, want);
    }

    #[test]
    fn diff_in_and_merge_diff_agree_with_set_difference() {
        let a: CoverageMap = [1u64, 2, 3, 200].into_iter().collect();
        let b: CoverageMap = [3u64, 4, 200, 9000].into_iter().collect();
        let want: CoverageMap = [4u64, 9000].into_iter().collect();
        // Non-mutating diff.
        let d = a.diff_in(&b);
        assert_eq!(d, want);
        assert_eq!(d.len(), 2);
        assert_eq!(a.len(), 4, "diff_in must not modify the receiver");
        // One-pass merge + diff.
        let mut m = a.clone();
        let delta = m.merge_diff(&b);
        assert_eq!(delta, want);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(m, merged);
        // Re-merging contributes nothing.
        assert!(m.merge_diff(&b).is_empty());
        // Diff against an empty receiver is the whole input.
        assert_eq!(CoverageMap::new().diff_in(&b), b);
    }

    #[test]
    fn words_round_trip_restores_equal_maps() {
        let m: CoverageMap = [0u64, 63, 64, 4096, 12345].into_iter().collect();
        let restored = CoverageMap::from_words(m.words().to_vec());
        assert_eq!(m, restored);
        assert_eq!(m.len(), restored.len());
        // Trailing zero words survive the round trip as noise only.
        let mut padded = m.words().to_vec();
        padded.extend([0u64; 7]);
        assert_eq!(CoverageMap::from_words(padded), m);
        assert_eq!(CoverageMap::from_words(Vec::new()), CoverageMap::new());
    }

    #[test]
    fn disjointness() {
        let a: CoverageMap = [4096u64, 4097].into_iter().collect();
        let b: CoverageMap = [8192u64].into_iter().collect();
        let c: CoverageMap = [4097u64].into_iter().collect();
        assert!(a.is_disjoint(&b));
        assert!(!a.is_disjoint(&c));
        assert!(a.is_disjoint(&CoverageMap::new()));
    }

    #[test]
    fn clear_retains_nothing_logically() {
        let mut m: CoverageMap = [1u64, 2, 3].into_iter().collect();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m, CoverageMap::new());
        assert!(m.insert(2));
    }
}
