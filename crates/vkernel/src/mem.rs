//! Userspace memory image passed to the virtual kernel.

use std::collections::BTreeMap;

/// Sparse byte map: the fuzzer's encoder allocates segments, the kernel
/// reads them (`copy_from_user`).
#[derive(Debug, Clone, Default)]
pub struct MemMap {
    segments: BTreeMap<u64, Vec<u8>>,
}

impl MemMap {
    /// Empty map.
    #[must_use]
    pub fn new() -> MemMap {
        MemMap::default()
    }

    /// Build from `(address, bytes)` segments (encoder output).
    #[must_use]
    pub fn from_segments(segments: Vec<(u64, Vec<u8>)>) -> MemMap {
        let mut m = MemMap::new();
        for (addr, bytes) in segments {
            m.write(addr, bytes);
        }
        m
    }

    /// Install bytes at an address (overwrites overlaps segment-wise).
    pub fn write(&mut self, addr: u64, bytes: Vec<u8>) {
        self.segments.insert(addr, bytes);
    }

    /// Read `len` bytes at `addr`, possibly spanning adjacent segments.
    /// Returns `None` (an `EFAULT`) if any byte is unmapped.
    #[must_use]
    pub fn read(&self, addr: u64, len: usize) -> Option<Vec<u8>> {
        if len == 0 {
            return Some(Vec::new());
        }
        let mut out = Vec::with_capacity(len);
        let mut cur = addr;
        let end = addr.checked_add(len as u64)?;
        while cur < end {
            let (seg_start, seg) = self.segments.range(..=cur).next_back()?;
            let off = usize::try_from(cur - seg_start).ok()?;
            if off >= seg.len() {
                return None;
            }
            let take = (seg.len() - off).min((end - cur) as usize);
            out.extend_from_slice(&seg[off..off + take]);
            cur += take as u64;
        }
        Some(out)
    }

    /// Read a NUL-terminated string of at most `max` bytes.
    #[must_use]
    pub fn read_cstring(&self, addr: u64, max: usize) -> Option<String> {
        // Strings may be shorter than their segment; scan byte-wise.
        let mut out = Vec::new();
        for i in 0..max {
            match self.read(addr + i as u64, 1) {
                Some(b) if b[0] == 0 => return String::from_utf8(out).ok(),
                Some(b) => out.push(b[0]),
                // Segment ended without a NUL: exact-size allocations
                // terminate at the mapping boundary.
                None => break,
            }
        }
        if out.is_empty() {
            return None; // truly unmapped pointer → EFAULT
        }
        String::from_utf8(out).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_within_segment() {
        let mut m = MemMap::new();
        m.write(0x1000, vec![1, 2, 3, 4]);
        assert_eq!(m.read(0x1000, 4), Some(vec![1, 2, 3, 4]));
        assert_eq!(m.read(0x1001, 2), Some(vec![2, 3]));
        assert_eq!(m.read(0x1003, 2), None); // runs past the end
        assert_eq!(m.read(0x2000, 1), None);
    }

    #[test]
    fn read_spans_adjacent_segments() {
        let mut m = MemMap::new();
        m.write(0x1000, vec![1, 2]);
        m.write(0x1002, vec![3, 4]);
        assert_eq!(m.read(0x1000, 4), Some(vec![1, 2, 3, 4]));
    }

    #[test]
    fn cstring_reads_to_nul() {
        let mut m = MemMap::new();
        m.write(0x1000, b"/dev/x\0garbage".to_vec());
        assert_eq!(m.read_cstring(0x1000, 64), Some("/dev/x".to_string()));
    }

    #[test]
    fn cstring_unterminated_at_segment_end() {
        let mut m = MemMap::new();
        m.write(0x1000, b"/dev/x".to_vec());
        assert_eq!(m.read_cstring(0x1000, 64), Some("/dev/x".to_string()));
    }

    #[test]
    fn zero_len_read_ok() {
        let m = MemMap::new();
        assert_eq!(m.read(0x1000, 0), Some(vec![]));
    }
}
