//! Userspace memory image passed to the virtual kernel.

/// Sparse byte map: the fuzzer's encoder allocates segments, the kernel
/// reads them (`copy_from_user`).
///
/// Segments are kept in a flat vector sorted by start address, so the
/// hot lookup ("greatest segment start ≤ addr") is a binary search
/// with no per-call allocation — the encoder already emits segments in
/// ascending address order, which [`MemMap::load`] exploits to rebuild
/// an image from a finished encoder without sorting or copying bytes.
#[derive(Debug, Clone, Default)]
pub struct MemMap {
    /// `(start, bytes)`, sorted ascending by start, unique starts.
    segments: Vec<(u64, Vec<u8>)>,
}

impl MemMap {
    /// Empty map.
    #[must_use]
    pub fn new() -> MemMap {
        MemMap::default()
    }

    /// Build from `(address, bytes)` segments (encoder output). Later
    /// entries replace earlier ones with the same start address.
    #[must_use]
    pub fn from_segments(segments: Vec<(u64, Vec<u8>)>) -> MemMap {
        let mut m = MemMap::new();
        for (addr, bytes) in segments {
            m.write(addr, bytes);
        }
        m
    }

    /// Install bytes at an address (overwrites overlaps segment-wise).
    pub fn write(&mut self, addr: u64, bytes: Vec<u8>) {
        match self.segments.binary_search_by_key(&addr, |s| s.0) {
            Ok(i) => self.segments[i].1 = bytes,
            Err(i) => self.segments.insert(i, (addr, bytes)),
        }
    }

    /// Replace the whole image with already-sorted segments, swapping
    /// vectors so the previous storage flows back to the caller for
    /// recycling. Falls back to sorting if the input is unordered.
    pub fn load(&mut self, segments: &mut Vec<(u64, Vec<u8>)>) {
        std::mem::swap(&mut self.segments, segments);
        if !self.segments.windows(2).all(|w| w[0].0 < w[1].0) {
            self.segments.sort_by_key(|s| s.0);
            self.segments.dedup_by(|later, kept| {
                if later.0 == kept.0 {
                    // Last write wins, as with repeated `write`s.
                    std::mem::swap(&mut kept.1, &mut later.1);
                    true
                } else {
                    false
                }
            });
        }
    }

    /// Drop every segment, retaining storage.
    pub fn clear(&mut self) {
        self.segments.clear();
    }

    /// Index of the segment with the greatest start ≤ `addr`.
    fn seg_at_or_before(&self, addr: u64) -> Option<usize> {
        let i = self.segments.partition_point(|s| s.0 <= addr);
        i.checked_sub(1)
    }

    /// Read `len` bytes at `addr` into `out` (cleared first), possibly
    /// spanning adjacent segments. Returns `false` (an `EFAULT`) if
    /// any byte is unmapped; `out` contents are unspecified then.
    pub fn read_into(&self, addr: u64, len: usize, out: &mut Vec<u8>) -> bool {
        out.clear();
        if len == 0 {
            return true;
        }
        let mut cur = addr;
        let Some(end) = addr.checked_add(len as u64) else {
            return false;
        };
        while cur < end {
            let Some(i) = self.seg_at_or_before(cur) else {
                return false;
            };
            let (seg_start, seg) = &self.segments[i];
            let Ok(off) = usize::try_from(cur - seg_start) else {
                return false;
            };
            if off >= seg.len() {
                return false;
            }
            let take = (seg.len() - off).min((end - cur) as usize);
            out.extend_from_slice(&seg[off..off + take]);
            cur += take as u64;
        }
        true
    }

    /// Borrow `len` bytes at `addr` without copying, when the whole
    /// range lies inside one segment (the common case: the encoder
    /// emits each struct argument as a single segment). Returns `None`
    /// when the range crosses a segment boundary or is unmapped —
    /// callers fall back to the copying [`MemMap::read_into`], which
    /// also distinguishes those two cases.
    #[must_use]
    pub fn slice_at(&self, addr: u64, len: usize) -> Option<&[u8]> {
        if len == 0 {
            return Some(&[]);
        }
        let i = self.seg_at_or_before(addr)?;
        let (seg_start, seg) = &self.segments[i];
        let off = usize::try_from(addr - seg_start).ok()?;
        let end = off.checked_add(len)?;
        seg.get(off..end)
    }

    /// Read `len` bytes at `addr`, possibly spanning adjacent segments.
    /// Returns `None` (an `EFAULT`) if any byte is unmapped.
    #[must_use]
    pub fn read(&self, addr: u64, len: usize) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(len);
        self.read_into(addr, len, &mut out).then_some(out)
    }

    /// Whether `len` bytes at `addr` are fully mapped (readability
    /// probe without materializing the bytes).
    #[must_use]
    pub fn is_mapped(&self, addr: u64, len: usize) -> bool {
        if len == 0 {
            return true;
        }
        let mut cur = addr;
        let Some(end) = addr.checked_add(len as u64) else {
            return false;
        };
        while cur < end {
            let Some(i) = self.seg_at_or_before(cur) else {
                return false;
            };
            let (seg_start, seg) = &self.segments[i];
            let Ok(off) = usize::try_from(cur - seg_start) else {
                return false;
            };
            if off >= seg.len() {
                return false;
            }
            cur += (seg.len() - off).min((end - cur) as usize) as u64;
        }
        true
    }

    /// The single byte at `addr`, if mapped.
    #[must_use]
    pub fn byte_at(&self, addr: u64) -> Option<u8> {
        let i = self.seg_at_or_before(addr)?;
        let (seg_start, seg) = &self.segments[i];
        seg.get(usize::try_from(addr - seg_start).ok()?).copied()
    }

    /// Read a NUL-terminated string of at most `max` bytes.
    #[must_use]
    pub fn read_cstring(&self, addr: u64, max: usize) -> Option<String> {
        // Strings may be shorter than their segment; scan byte-wise.
        let mut out = Vec::new();
        for i in 0..max {
            match self.byte_at(addr + i as u64) {
                Some(0) => return String::from_utf8(out).ok(),
                Some(b) => out.push(b),
                // Segment ended without a NUL: exact-size allocations
                // terminate at the mapping boundary.
                None => break,
            }
        }
        if out.is_empty() {
            return None; // truly unmapped pointer → EFAULT
        }
        String::from_utf8(out).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_within_segment() {
        let mut m = MemMap::new();
        m.write(0x1000, vec![1, 2, 3, 4]);
        assert_eq!(m.read(0x1000, 4), Some(vec![1, 2, 3, 4]));
        assert_eq!(m.read(0x1001, 2), Some(vec![2, 3]));
        assert_eq!(m.read(0x1003, 2), None); // runs past the end
        assert_eq!(m.read(0x2000, 1), None);
        assert!(m.is_mapped(0x1000, 4));
        assert!(!m.is_mapped(0x1003, 2));
        assert_eq!(m.byte_at(0x1002), Some(3));
        assert_eq!(m.byte_at(0x0fff), None);
    }

    #[test]
    fn read_spans_adjacent_segments() {
        let mut m = MemMap::new();
        m.write(0x1000, vec![1, 2]);
        m.write(0x1002, vec![3, 4]);
        assert_eq!(m.read(0x1000, 4), Some(vec![1, 2, 3, 4]));
    }

    #[test]
    fn slice_at_borrows_within_one_segment_only() {
        let mut m = MemMap::new();
        m.write(0x1000, vec![1, 2, 3, 4]);
        m.write(0x1004, vec![5, 6]);
        assert_eq!(m.slice_at(0x1000, 4), Some(&[1, 2, 3, 4][..]));
        assert_eq!(m.slice_at(0x1001, 2), Some(&[2, 3][..]));
        assert_eq!(m.slice_at(0x1000, 0), Some(&[][..]));
        // Crossing the boundary is readable (read spans) but not
        // borrowable — the caller must take the copy path.
        assert_eq!(m.read(0x1002, 4), Some(vec![3, 4, 5, 6]));
        assert_eq!(m.slice_at(0x1002, 4), None);
        // Unmapped or overflowing ranges are never borrowable.
        assert_eq!(m.slice_at(0x2000, 1), None);
        assert_eq!(m.slice_at(u64::MAX, 2), None);
        assert_eq!(m.slice_at(0x1000, usize::MAX), None);
    }

    #[test]
    fn write_same_addr_replaces() {
        let mut m = MemMap::new();
        m.write(0x1000, vec![1, 2]);
        m.write(0x1000, vec![9]);
        assert_eq!(m.read(0x1000, 1), Some(vec![9]));
        assert_eq!(m.read(0x1001, 1), None);
    }

    #[test]
    fn load_swaps_storage_and_sorts_if_needed() {
        let mut m = MemMap::new();
        let mut segs = vec![(0x2000u64, vec![3u8]), (0x1000, vec![1, 2])];
        m.load(&mut segs);
        assert!(segs.is_empty());
        assert_eq!(m.read(0x1000, 2), Some(vec![1, 2]));
        assert_eq!(m.read(0x2000, 1), Some(vec![3]));
        // Ascending input takes the no-sort path.
        let mut sorted = vec![(0x10u64, vec![7u8]), (0x20, vec![8u8])];
        m.load(&mut sorted);
        assert_eq!(m.byte_at(0x20), Some(8));
        // Previous storage flowed back for reuse.
        assert_eq!(sorted.len(), 2);
    }

    #[test]
    fn cstring_reads_to_nul() {
        let mut m = MemMap::new();
        m.write(0x1000, b"/dev/x\0garbage".to_vec());
        assert_eq!(m.read_cstring(0x1000, 64), Some("/dev/x".to_string()));
    }

    #[test]
    fn cstring_unterminated_at_segment_end() {
        let mut m = MemMap::new();
        m.write(0x1000, b"/dev/x".to_vec());
        assert_eq!(m.read_cstring(0x1000, 64), Some("/dev/x".to_string()));
    }

    #[test]
    fn zero_len_read_ok() {
        let m = MemMap::new();
        assert_eq!(m.read(0x1000, 0), Some(vec![]));
        assert!(m.is_mapped(0x1000, 0));
    }
}
