//! # kgpt-vkernel
//!
//! The virtual kernel under test — the substitute for the paper's
//! Linux 6.7 + QEMU testbed.
//!
//! [`VKernel`] interprets the same [`Blueprint`]s the synthetic source
//! corpus was emitted from, so the kernel's runtime behaviour matches
//! the C text the analyzers read, byte for byte:
//!
//! * `openat` succeeds only on the registered device path;
//! * `ioctl` matches the full encoded command value (with `_IOC_NR`
//!   transforms validating the magic byte, so "wrong CMD value" specs
//!   fail exactly as SyzDescribe's do in the paper);
//! * struct arguments are decoded at their true C offsets and every
//!   semantic field role is enforced (`EINVAL` on range/magic/flag
//!   violations, resource-id validation, state-machine ordering);
//! * coverage is recorded as basic-block ids in a dense
//!   [`CoverageMap`], deeper blocks gated on semantic validity — so
//!   better specs measurably reach more blocks;
//! * the 24 injected bugs of Table 4 fire on their trigger conditions
//!   and produce crash reports with the paper's titles, each carrying
//!   a dense, spec-independent [`CrashSignature`] (faulting [`Sysno`],
//!   resource-chain depth of the fd, [`SanitizerKind`], faulting
//!   block) that the crash-triage subsystem dedups and minimizes on.
//!
//! The kernel itself is immutable after [`VKernel::boot`] and carries
//! no interior mutability, so one booted instance can be shared by
//! reference across any number of fuzzing worker threads (`VKernel:
//! Sync` is asserted at compile time); all mutable execution state
//! lives in the per-worker [`VmState`]. The dispatch path is
//! allocation-free: targets are pre-indexed by integer id, fd records
//! reference their handler by index, and per-command history is kept
//! in interned counters rather than string maps. Struct-argument
//! decode (`copy_from_user`) borrows the bytes directly from the
//! memory image when the read stays inside one segment, copying into
//! the amortized decode buffer only for segment-crossing reads.

pub mod coverage;
pub mod mem;

pub use coverage::{CoverageMap, CoverageWordDiff};
pub use mem::MemMap;

use kgpt_csrc::blueprint::{
    ArgKind, Blueprint, BlueprintKind, CmdBlueprint, CmdEffect, CmdTransform, FieldRole, SockCall,
    Trigger,
};
use kgpt_csrc::cmacro;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Compile-time proof that a booted kernel can be shared across
/// fuzzing threads by reference.
const _: () = {
    const fn assert_sync_send<T: Sync + Send>() {}
    assert_sync_send::<VKernel>();
};

/// Linux errno values used by the virtual kernel.
pub mod errno {
    /// No such file or directory.
    pub const ENOENT: i64 = 2;
    /// Bad file descriptor.
    pub const EBADF: i64 = 9;
    /// Bad address.
    pub const EFAULT: i64 = 14;
    /// Out of memory (returned for fuel-exhausted executions: the
    /// virtual analogue of the kernel refusing further work).
    pub const ENOMEM: i64 = 12;
    /// Device or resource busy.
    pub const EBUSY: i64 = 16;
    /// Invalid argument.
    pub const EINVAL: i64 = 22;
    /// Inappropriate ioctl for device.
    pub const ENOTTY: i64 = 25;
    /// Protocol not available.
    pub const ENOPROTOOPT: i64 = 92;
    /// Protocol not supported.
    pub const EPROTONOSUPPORT: i64 = 93;
    /// Socket type not supported.
    pub const ESOCKTNOSUPPORT: i64 = 94;
    /// Address family not supported.
    pub const EAFNOSUPPORT: i64 = 97;
}

/// Dense syscall number for kernel dispatch — the virtual kernel's
/// analogue of the syscall table. The fuzzer's lowered IR resolves
/// each spec syscall's base name to a `Sysno` once at scratch
/// construction ([`Sysno::from_base`]), so the per-exec
/// [`VKernel::exec_call`] dispatch is a jump on a dense enum with no
/// string comparison. `Ord` follows declaration order; it exists so
/// [`CrashSignature`]s (which embed the faulting `Sysno`) can key
/// sorted triage maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Sysno {
    /// `openat(dirfd, path, flags, mode)`.
    Openat,
    /// `open(path, flags, mode)`.
    Open,
    /// `socket(family, type, proto)`.
    Socket,
    /// `ioctl(fd, cmd, arg)`.
    Ioctl,
    /// `setsockopt(fd, level, opt, val, len)`.
    Setsockopt,
    /// `getsockopt(fd, level, opt, val, len)`.
    Getsockopt,
    /// `bind(fd, addr, len)`.
    Bind,
    /// `connect(fd, addr, len)`.
    Connect,
    /// `accept(fd, ...)`.
    Accept,
    /// `sendto(fd, buf, len, ...)`.
    Sendto,
    /// `recvfrom(fd, ...)`.
    Recvfrom,
    /// `read(fd, ...)`.
    Read,
    /// `write(fd, ...)`.
    Write,
    /// `close(fd)`.
    Close,
    /// `mmap(...)` — returns a fixed mapping address.
    Mmap,
    /// Any base name the kernel does not implement (`-EINVAL`).
    Unsupported,
}

impl Sysno {
    /// Resolve a syscall base name (`"ioctl"`, `"openat"`, …) to its
    /// dense number. Called once per spec syscall at construction
    /// time, never on the execution path.
    #[must_use]
    pub fn from_base(base: &str) -> Sysno {
        match base {
            "openat" => Sysno::Openat,
            "open" => Sysno::Open,
            "socket" => Sysno::Socket,
            "ioctl" => Sysno::Ioctl,
            "setsockopt" => Sysno::Setsockopt,
            "getsockopt" => Sysno::Getsockopt,
            "bind" => Sysno::Bind,
            "connect" => Sysno::Connect,
            "accept" => Sysno::Accept,
            "sendto" => Sysno::Sendto,
            "recvfrom" => Sysno::Recvfrom,
            "read" => Sysno::Read,
            "write" => Sysno::Write,
            "close" => Sysno::Close,
            "mmap" => Sysno::Mmap,
            _ => Sysno::Unsupported,
        }
    }

    /// Stable dense index for serialization (declaration order).
    #[must_use]
    pub fn as_index(self) -> u8 {
        self as u8
    }

    /// Inverse of [`Sysno::as_index`]; `None` for an out-of-range
    /// index (e.g. from a corrupt snapshot).
    #[must_use]
    pub fn from_index(idx: u8) -> Option<Sysno> {
        const ALL: [Sysno; 16] = [
            Sysno::Openat,
            Sysno::Open,
            Sysno::Socket,
            Sysno::Ioctl,
            Sysno::Setsockopt,
            Sysno::Getsockopt,
            Sysno::Bind,
            Sysno::Connect,
            Sysno::Accept,
            Sysno::Sendto,
            Sysno::Recvfrom,
            Sysno::Read,
            Sysno::Write,
            Sysno::Close,
            Sysno::Mmap,
            Sysno::Unsupported,
        ];
        ALL.get(idx as usize).copied()
    }
}

/// Sanitizer family that detected a crash — the dense analogue of the
/// report's first line (`KASAN:`, `UBSAN:`, `divide error:`, …).
/// Derived from the injected bug's [`Trigger`] shape, so it is a pure
/// integer on the crash path: no title parsing, no strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SanitizerKind {
    /// Oversized allocation request (`WARNING: kmalloc bug …`).
    Kmalloc,
    /// Division by a zero field (`divide error: …`).
    DivideError,
    /// Use-after-free / GPF from a command sequence (`KASAN:`/`general
    /// protection fault …`).
    UseAfterFree,
    /// Resource-leak style bug from repeated valid commands
    /// (`ODEBUG:`/memory-leak reports).
    Odebug,
    /// Out-of-bounds on a payload path (`UBSAN: array-index-out-of-bounds`).
    OutOfBounds,
}

impl SanitizerKind {
    /// The sanitizer family a trigger shape reports under.
    #[must_use]
    pub fn of_trigger(trigger: &Trigger) -> SanitizerKind {
        match trigger {
            Trigger::FieldAbove { .. } => SanitizerKind::Kmalloc,
            Trigger::FieldZero { .. } => SanitizerKind::DivideError,
            Trigger::Sequence { .. } => SanitizerKind::UseAfterFree,
            Trigger::Repeat { .. } => SanitizerKind::Odebug,
            Trigger::PayloadLen { .. } => SanitizerKind::OutOfBounds,
        }
    }

    /// Stable dense index for serialization (declaration order).
    #[must_use]
    pub fn as_index(self) -> u8 {
        self as u8
    }

    /// Inverse of [`SanitizerKind::as_index`]; `None` for an
    /// out-of-range index (e.g. from a corrupt snapshot).
    #[must_use]
    pub fn from_index(idx: u8) -> Option<SanitizerKind> {
        const ALL: [SanitizerKind; 5] = [
            SanitizerKind::Kmalloc,
            SanitizerKind::DivideError,
            SanitizerKind::UseAfterFree,
            SanitizerKind::Odebug,
            SanitizerKind::OutOfBounds,
        ];
        ALL.get(idx as usize).copied()
    }
}

/// A stable, spec-independent crash signature: what crash triage
/// dedups on. Built entirely from dense integers already at hand on
/// the crash path (per the dense-dispatch convention — no name lookup,
/// no string formatting):
///
/// * the [`Sysno`] of the faulting call — which syscall table entry
///   was on the stack;
/// * the **resource-chain depth** of the fd the call used: `1` for a
///   directly opened device or socket, `+1` for every
///   `CreatesFd`/`accept` hop (a crash on a KVM vCPU fd is depth 3:
///   `/dev/kvm` → VM fd → vCPU fd), so the same sanitizer firing at a
///   different point of a deep producer chain triages separately;
/// * the [`SanitizerKind`];
/// * the faulting basic-block id (`site`) — the bug's coverage block,
///   fixed by kernel boot order, independent of whichever spec suite
///   reached it.
///
/// Two campaigns over different spec suites against the same booted
/// kernel therefore produce identical signatures for the same
/// underlying bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CrashSignature {
    /// Dense number of the faulting syscall.
    pub sysno: Sysno,
    /// Resource-chain depth of the fd the faulting call operated on
    /// (0 when the call had no live fd, e.g. a payload crash probe).
    pub chain_depth: u8,
    /// Sanitizer family of the report.
    pub sanitizer: SanitizerKind,
    /// Faulting basic-block id (the bug's coverage block).
    pub site: u64,
}

/// A crash detected by the sanitizers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashReport {
    /// Crash title (Table 4 wording).
    pub title: String,
    /// CVE, if assigned.
    pub cve: Option<String>,
    /// Blueprint that crashed.
    pub handler: String,
    /// Dense, spec-independent dedup key (see [`CrashSignature`]).
    pub signature: CrashSignature,
}

/// Per-fd kernel object state. Handler and command history are kept
/// as interned indices so the dispatch path never clones a string.
#[derive(Debug, Clone)]
struct FdState {
    /// Index into `VKernel::targets`.
    target: u32,
    state: u8,
    /// Resource-chain depth: 1 for a directly opened device/socket,
    /// parent + 1 for fds minted by `CreatesFd` commands or `accept`.
    /// Feeds the crash signature's `chain_depth`.
    depth: u8,
    /// Index into the target's `cmds` of the last *valid* command.
    last_cmd: Option<u32>,
    /// Per-command valid-invocation counts, indexed like `cmds`.
    cmd_counts: Vec<u32>,
    /// Ids are issued sequentially starting at 1 and never revoked,
    /// so `id` is valid ⇔ `1 <= id < next_id`.
    next_id: u32,
    closed: bool,
}

impl FdState {
    fn fresh(target: u32, n_cmds: usize, depth: u8) -> FdState {
        FdState {
            target,
            state: 0,
            depth,
            last_cmd: None,
            cmd_counts: vec![0; n_cmds],
            next_id: 1,
            closed: false,
        }
    }
}

/// One event of a per-exec execution trace, in retirement order — the
/// raw material the flight recorder (`kgpt-trace`) delta-codes into a
/// compact bit stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// `len` consecutive basic blocks retired starting at id `start`
    /// (contiguous retirements are merged as they are recorded).
    Block {
        /// First block id of the run.
        start: u64,
        /// Consecutive blocks retired (always ≥ 1).
        len: u32,
    },
    /// Syscall boundary: the executor is about to dispatch program
    /// call `index` (skipped calls get no marker).
    Call {
        /// Zero-based index of the call in its program.
        index: u32,
    },
    /// A sanitizer fired at block `site` (the crash signature's site).
    Crash {
        /// Faulting block id.
        site: u64,
    },
}

/// The per-exec trace log the kernel's exec path appends to when
/// tracing is enabled — a plain event buffer; compact encoding is the
/// flight recorder's job (`kgpt-trace`), not the hot path's.
///
/// Disabled (the default) it costs the exec path one predictable
/// branch per coverage retirement, in keeping with the dense-dispatch
/// convention. The enabled flag survives [`VmState::reset`] — like
/// the fuel limit it is a property of the worker, not of one program
/// — while the buffered events are cleared (allocation retained).
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl TraceLog {
    /// Turn recording on or off. Tracing never changes execution
    /// results — coverage, returns and crashes are identical either
    /// way — only whether events are buffered.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is on.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Events of the current execution, in retirement order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Record `len` blocks retired from `start`, merging with an
    /// immediately preceding contiguous retirement.
    #[inline]
    pub fn block(&mut self, start: u64, len: u32) {
        if !self.enabled || len == 0 {
            return;
        }
        if let Some(TraceEvent::Block {
            start: prev_start,
            len: prev_len,
        }) = self.events.last_mut()
        {
            if *prev_start + u64::from(*prev_len) == start {
                *prev_len += len;
                return;
            }
        }
        self.events.push(TraceEvent::Block { start, len });
    }

    /// Record a syscall-boundary marker for program call `index`.
    #[inline]
    pub fn call(&mut self, index: u32) {
        if self.enabled {
            self.events.push(TraceEvent::Call { index });
        }
    }

    /// Record a crash marker at the faulting block `site`.
    #[inline]
    pub fn crash(&mut self, site: u64) {
        if self.enabled {
            self.events.push(TraceEvent::Crash { site });
        }
    }

    /// Drop the buffered events (allocation retained); the enabled
    /// flag is untouched.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

/// Per-program ("per-VM") execution state: fd table, coverage, crash.
///
/// Designed for reuse across executions: [`VmState::reset`] clears
/// the logical state while retaining every allocation (fd table,
/// coverage words, decode scratch), so a fuzzing worker touches the
/// allocator only while a program grows past its high-water mark.
#[derive(Debug, Clone, Default)]
pub struct VmState {
    fds: Vec<Option<FdState>>,
    /// Basic blocks covered so far.
    pub coverage: CoverageMap,
    /// First crash, if any (execution should stop).
    pub crash: Option<CrashReport>,
    /// Flight-recorder event log (off by default; see [`TraceLog`]).
    trace: TraceLog,
    /// Reusable argument-decode buffer (`copy_from_user` target).
    decode_buf: Vec<u8>,
    /// Reusable decoded-field scratch, aligned with the argument
    /// struct's fields (`None` = field not decodable at its offset).
    field_buf: Vec<Option<u64>>,
    /// Per-exec fuel budget in work units (blocks retired + argument
    /// bytes decoded); 0 = unlimited. Survives [`VmState::reset`] —
    /// it is a property of the worker, not of one program.
    fuel_limit: u64,
    /// Work units charged so far in the current execution.
    fuel_spent: u64,
    /// Whether the current execution ran out of fuel. Once set, every
    /// further call returns `-ENOMEM` until the next reset.
    fuel_exhausted: bool,
}

impl VmState {
    /// Fresh state (fd numbering starts at 3, like a real process).
    #[must_use]
    pub fn new() -> VmState {
        VmState::default()
    }

    /// Clear fd table, coverage, crash, spent fuel and buffered trace
    /// events for the next program while keeping allocations (and the
    /// fuel limit and trace-enabled flag).
    pub fn reset(&mut self) {
        self.fds.clear();
        self.coverage.clear();
        self.crash = None;
        self.trace.clear();
        self.fuel_spent = 0;
        self.fuel_exhausted = false;
    }

    /// The flight-recorder event log of the current execution.
    #[must_use]
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Mutable access to the flight-recorder log (enable/disable
    /// recording, inject executor-side markers like syscall
    /// boundaries).
    pub fn trace_mut(&mut self) -> &mut TraceLog {
        &mut self.trace
    }

    /// Set the per-exec fuel budget (work units: blocks retired +
    /// argument bytes decoded). `0` disables the watchdog. The limit
    /// persists across [`VmState::reset`].
    pub fn set_fuel_limit(&mut self, limit: u64) {
        self.fuel_limit = limit;
    }

    /// The configured per-exec fuel budget (0 = unlimited).
    #[must_use]
    pub fn fuel_limit(&self) -> u64 {
        self.fuel_limit
    }

    /// Work units charged in the current execution.
    #[must_use]
    pub fn fuel_spent(&self) -> u64 {
        self.fuel_spent
    }

    /// Whether the current execution exhausted its fuel budget — a
    /// counted outcome, not a crash: `crash` stays `None` and the
    /// coverage retired before exhaustion remains mergeable.
    #[must_use]
    pub fn fuel_exhausted(&self) -> bool {
        self.fuel_exhausted
    }

    /// Charge `units` of work against the fuel budget. Deterministic:
    /// exhaustion depends only on the executed program, never on wall
    /// clock or scheduling.
    fn charge_fuel(&mut self, units: u64) {
        if self.fuel_limit == 0 {
            return;
        }
        self.fuel_spent = self.fuel_spent.saturating_add(units);
        if self.fuel_spent > self.fuel_limit {
            self.fuel_exhausted = true;
        }
    }

    fn alloc_fd(&mut self, st: FdState) -> i64 {
        self.fds.push(Some(st));
        self.fds.len() as i64 + 2
    }

    fn fd_mut(&mut self, fd: u64) -> Option<&mut FdState> {
        let idx = (fd as i64).checked_sub(3)?;
        let slot = self.fds.get_mut(usize::try_from(idx).ok()?)?;
        slot.as_mut().filter(|f| !f.closed)
    }

    /// Target index of a live fd, without holding a borrow.
    fn fd_target(&mut self, fd: u64) -> Option<u32> {
        self.fd_mut(fd).map(|f| f.target)
    }
}

/// Per-blueprint precomputed dispatch data.
#[derive(Debug)]
struct Target {
    bp: Blueprint,
    block_base: u64,
    /// Full encoded command value per entry of `bp.cmds`.
    cmd_values: Vec<u64>,
    /// Size of the blueprint's `sockaddr_<id>` struct, if declared.
    sockaddr_size: Option<u64>,
}

/// The virtual kernel.
#[derive(Debug)]
pub struct VKernel {
    targets: Vec<Target>,
    /// Blueprint id → target index.
    by_id: BTreeMap<String, u32>,
    dev_index: BTreeMap<String, u32>,
    sock_index: BTreeMap<(u64, u64, u64), u32>,
}

/// Coverage block namespace stride per handler.
const BLOCK_STRIDE: u64 = 4096;

impl VKernel {
    /// Boot a kernel with the given handlers loaded.
    #[must_use]
    pub fn boot(blueprints: Vec<Blueprint>) -> VKernel {
        let mut targets = Vec::with_capacity(blueprints.len());
        let mut by_id = BTreeMap::new();
        let mut dev_index = BTreeMap::new();
        let mut sock_index = BTreeMap::new();
        for (i, bp) in blueprints.into_iter().enumerate() {
            let idx = i as u32;
            match &bp.kind {
                BlueprintKind::Driver(d) => {
                    if !d.dev_path.is_empty() {
                        dev_index.insert(d.dev_path.clone(), idx);
                    }
                }
                BlueprintKind::Socket(s) => {
                    sock_index.insert((s.family, s.sock_type, s.proto), idx);
                }
            }
            by_id.insert(bp.id.clone(), idx);
            let cmd_values = bp.cmds.iter().map(|c| bp.cmd_value(c)).collect();
            let sockaddr_size = bp
                .arg_struct(&format!("sockaddr_{}", bp.id))
                .map(|sdef| sdef.size_align(&bp.structs).0);
            targets.push(Target {
                block_base: (i as u64 + 1) * BLOCK_STRIDE,
                cmd_values,
                sockaddr_size,
                bp,
            });
        }
        VKernel {
            targets,
            by_id,
            dev_index,
            sock_index,
        }
    }

    /// Total number of distinct handlers loaded (each owns a disjoint
    /// 4096-block coverage stratum; used for sanity checks in tests).
    #[must_use]
    pub fn handler_count(&self) -> usize {
        self.targets.len()
    }

    /// The booted kernel's static block layout as `(start, len, next)`
    /// straight-line runs — the prediction table the flight recorder's
    /// delta coder is built from (the fuzzer assembles these triples
    /// into `kgpt_syzlang::lowered::CfgSuccessors`; this crate sits
    /// below `kgpt-syzlang` and cannot name that type).
    ///
    /// `next` is the successor of the run's *last* block when the
    /// layout fixes one (a command body falling through into its
    /// deep-path blocks); `None` means "predict the numerically next
    /// id". The table is advisory: a misprediction costs the trace
    /// encoder a wider token, never correctness — so the rows describe
    /// the common structurally-valid paths, not every reachable
    /// interleaving.
    #[must_use]
    pub fn cfg_runs(&self) -> Vec<(u64, u64, Option<u64>)> {
        let mut runs = Vec::new();
        for t in &self.targets {
            let base = t.block_base;
            // Entry path: open blocks for drivers, socket() blocks for
            // sockets (the defaults mirror sys_open/sys_socket).
            let entry = match &t.bp.kind {
                BlueprintKind::Driver(d) => d.open_blocks,
                BlueprintKind::Socket(s) => s.socket_blocks,
            };
            runs.push((base, u64::from(entry), None));
            // Command strata: entry block + body blocks are contiguous;
            // a command with deep blocks falls through into them.
            for (idx, cb) in t.bp.cmds.iter().enumerate() {
                let cmd_base = base + 100 + (idx as u64) * 64;
                let next = (cb.deep_blocks > 0).then_some(cmd_base + 32);
                runs.push((cmd_base, u64::from(cb.blocks.max(1)), next));
                if cb.deep_blocks > 0 {
                    runs.push((cmd_base + 32, u64::from(cb.deep_blocks), None));
                }
            }
            // Socket-call strata (sys_addr_call/sendto/recvfrom/accept
            // cover contiguous spans at fixed offsets).
            if t.bp.socket().is_some() {
                runs.push((base + Self::sock_call_offset(SockCall::Bind), 4, None));
                runs.push((base + Self::sock_call_offset(SockCall::Connect), 4, None));
                runs.push((base + Self::sock_call_offset(SockCall::Sendto), 5, None));
                runs.push((base + Self::sock_call_offset(SockCall::Recvfrom), 2, None));
                runs.push((base + Self::sock_call_offset(SockCall::Accept), 2, None));
            }
            // read/write stratum (reachable on any live fd).
            runs.push((base + 60, 2, None));
            // Bug sites are isolated single blocks.
            for bug_idx in 0..t.bp.bugs.len() {
                runs.push((base + 4000 + bug_idx as u64, 1, None));
            }
        }
        runs
    }

    /// Execute one syscall, dispatching on its dense [`Sysno`].
    /// Returns the (Linux-convention) result: ≥ 0 on success,
    /// `-errno` on failure. Updates coverage and may set
    /// `state.crash`. Callers resolve base names to numbers once at
    /// construction time via [`Sysno::from_base`].
    pub fn exec_call(&self, state: &mut VmState, no: Sysno, args: &[u64; 6], mem: &MemMap) -> i64 {
        if state.crash.is_some() {
            return -errno::EFAULT; // kernel already paniced
        }
        if state.fuel_exhausted {
            return -errno::ENOMEM; // fuel watchdog tripped
        }
        match no {
            Sysno::Openat => self.sys_open(state, args[1], mem),
            Sysno::Open => self.sys_open(state, args[0], mem),
            Sysno::Socket => self.sys_socket(state, args[0], args[1], args[2]),
            Sysno::Ioctl => self.sys_ioctl(state, args[0], args[1], args[2], mem),
            Sysno::Setsockopt | Sysno::Getsockopt => {
                self.sys_sockopt(state, no, args[0], args[1], args[2], args[3], args[4], mem)
            }
            Sysno::Bind => {
                self.sys_addr_call(state, SockCall::Bind, args[0], args[1], args[2], mem)
            }
            Sysno::Connect => {
                self.sys_addr_call(state, SockCall::Connect, args[0], args[1], args[2], mem)
            }
            Sysno::Accept => self.sys_accept(state, args[0]),
            Sysno::Sendto => self.sys_sendto(state, args, mem),
            Sysno::Recvfrom => self.sys_recvfrom(state, args[0]),
            Sysno::Read | Sysno::Write => self.sys_rw(state, args[0]),
            Sysno::Close => self.sys_close(state, args[0]),
            Sysno::Mmap => 0x7f00_0000_0000,
            Sysno::Unsupported => -errno::EINVAL,
        }
    }

    fn target(&self, idx: u32) -> &Target {
        &self.targets[idx as usize]
    }

    fn cover(&self, state: &mut VmState, base: u64, offset: u64, count: u32) {
        state.charge_fuel(u64::from(count));
        state.trace.block(base + offset, count);
        for i in 0..u64::from(count) {
            state.coverage.insert(base + offset + i);
        }
    }

    fn sys_open(&self, state: &mut VmState, path_ptr: u64, mem: &MemMap) -> i64 {
        let Some(path) = mem.read_cstring(path_ptr, 256) else {
            return -errno::EFAULT;
        };
        let Some(&tidx) = self.dev_index.get(&path) else {
            return -errno::ENOENT;
        };
        let t = self.target(tidx);
        let open_blocks = t.bp.driver().map_or(2, |d| d.open_blocks);
        self.cover(state, t.block_base, 0, open_blocks);
        state.alloc_fd(FdState::fresh(tidx, t.bp.cmds.len(), 1))
    }

    fn sys_socket(&self, state: &mut VmState, family: u64, ty: u64, proto: u64) -> i64 {
        let Some(&tidx) = self.sock_index.get(&(family, ty, proto)) else {
            // Distinguish errors like the kernel does.
            if !self.sock_index.keys().any(|(f, _, _)| *f == family) {
                return -errno::EAFNOSUPPORT;
            }
            if !self
                .sock_index
                .keys()
                .any(|(f, t, _)| *f == family && *t == ty)
            {
                return -errno::ESOCKTNOSUPPORT;
            }
            return -errno::EPROTONOSUPPORT;
        };
        let t = self.target(tidx);
        let blocks = t.bp.socket().map_or(2, |s| s.socket_blocks);
        self.cover(state, t.block_base, 0, blocks);
        state.alloc_fd(FdState::fresh(tidx, t.bp.cmds.len(), 1))
    }

    fn sys_ioctl(&self, state: &mut VmState, fd: u64, cmd: u64, arg: u64, mem: &MemMap) -> i64 {
        let Some(tidx) = state.fd_target(fd) else {
            return -errno::EBADF;
        };
        let t = self.target(tidx);
        if t.bp.socket().is_some() {
            return -errno::ENOTTY;
        }
        let transform = t.bp.driver().map_or(CmdTransform::None, |d| d.transform);
        let magic = t.bp.driver().map_or(0, |d| d.magic);
        // Match the command the way the emitted C dispatches it.
        let matched = t.bp.cmds.iter().enumerate().find(|(i, _)| {
            let full = t.cmd_values[*i];
            match transform {
                CmdTransform::None => cmd == full,
                CmdTransform::IocNr => {
                    // ctl_ioctl-style: validate the magic byte, then
                    // dispatch on the nr.
                    cmacro::ioc_type(cmd) == magic && cmacro::ioc_nr(cmd) == cmacro::ioc_nr(full)
                }
                CmdTransform::Masked(m) => {
                    (cmd & m) == (full & m) && cmacro::ioc_type(cmd) == cmacro::ioc_type(full)
                }
            }
        });
        let Some((idx, cb)) = matched else {
            return -errno::ENOTTY;
        };
        self.run_cmd(state, Sysno::Ioctl, t, idx, cb, fd, arg, None, mem)
    }

    #[allow(clippy::too_many_arguments)]
    fn sys_sockopt(
        &self,
        state: &mut VmState,
        no: Sysno,
        fd: u64,
        level: u64,
        opt: u64,
        valp: u64,
        len: u64,
        mem: &MemMap,
    ) -> i64 {
        let Some(tidx) = state.fd_target(fd) else {
            return -errno::EBADF;
        };
        let t = self.target(tidx);
        let Some(s) = t.bp.socket() else {
            return -errno::ENOPROTOOPT;
        };
        if level != s.level {
            return -errno::ENOPROTOOPT;
        }
        let Some((idx, cb)) =
            t.bp.cmds
                .iter()
                .enumerate()
                .find(|(i, _)| t.cmd_values[*i] == opt)
        else {
            return -errno::ENOPROTOOPT;
        };
        self.run_cmd(state, no, t, idx, cb, fd, valp, Some(len), mem)
    }

    /// Common command execution: coverage, argument decoding, field
    /// checks, effects, bug triggers. The decode scratch lives in
    /// `VmState`, so steady-state execution performs no allocation.
    #[allow(clippy::too_many_arguments)]
    fn run_cmd(
        &self,
        state: &mut VmState,
        no: Sysno,
        t: &Target,
        idx: usize,
        cb: &CmdBlueprint,
        fd: u64,
        arg: u64,
        optlen: Option<u64>,
        mem: &MemMap,
    ) -> i64 {
        let mut fields = std::mem::take(&mut state.field_buf);
        let ret = self.run_cmd_inner(state, no, t, idx, cb, fd, arg, optlen, mem, &mut fields);
        state.field_buf = fields;
        ret
    }

    #[allow(clippy::too_many_arguments, clippy::too_many_lines)]
    fn run_cmd_inner(
        &self,
        state: &mut VmState,
        no: Sysno,
        t: &Target,
        idx: usize,
        cb: &CmdBlueprint,
        fd: u64,
        arg: u64,
        optlen: Option<u64>,
        mem: &MemMap,
        fields: &mut Vec<Option<u64>>,
    ) -> i64 {
        let cmd_base = 100 + (idx as u64) * 64;
        // Entry block: the dispatcher reached this command.
        self.cover(state, t.block_base, cmd_base, 1);
        // Decode the argument into the reusable field scratch. For
        // `Struct` arguments `fields[i]` mirrors `sdef.fields[i]`; for
        // `IdPtr` the single decoded id sits in `fields[0]`.
        fields.clear();
        match &cb.arg {
            ArgKind::Struct(sname) => {
                let Some(sdef) = t.bp.arg_struct(sname) else {
                    return -errno::EINVAL;
                };
                let (size, _) = sdef.size_align(&t.bp.structs);
                if let Some(l) = optlen {
                    if l < size {
                        return -errno::EINVAL;
                    }
                }
                state.charge_fuel(size);
                // Borrow the argument bytes straight out of the memory
                // image when they sit in one segment (the encoder's
                // normal layout) — the per-ioctl `copy_from_user` copy
                // only happens for reads crossing segment boundaries,
                // which fall back to the amortized decode buffer.
                let mut owned = std::mem::take(&mut state.decode_buf);
                let bytes: &[u8] = match mem.slice_at(arg, size as usize) {
                    Some(s) => s,
                    None => {
                        if !mem.read_into(arg, size as usize, &mut owned) {
                            state.decode_buf = owned;
                            return -errno::EFAULT;
                        }
                        &owned
                    }
                };
                fields.resize(sdef.fields.len(), None);
                for (i, f) in sdef.fields.iter().enumerate() {
                    if let Some(off) = sdef.offset_of(&f.name, &t.bp.structs) {
                        let (fsize, _) = f.ty.size_align(&t.bp.structs);
                        let w = fsize.min(8) as usize;
                        if off as usize + w <= bytes.len() && w > 0 {
                            let mut buf = [0u8; 8];
                            buf[..w].copy_from_slice(&bytes[off as usize..off as usize + w]);
                            fields[i] = Some(u64::from_le_bytes(buf));
                        }
                    }
                }
                state.decode_buf = owned;
            }
            ArgKind::IdPtr(_) => {
                state.charge_fuel(4);
                let mut owned = std::mem::take(&mut state.decode_buf);
                let bytes: &[u8] = match mem.slice_at(arg, 4) {
                    Some(s) => s,
                    None => {
                        if !mem.read_into(arg, 4, &mut owned) {
                            state.decode_buf = owned;
                            return -errno::EFAULT;
                        }
                        &owned
                    }
                };
                let mut buf = [0u8; 8];
                buf[..4].copy_from_slice(&bytes[..4]);
                fields.push(Some(u64::from_le_bytes(buf)));
                state.decode_buf = owned;
            }
            ArgKind::Int | ArgKind::None => {}
        }
        // Resolve a trigger's field reference against the decoded
        // scratch (struct field by name; `__id` for IdPtr arguments).
        let sdef = match &cb.arg {
            ArgKind::Struct(sname) => t.bp.arg_struct(sname),
            _ => None,
        };
        let field_value = |name: &str| -> Option<u64> {
            if let ArgKind::IdPtr(_) = &cb.arg {
                if name == "__id" {
                    return fields.first().copied().flatten();
                }
                return None;
            }
            let sdef = sdef?;
            let pos = sdef.fields.iter().position(|f| f.name == name)?;
            fields.get(pos).copied().flatten()
        };
        // Copy succeeded: the body blocks.
        self.cover(
            state,
            t.block_base,
            cmd_base + 1,
            cb.blocks.saturating_sub(1),
        );
        let (reached_state, chain_depth) = {
            let f = state.fd_mut(fd).expect("fd checked");
            (f.state, f.depth)
        };
        // Semantic field checks (EINVAL on violation).
        let mut valid = true;
        if let Some(sdef) = sdef {
            for (i, f) in sdef.fields.iter().enumerate() {
                let v = fields.get(i).copied().flatten().unwrap_or(0);
                match &f.role {
                    FieldRole::CheckedRange(lo, hi) if v < *lo || v > *hi => valid = false,
                    FieldRole::MagicCheck(m) if v != *m => valid = false,
                    FieldRole::Reserved if v != 0 => valid = false,
                    FieldRole::Flags(set) => {
                        let mask: u64 =
                            t.bp.flag_sets
                                .iter()
                                .find(|(n, _)| n == set)
                                .map_or(0, |(_, vs)| vs.iter().fold(0, |a, (_, x)| a | x));
                        if v & !mask != 0 {
                            valid = false;
                        }
                    }
                    FieldRole::InId(_) => {
                        let f = state.fd_mut(fd).expect("fd");
                        let id = v as u32;
                        if !(1..f.next_id).contains(&id) {
                            valid = false;
                        }
                    }
                    _ => {}
                }
            }
        }
        if let ArgKind::IdPtr(_) = &cb.arg {
            let id = fields.first().copied().flatten().unwrap_or(0) as u32;
            let f = state.fd_mut(fd).expect("fd");
            if !(1..f.next_id).contains(&id) {
                valid = false;
            }
        }
        // State machine gating.
        let state_ok = match &cb.effect {
            CmdEffect::StateStep { requires, .. } => reached_state >= *requires,
            _ => true,
        };
        // Valid operations advance the per-fd history (used by
        // sequence/repeat triggers).
        let counts_hit = {
            let f = state.fd_mut(fd).expect("fd checked");
            if valid && state_ok {
                f.cmd_counts[idx] += 1;
            }
            f.cmd_counts[idx]
        };
        // Bug triggers. Allocation-size bugs (`FieldAbove`) fire right
        // after copy_from_user, before validation — like the real
        // kmalloc bugs. The deeper bugs (sequences, leaks, divide
        // errors) sit behind the semantic checks and state machine, so
        // they require a *valid* call — this is what makes them
        // unreachable for imprecise specs.
        let deep_ok = valid && state_ok;
        let mut crashed = false;
        for (bug_idx, bug) in t.bp.bugs.iter().enumerate() {
            let fire = match &bug.trigger {
                Trigger::FieldAbove { cmd, field, min } => {
                    *cmd == cb.name && field_value(field).unwrap_or(0) > *min
                }
                Trigger::FieldZero { cmd, field } => {
                    *cmd == cb.name && field_value(field) == Some(0) && deep_ok
                }
                Trigger::Sequence { first, then } => {
                    deep_ok
                        && *then == cb.name
                        && state
                            .fd_mut(fd)
                            .and_then(|f| f.last_cmd)
                            .is_some_and(|li| t.bp.cmds[li as usize].name == *first)
                }
                Trigger::Repeat { cmd, times } => {
                    deep_ok && *cmd == cb.name && counts_hit >= *times
                }
                Trigger::PayloadLen { .. } => false, // sendto-path only
            };
            if fire {
                let site = t.block_base + 4000 + bug_idx as u64;
                self.cover(state, t.block_base, 4000 + bug_idx as u64, 1);
                state.trace.crash(site);
                state.crash = Some(CrashReport {
                    title: bug.title.clone(),
                    cve: bug.cve.clone(),
                    handler: t.bp.id.clone(),
                    signature: CrashSignature {
                        sysno: no,
                        chain_depth,
                        sanitizer: SanitizerKind::of_trigger(&bug.trigger),
                        site,
                    },
                });
                crashed = true;
                break;
            }
        }
        if deep_ok {
            let f = state.fd_mut(fd).expect("fd");
            f.last_cmd = Some(idx as u32);
        }
        if crashed {
            return -errno::EFAULT;
        }
        if !state_ok {
            return -errno::EBUSY;
        }
        if !valid {
            return -errno::EINVAL;
        }
        // Deep blocks: everything semantically valid.
        self.cover(state, t.block_base, cmd_base + 32, cb.deep_blocks);
        // Effects.
        match &cb.effect {
            CmdEffect::CreatesFd { handler } => {
                if let Some(&sub) = self.by_id.get(handler) {
                    let sub_t = self.target(sub);
                    // Creating the sub-object covers its init path.
                    // The minted fd sits one hop deeper in the
                    // resource chain than the fd that created it.
                    self.cover(state, sub_t.block_base, 0, 2);
                    return state.alloc_fd(FdState::fresh(
                        sub,
                        sub_t.bp.cmds.len(),
                        chain_depth.saturating_add(1),
                    ));
                }
            }
            CmdEffect::StateStep { sets, .. } => {
                let f = state.fd_mut(fd).expect("fd");
                f.state = *sets;
            }
            CmdEffect::IssuesId { .. } => {
                let f = state.fd_mut(fd).expect("fd");
                let id = f.next_id;
                f.next_id += 1;
                return i64::from(id);
            }
            CmdEffect::Pure => {}
        }
        0
    }

    fn sock_call_offset(call: SockCall) -> u64 {
        match call {
            SockCall::Bind => 40,
            SockCall::Connect => 44,
            SockCall::Sendto => 48,
            SockCall::Recvfrom => 54,
            SockCall::Accept => 58,
        }
    }

    fn sys_addr_call(
        &self,
        state: &mut VmState,
        call: SockCall,
        fd: u64,
        addr: u64,
        len: u64,
        mem: &MemMap,
    ) -> i64 {
        let Some(tidx) = state.fd_target(fd) else {
            return -errno::EBADF;
        };
        let t = self.target(tidx);
        let Some(s) = t.bp.socket() else {
            return -errno::ENOTTY;
        };
        if !s.calls.contains(&call) {
            return -errno::EINVAL;
        }
        let off = Self::sock_call_offset(call);
        self.cover(state, t.block_base, off, 1);
        // Address validation: size + family magic.
        if let Some(size) = t.sockaddr_size {
            if len < size {
                return -errno::EINVAL;
            }
            let second = addr.checked_add(1).and_then(|a| mem.byte_at(a));
            let (Some(b0), Some(b1)) = (mem.byte_at(addr), second) else {
                return -errno::EFAULT;
            };
            let family = u64::from(u16::from_le_bytes([b0, b1]));
            if family != s.family {
                return -errno::EAFNOSUPPORT;
            }
        }
        self.cover(state, t.block_base, off + 1, 3);
        if call == SockCall::Bind {
            let f = state.fd_mut(fd).expect("fd");
            f.state = f.state.max(1);
        }
        0
    }

    fn sys_sendto(&self, state: &mut VmState, args: &[u64; 6], mem: &MemMap) -> i64 {
        let (fd, _buf, len) = (args[0], args[1], args[2]);
        let Some((chain_depth, tidx)) = state.fd_mut(fd).map(|f| (f.depth, f.target)) else {
            return -errno::EBADF;
        };
        let t = self.target(tidx);
        let Some(s) = t.bp.socket() else {
            return -errno::ENOTTY;
        };
        if !s.calls.contains(&SockCall::Sendto) {
            return -errno::EINVAL;
        }
        if len == 0 {
            return -errno::EINVAL;
        }
        let off = Self::sock_call_offset(SockCall::Sendto);
        self.cover(state, t.block_base, off, 2);
        // Payload must be readable.
        if !mem.is_mapped(args[1], (len as usize).min(4096)) {
            return -errno::EFAULT;
        }
        self.cover(state, t.block_base, off + 2, 3);
        // PayloadLen bug triggers.
        for (bug_idx, bug) in t.bp.bugs.iter().enumerate() {
            if let Trigger::PayloadLen { min_len } = &bug.trigger {
                if len >= *min_len {
                    let site = t.block_base + 4000 + bug_idx as u64;
                    self.cover(state, t.block_base, 4000 + bug_idx as u64, 1);
                    state.trace.crash(site);
                    state.crash = Some(CrashReport {
                        title: bug.title.clone(),
                        cve: bug.cve.clone(),
                        handler: t.bp.id.clone(),
                        signature: CrashSignature {
                            sysno: Sysno::Sendto,
                            chain_depth,
                            sanitizer: SanitizerKind::of_trigger(&bug.trigger),
                            site,
                        },
                    });
                    return -errno::EFAULT;
                }
            }
        }
        len as i64
    }

    fn sys_recvfrom(&self, state: &mut VmState, fd: u64) -> i64 {
        let Some(tidx) = state.fd_target(fd) else {
            return -errno::EBADF;
        };
        let t = self.target(tidx);
        let Some(s) = t.bp.socket() else {
            return -errno::ENOTTY;
        };
        if !s.calls.contains(&SockCall::Recvfrom) {
            return -errno::EINVAL;
        }
        self.cover(
            state,
            t.block_base,
            Self::sock_call_offset(SockCall::Recvfrom),
            2,
        );
        0
    }

    fn sys_accept(&self, state: &mut VmState, fd: u64) -> i64 {
        let Some(f) = state.fd_mut(fd) else {
            return -errno::EBADF;
        };
        let tidx = f.target;
        let bound = f.state >= 1;
        let depth = f.depth;
        let t = self.target(tidx);
        let Some(s) = t.bp.socket() else {
            return -errno::ENOTTY;
        };
        if !s.calls.contains(&SockCall::Accept) || !bound {
            return -errno::EINVAL;
        }
        self.cover(
            state,
            t.block_base,
            Self::sock_call_offset(SockCall::Accept),
            2,
        );
        state.alloc_fd(FdState::fresh(
            tidx,
            t.bp.cmds.len(),
            depth.saturating_add(1),
        ))
    }

    fn sys_rw(&self, state: &mut VmState, fd: u64) -> i64 {
        let Some(tidx) = state.fd_target(fd) else {
            return -errno::EBADF;
        };
        let t = self.target(tidx);
        self.cover(state, t.block_base, 60, 2);
        0
    }

    fn sys_close(&self, state: &mut VmState, fd: u64) -> i64 {
        match state.fd_mut(fd) {
            Some(f) => {
                f.closed = true;
                0
            }
            None => -errno::EBADF,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgpt_csrc::flagship;
    use kgpt_syzlang::value::ARG_BASE_ADDR;

    fn boot_dm() -> VKernel {
        VKernel::boot(vec![flagship::dm()])
    }

    fn mem_with(path: &str) -> MemMap {
        let mut m = MemMap::new();
        m.write(ARG_BASE_ADDR, path.as_bytes().to_vec());
        m.write(ARG_BASE_ADDR + 255, vec![0]);
        m
    }

    fn open_dm(k: &VKernel, st: &mut VmState) -> u64 {
        let mut m = mem_with("/dev/mapper/control");
        m.write(ARG_BASE_ADDR + 20, vec![0]);
        let fd = k.exec_call(st, Sysno::Openat, &[0, ARG_BASE_ADDR, 2, 0, 0, 0], &m);
        assert!(fd >= 3, "open failed: {fd}");
        fd as u64
    }

    #[test]
    fn open_wrong_path_enoent() {
        let k = boot_dm();
        let mut st = VmState::new();
        let m = mem_with("/dev/device-mapper\0");
        let r = k.exec_call(&mut st, Sysno::Openat, &[0, ARG_BASE_ADDR, 2, 0, 0, 0], &m);
        assert_eq!(r, -errno::ENOENT);
        assert!(st.coverage.is_empty());
    }

    #[test]
    fn open_right_path_covers_blocks() {
        let k = boot_dm();
        let mut st = VmState::new();
        let fd = open_dm(&k, &mut st);
        assert_eq!(fd, 3);
        assert_eq!(st.coverage.len(), 4); // dm open_blocks
    }

    #[test]
    fn state_reset_reuses_cleanly() {
        let k = boot_dm();
        let mut st = VmState::new();
        let _ = open_dm(&k, &mut st);
        assert!(!st.coverage.is_empty());
        st.reset();
        assert!(st.coverage.is_empty());
        assert!(st.crash.is_none());
        // fd table restarts at 3 after reset.
        let fd = open_dm(&k, &mut st);
        assert_eq!(fd, 3);
    }

    #[test]
    fn ioctl_needs_magic_byte_with_iocnr_transform() {
        let k = boot_dm();
        let mut st = VmState::new();
        let fd = open_dm(&k, &mut st);
        // SyzDescribe-style raw nr: _IOC_NR only, magic missing.
        let r = k.exec_call(&mut st, Sysno::Ioctl, &[fd, 3, 0, 0, 0, 0], &MemMap::new());
        assert_eq!(r, -errno::ENOTTY);
        // Correct full value.
        let bp = flagship::dm();
        let cmd = bp.cmd_value(bp.cmd("DM_VERSION").unwrap());
        let mut m = mem_with("/dev/mapper/control");
        // 300-byte zeroed dm_ioctl at a fresh address.
        let (size, _) = bp.arg_struct("dm_ioctl").unwrap().size_align(&bp.structs);
        m.write(0x2000_0000, vec![0u8; size as usize]);
        let before = st.coverage.len();
        let r = k.exec_call(&mut st, Sysno::Ioctl, &[fd, cmd, 0x2000_0000, 0, 0, 0], &m);
        assert_eq!(r, 0, "valid DM_VERSION should succeed");
        assert!(st.coverage.len() > before);
    }

    #[test]
    fn struct_decode_spanning_segments_matches_contiguous() {
        // The zero-copy decode borrows single-segment arguments; a
        // struct split across two adjacent segments must take the
        // copying fallback and decode identically.
        let k = boot_dm();
        let bp = flagship::dm();
        let cmd = bp.cmd_value(bp.cmd("DM_VERSION").unwrap());
        let (size, _) = bp.arg_struct("dm_ioctl").unwrap().size_align(&bp.structs);
        let size = size as usize;

        let mut st_one = VmState::new();
        let fd = open_dm(&k, &mut st_one);
        let mut contiguous = mem_with("/dev/mapper/control");
        contiguous.write(0x2000_0000, vec![0u8; size]);
        assert_eq!(
            k.exec_call(
                &mut st_one,
                Sysno::Ioctl,
                &[fd, cmd, 0x2000_0000, 0, 0, 0],
                &contiguous
            ),
            0
        );

        let mut st_two = VmState::new();
        let fd = open_dm(&k, &mut st_two);
        let mut split = mem_with("/dev/mapper/control");
        split.write(0x2000_0000, vec![0u8; 16]);
        split.write(0x2000_0010, vec![0u8; size - 16]);
        assert_eq!(split.slice_at(0x2000_0000, size), None, "must span");
        assert_eq!(
            k.exec_call(
                &mut st_two,
                Sysno::Ioctl,
                &[fd, cmd, 0x2000_0000, 0, 0, 0],
                &split
            ),
            0
        );
        assert_eq!(st_one.coverage, st_two.coverage);

        // A short final segment is an EFAULT on both paths.
        let mut st_short = VmState::new();
        let fd = open_dm(&k, &mut st_short);
        let mut short = mem_with("/dev/mapper/control");
        short.write(0x2000_0000, vec![0u8; size - 1]);
        assert_eq!(
            k.exec_call(
                &mut st_short,
                Sysno::Ioctl,
                &[fd, cmd, 0x2000_0000, 0, 0, 0],
                &short
            ),
            -errno::EFAULT
        );
    }

    #[test]
    fn invalid_fields_einval_and_fewer_blocks() {
        let k = boot_dm();
        let bp = flagship::dm();
        let cmd = bp.cmd_value(bp.cmd("DM_VERSION").unwrap());
        let (size, _) = bp.arg_struct("dm_ioctl").unwrap().size_align(&bp.structs);
        let padding_off = bp
            .arg_struct("dm_ioctl")
            .unwrap()
            .offset_of("padding", &bp.structs)
            .unwrap() as usize;

        // Valid run.
        let mut st_ok = VmState::new();
        let fd = open_dm(&k, &mut st_ok);
        let mut m = mem_with("/dev/mapper/control");
        m.write(0x2000_0000, vec![0u8; size as usize]);
        assert_eq!(
            k.exec_call(
                &mut st_ok,
                Sysno::Ioctl,
                &[fd, cmd, 0x2000_0000, 0, 0, 0],
                &m
            ),
            0
        );

        // Reserved-field violation.
        let mut st_bad = VmState::new();
        let fd = open_dm(&k, &mut st_bad);
        let mut bytes = vec![0u8; size as usize];
        bytes[padding_off] = 1;
        let mut m2 = mem_with("/dev/mapper/control");
        m2.write(0x2000_0000, bytes);
        assert_eq!(
            k.exec_call(
                &mut st_bad,
                Sysno::Ioctl,
                &[fd, cmd, 0x2000_0000, 0, 0, 0],
                &m2
            ),
            -errno::EINVAL
        );
        assert!(st_bad.coverage.len() < st_ok.coverage.len());
    }

    #[test]
    fn kmalloc_bug_fires_on_huge_data_size() {
        let k = boot_dm();
        let bp = flagship::dm();
        let mut st = VmState::new();
        let fd = open_dm(&k, &mut st);
        let cmd = bp.cmd_value(bp.cmd("DM_DEV_CREATE").unwrap());
        let sdef = bp.arg_struct("dm_ioctl").unwrap();
        let (size, _) = sdef.size_align(&bp.structs);
        let off = sdef.offset_of("data_size", &bp.structs).unwrap() as usize;
        let mut bytes = vec![0u8; size as usize];
        bytes[off..off + 4].copy_from_slice(&0x7fff_ffffu32.to_le_bytes());
        let mut m = mem_with("/dev/mapper/control");
        m.write(0x2000_0000, bytes);
        let r = k.exec_call(&mut st, Sysno::Ioctl, &[fd, cmd, 0x2000_0000, 0, 0, 0], &m);
        assert!(r < 0);
        let crash = st.crash.clone().expect("crash");
        assert_eq!(crash.title, "kmalloc bug in ctl_ioctl");
        assert_eq!(crash.cve.as_deref(), Some("CVE-2024-23851"));
        // Further calls are dead.
        assert_eq!(
            k.exec_call(&mut st, Sysno::Ioctl, &[fd, cmd, 0x2000_0000, 0, 0, 0], &m),
            -errno::EFAULT
        );
    }

    #[test]
    fn crash_signature_is_dense_and_depth_aware() {
        // dm kmalloc bug: faulting call is an ioctl on a directly
        // opened fd (chain depth 1), detected by the allocation-size
        // sanitizer, at the bug's own coverage block.
        let k = boot_dm();
        let bp = flagship::dm();
        let mut st = VmState::new();
        let fd = open_dm(&k, &mut st);
        let cmd = bp.cmd_value(bp.cmd("DM_DEV_CREATE").unwrap());
        let sdef = bp.arg_struct("dm_ioctl").unwrap();
        let (size, _) = sdef.size_align(&bp.structs);
        let off = sdef.offset_of("data_size", &bp.structs).unwrap() as usize;
        let mut bytes = vec![0u8; size as usize];
        bytes[off..off + 4].copy_from_slice(&0x7fff_ffffu32.to_le_bytes());
        let mut m = mem_with("/dev/mapper/control");
        m.write(0x2000_0000, bytes);
        let _ = k.exec_call(&mut st, Sysno::Ioctl, &[fd, cmd, 0x2000_0000, 0, 0, 0], &m);
        let sig = st.crash.clone().expect("crash").signature;
        assert_eq!(sig.sysno, Sysno::Ioctl);
        assert_eq!(sig.chain_depth, 1);
        assert_eq!(sig.sanitizer, SanitizerKind::Kmalloc);
        assert!(
            st.coverage.contains(sig.site),
            "site must be the covered faulting block"
        );

        // The rds payload bug reports under sendto at depth 1 with the
        // out-of-bounds sanitizer — a different signature entirely.
        let k = VKernel::boot(vec![flagship::rds()]);
        let mut st = VmState::new();
        let fd = k.exec_call(&mut st, Sysno::Socket, &[21, 5, 0, 0, 0, 0], &MemMap::new());
        let mut m = MemMap::new();
        m.write(0x3000_0000, vec![0u8; 128]);
        let _ = k.exec_call(
            &mut st,
            Sysno::Sendto,
            &[fd as u64, 0x3000_0000, 128, 0, 0, 0],
            &m,
        );
        let rds_sig = st.crash.clone().expect("crash").signature;
        assert_eq!(rds_sig.sysno, Sysno::Sendto);
        assert_eq!(rds_sig.chain_depth, 1);
        assert_eq!(rds_sig.sanitizer, SanitizerKind::OutOfBounds);
        assert_ne!(rds_sig, sig);
    }

    #[test]
    fn sequence_bug_requires_order() {
        let k = boot_dm();
        let bp = flagship::dm();
        let mut st = VmState::new();
        let fd = open_dm(&k, &mut st);
        let sdef = bp.arg_struct("dm_ioctl").unwrap();
        let (size, _) = sdef.size_align(&bp.structs);
        let mut m = mem_with("/dev/mapper/control");
        m.write(0x2000_0000, vec![0u8; size as usize]);
        let create = bp.cmd_value(bp.cmd("DM_DEV_CREATE").unwrap());
        let remove_all = bp.cmd_value(bp.cmd("DM_REMOVE_ALL").unwrap());
        // REMOVE_ALL alone: no crash.
        assert_eq!(
            k.exec_call(
                &mut st,
                Sysno::Ioctl,
                &[fd, remove_all, 0x2000_0000, 0, 0, 0],
                &m
            ),
            0
        );
        assert!(st.crash.is_none());
        // CREATE then REMOVE_ALL: CVE-2024-50277.
        assert_eq!(
            k.exec_call(
                &mut st,
                Sysno::Ioctl,
                &[fd, create, 0x2000_0000, 0, 0, 0],
                &m
            ),
            0
        );
        let _ = k.exec_call(
            &mut st,
            Sysno::Ioctl,
            &[fd, remove_all, 0x2000_0000, 0, 0, 0],
            &m,
        );
        assert_eq!(
            st.crash.clone().map(|c| c.title),
            Some("general protection fault in cleanup_mapped_device".into())
        );
    }

    #[test]
    fn kvm_fd_chain_executes() {
        let k = VKernel::boot(vec![
            flagship::kvm(),
            flagship::kvm_vm(),
            flagship::kvm_vcpu(),
        ]);
        let mut st = VmState::new();
        let mut m = MemMap::new();
        m.write(ARG_BASE_ADDR, b"/dev/kvm\0".to_vec());
        let kvm_fd = k.exec_call(&mut st, Sysno::Openat, &[0, ARG_BASE_ADDR, 2, 0, 0, 0], &m);
        assert!(kvm_fd >= 3);
        let kvm_bp = flagship::kvm();
        let create_vm = kvm_bp.cmd_value(kvm_bp.cmd("KVM_CREATE_VM").unwrap());
        let vm_fd = k.exec_call(
            &mut st,
            Sysno::Ioctl,
            &[kvm_fd as u64, create_vm, 0, 0, 0, 0],
            &m,
        );
        assert!(vm_fd > kvm_fd, "vm fd: {vm_fd}");
        let vm_bp = flagship::kvm_vm();
        let create_vcpu = vm_bp.cmd_value(vm_bp.cmd("KVM_CREATE_VCPU").unwrap());
        let vcpu_fd = k.exec_call(
            &mut st,
            Sysno::Ioctl,
            &[vm_fd as u64, create_vcpu, 0, 0, 0, 0],
            &m,
        );
        assert!(vcpu_fd > vm_fd, "vcpu fd: {vcpu_fd}");
        // KVM_RUN requires SET_REGS first (state machine).
        let vcpu_bp = flagship::kvm_vcpu();
        let run = vcpu_bp.cmd_value(vcpu_bp.cmd("KVM_RUN").unwrap());
        assert_eq!(
            k.exec_call(
                &mut st,
                Sysno::Ioctl,
                &[vcpu_fd as u64, run, 0, 0, 0, 0],
                &m
            ),
            -errno::EBUSY
        );
    }

    #[test]
    fn bind_with_address_at_u64_max_is_efault_not_overflow() {
        // The generator's dangling-resource fallback is u64::MAX, so
        // the address-validation path must treat pointer arithmetic
        // overflow as EFAULT rather than panicking.
        let k = VKernel::boot(vec![flagship::caif_stream()]);
        let mut st = VmState::new();
        let fd = k.exec_call(&mut st, Sysno::Socket, &[37, 1, 0, 0, 0, 0], &MemMap::new());
        assert!(fd >= 3);
        let r = k.exec_call(
            &mut st,
            Sysno::Bind,
            &[fd as u64, u64::MAX, 64, 0, 0, 0],
            &MemMap::new(),
        );
        assert_eq!(r, -errno::EFAULT);
    }

    #[test]
    fn socket_family_and_sendto_bug() {
        let k = VKernel::boot(vec![flagship::rds()]);
        let mut st = VmState::new();
        // Wrong family.
        assert_eq!(
            k.exec_call(&mut st, Sysno::Socket, &[9, 5, 0, 0, 0, 0], &MemMap::new()),
            -errno::EAFNOSUPPORT
        );
        // Right triple.
        let fd = k.exec_call(&mut st, Sysno::Socket, &[21, 5, 0, 0, 0, 0], &MemMap::new());
        assert!(fd >= 3);
        // sendto with a big payload triggers CVE-2024-23849.
        let mut m = MemMap::new();
        m.write(0x3000_0000, vec![0u8; 128]);
        let r = k.exec_call(
            &mut st,
            Sysno::Sendto,
            &[fd as u64, 0x3000_0000, 128, 0, 0, 0],
            &m,
        );
        assert!(r < 0);
        assert_eq!(
            st.crash.clone().map(|c| c.title),
            Some("UBSAN: array-index-out-of-bounds in rds_cmsg_recv".into())
        );
    }

    #[test]
    fn sockopt_level_checked() {
        let k = VKernel::boot(vec![flagship::rds()]);
        let mut st = VmState::new();
        let fd = k.exec_call(&mut st, Sysno::Socket, &[21, 5, 0, 0, 0, 0], &MemMap::new()) as u64;
        let mut m = MemMap::new();
        m.write(0x3000_0000, vec![0u8; 64]);
        // Wrong level.
        assert_eq!(
            k.exec_call(
                &mut st,
                Sysno::Setsockopt,
                &[fd, 1, 5, 0x3000_0000, 8, 0],
                &m
            ),
            -errno::ENOPROTOOPT
        );
        // Right level, RDS_RECVERR (int arg).
        let r = k.exec_call(
            &mut st,
            Sysno::Setsockopt,
            &[fd, 276, 5, 0x3000_0000, 8, 0],
            &m,
        );
        assert_eq!(r, 0);
    }

    #[test]
    fn fuel_exhaustion_is_counted_not_crashed() {
        let k = boot_dm();
        let mut st = VmState::new();
        // Two units cover the first two open blocks, then the
        // watchdog trips; no crash, and the retired coverage stays.
        st.set_fuel_limit(2);
        let _ = open_dm(&k, &mut st);
        assert!(st.fuel_exhausted());
        assert!(st.crash.is_none());
        assert!(!st.coverage.is_empty());
        let covered = st.coverage.clone();
        // Every further call is refused without touching coverage.
        let m = mem_with("/dev/mapper/control");
        let r = k.exec_call(&mut st, Sysno::Openat, &[0, ARG_BASE_ADDR, 2, 0, 0, 0], &m);
        assert_eq!(r, -errno::ENOMEM);
        assert_eq!(st.coverage, covered);
        // Reset clears the spent fuel but keeps the limit.
        st.reset();
        assert!(!st.fuel_exhausted());
        assert_eq!(st.fuel_spent(), 0);
        assert_eq!(st.fuel_limit(), 2);
    }

    #[test]
    fn generous_fuel_limit_changes_nothing() {
        let k = boot_dm();
        let mut unlimited = VmState::new();
        let mut fueled = VmState::new();
        fueled.set_fuel_limit(1 << 20);
        let _ = open_dm(&k, &mut unlimited);
        let _ = open_dm(&k, &mut fueled);
        assert_eq!(unlimited.coverage, fueled.coverage);
        assert!(!fueled.fuel_exhausted());
        assert!(fueled.fuel_spent() > 0, "covered blocks must be charged");
    }

    #[test]
    fn close_invalidates_fd() {
        let k = boot_dm();
        let mut st = VmState::new();
        let fd = open_dm(&k, &mut st);
        assert_eq!(
            k.exec_call(&mut st, Sysno::Close, &[fd, 0, 0, 0, 0, 0], &MemMap::new()),
            0
        );
        assert_eq!(
            k.exec_call(&mut st, Sysno::Ioctl, &[fd, 0, 0, 0, 0, 0], &MemMap::new()),
            -errno::EBADF
        );
    }

    #[test]
    fn coverage_blocks_disjoint_across_handlers() {
        let k = VKernel::boot(vec![flagship::dm(), flagship::cec()]);
        let mut st1 = VmState::new();
        let _ = open_dm(&k, &mut st1);
        let mut st2 = VmState::new();
        let mut m = MemMap::new();
        m.write(ARG_BASE_ADDR, b"/dev/cec0\0".to_vec());
        let r = k.exec_call(&mut st2, Sysno::Openat, &[0, ARG_BASE_ADDR, 2, 0, 0, 0], &m);
        assert!(r >= 3);
        assert!(st1.coverage.is_disjoint(&st2.coverage));
    }

    #[test]
    fn trace_log_records_merged_block_runs() {
        let k = boot_dm();
        let mut st = VmState::new();
        st.trace_mut().set_enabled(true);
        let _ = open_dm(&k, &mut st);
        // dm's 4 open blocks are contiguous: one merged Block event.
        assert_eq!(
            st.trace().events(),
            &[TraceEvent::Block {
                start: BLOCK_STRIDE,
                len: 4
            }]
        );
        // The event stream retires exactly the covered blocks, in
        // order — the invariant the replayer's cross-check rests on.
        let mut from_trace = std::collections::BTreeSet::new();
        for ev in st.trace().events() {
            if let TraceEvent::Block { start, len } = ev {
                from_trace.extend((0..u64::from(*len)).map(|i| start + i));
            }
        }
        assert_eq!(from_trace, st.coverage.to_btree_set());
    }

    #[test]
    fn tracing_never_changes_execution_results() {
        let k = boot_dm();
        let run = |traced: bool| {
            let mut st = VmState::new();
            st.trace_mut().set_enabled(traced);
            let fd = open_dm(&k, &mut st);
            let r = k.exec_call(&mut st, Sysno::Read, &[fd, 0, 0, 0, 0, 0], &MemMap::new());
            (st.coverage.clone(), st.crash.clone(), r)
        };
        let (cov_off, crash_off, ret_off) = run(false);
        let (cov_on, crash_on, ret_on) = run(true);
        assert_eq!(cov_off, cov_on);
        assert_eq!(crash_off, crash_on);
        assert_eq!(ret_off, ret_on);
    }

    #[test]
    fn reset_clears_events_but_keeps_tracing_enabled() {
        let k = boot_dm();
        let mut st = VmState::new();
        st.trace_mut().set_enabled(true);
        let _ = open_dm(&k, &mut st);
        assert!(!st.trace().events().is_empty());
        st.reset();
        assert!(st.trace().events().is_empty());
        assert!(st.trace().enabled());
        // Disabled by default: nothing is buffered.
        let mut off = VmState::new();
        let _ = open_dm(&k, &mut off);
        assert!(off.trace().events().is_empty());
    }

    #[test]
    fn cfg_runs_cover_every_coverable_block() {
        // Every block the kernel can retire must belong to exactly one
        // run (runs are disjoint), so the prediction table never
        // contradicts itself.
        let k = VKernel::boot(vec![flagship::dm(), flagship::cec(), flagship::sg()]);
        let runs = k.cfg_runs();
        let mut seen = std::collections::BTreeSet::new();
        for (start, len, _) in &runs {
            for b in 0..*len {
                assert!(seen.insert(start + b), "block {} in two runs", start + b);
            }
        }
        // Observed open-path coverage sits inside the advertised runs.
        let mut st = VmState::new();
        let _ = open_dm(&k, &mut st);
        for b in st.coverage.to_btree_set() {
            assert!(seen.contains(&b), "covered block {b} missing from cfg_runs");
        }
    }
}
