//! Fact → syzlang assembly: turn the LLM's structured findings into a
//! specification file.

use kgpt_extractor::{HandlerKind, OpHandler};
use kgpt_llm::oracle::prefix_of_ops_var;
use kgpt_llm::protocol::{ArgSig, Fact};
use kgpt_syzlang as syz;
use syz::{ConstExpr, Dir, IntBits, Item, Param, Resource, SpecFile, Syscall, Type};

/// Assemble a specification from the facts gathered for one handler.
///
/// Returns `None` when the facts cannot produce a usable spec (no
/// producer could be derived and no commands were found).
#[must_use]
pub fn assemble_spec(handler: &OpHandler, facts: &[Fact]) -> Option<SpecFile> {
    let prefix = prefix_of_ops_var(&handler.ops_var);
    let fd_res = match handler.kind {
        HandlerKind::Driver => format!("fd_{prefix}"),
        HandlerKind::Socket => format!("sock_{prefix}"),
    };
    let mut items: Vec<Item> = Vec::new();
    items.push(Item::Resource(Resource {
        name: fd_res.clone(),
        base: match handler.kind {
            HandlerKind::Driver => "fd".into(),
            HandlerKind::Socket => "sock".into(),
        },
        values: Vec::new(),
    }));

    let mut have_producer = false;
    // Producer syscall.
    match handler.kind {
        HandlerKind::Driver => {
            if let Some(path) = facts.iter().find_map(|f| match f {
                Fact::DevPath(p) => Some(p.clone()),
                _ => None,
            }) {
                items.push(Item::Syscall(Syscall {
                    base: "openat".into(),
                    variant: Some(prefix.clone()),
                    params: vec![
                        Param::new("dir", Type::sym_const("AT_FDCWD", IntBits::I64)),
                        Param::new(
                            "file",
                            Type::ptr(Dir::In, Type::StringLit { values: vec![path] }),
                        ),
                        Param::new(
                            "flags",
                            Type::Const {
                                value: ConstExpr::Num(2),
                                bits: IntBits::I64,
                            },
                        ),
                        Param::new(
                            "mode",
                            Type::Const {
                                value: ConstExpr::Num(0),
                                bits: IntBits::I64,
                            },
                        ),
                    ],
                    ret: Some(fd_res.clone()),
                }));
                have_producer = true;
            }
        }
        HandlerKind::Socket => {
            if let Some((family_name, sock_type, proto)) = facts.iter().find_map(|f| match f {
                Fact::Socket {
                    family_name: Some(n),
                    sock_type,
                    proto,
                    ..
                } => Some((n.clone(), sock_type.unwrap_or(1), proto.unwrap_or(0))),
                _ => None,
            }) {
                items.push(Item::Syscall(Syscall {
                    base: "socket".into(),
                    variant: Some(prefix.clone()),
                    params: vec![
                        Param::new("domain", Type::sym_const(&family_name, IntBits::I64)),
                        Param::new(
                            "type",
                            Type::Const {
                                value: ConstExpr::Num(sock_type),
                                bits: IntBits::I64,
                            },
                        ),
                        Param::new(
                            "proto",
                            Type::Const {
                                value: ConstExpr::Num(proto),
                                bits: IntBits::I64,
                            },
                        ),
                    ],
                    ret: Some(fd_res.clone()),
                }));
                have_producer = true;
            }
        }
    }

    // Sub-handler fd resources created by commands.
    let creates: Vec<(&str, String)> = facts
        .iter()
        .filter_map(|f| match f {
            Fact::CreatesFd { fops_var, cmd } => {
                Some((cmd.as_str(), format!("fd_{}", prefix_of_ops_var(fops_var))))
            }
            _ => None,
        })
        .collect();
    for (_, res) in &creates {
        if !items
            .iter()
            .any(|i| matches!(i, Item::Resource(r) if &r.name == res))
        {
            items.push(Item::Resource(Resource {
                name: res.clone(),
                base: "fd".into(),
                values: Vec::new(),
            }));
        }
    }
    // Issued resources (queue ids etc.).
    for f in facts {
        if let Fact::ResourceDef { name } = f {
            if !items
                .iter()
                .any(|i| matches!(i, Item::Resource(r) if &r.name == name))
            {
                items.push(Item::Resource(Resource {
                    name: name.clone(),
                    base: "int32".into(),
                    values: Vec::new(),
                }));
            }
        }
    }

    // Socket generic calls.
    let level_name = facts.iter().find_map(|f| match f {
        Fact::Socket {
            level_name: Some(l),
            ..
        } => Some(l.clone()),
        _ => None,
    });
    if handler.kind == HandlerKind::Socket {
        let addr_ty = || Type::Named(format!("{prefix}_sockaddr_{prefix}"));
        for f in facts {
            let Fact::SockCallFn { call, .. } = f else {
                continue;
            };
            let fd = || Param::new("fd", Type::Resource(fd_res.clone()));
            let bytesize = |t: &str| Type::Bytesize {
                target: t.into(),
                bits: IntBits::I64,
            };
            let zero = || Type::Const {
                value: ConstExpr::Num(0),
                bits: IntBits::I64,
            };
            let call_sys = match call.as_str() {
                "bind" => Syscall {
                    base: "bind".into(),
                    variant: Some(prefix.clone()),
                    params: vec![
                        fd(),
                        Param::new("addr", Type::ptr(Dir::In, addr_ty())),
                        Param::new("len", bytesize("addr")),
                    ],
                    ret: None,
                },
                "connect" => Syscall {
                    base: "connect".into(),
                    variant: Some(prefix.clone()),
                    params: vec![
                        fd(),
                        Param::new("addr", Type::ptr(Dir::In, addr_ty())),
                        Param::new("len", bytesize("addr")),
                    ],
                    ret: None,
                },
                "sendmsg" => Syscall {
                    base: "sendto".into(),
                    variant: Some(prefix.clone()),
                    params: vec![
                        fd(),
                        Param::new("buf", Type::ptr(Dir::In, Type::buffer())),
                        Param::new("len", bytesize("buf")),
                        Param::new("flags", zero()),
                        Param::new("addr", Type::ptr(Dir::In, addr_ty())),
                        Param::new("addrlen", bytesize("addr")),
                    ],
                    ret: None,
                },
                "recvmsg" => Syscall {
                    base: "recvfrom".into(),
                    variant: Some(prefix.clone()),
                    params: vec![
                        fd(),
                        Param::new("buf", Type::ptr(Dir::Out, Type::buffer())),
                        Param::new("len", bytesize("buf")),
                        Param::new("flags", zero()),
                        Param::new("addr", Type::ptr(Dir::Out, addr_ty())),
                        Param::new("addrlen", bytesize("addr")),
                    ],
                    ret: None,
                },
                "accept" => Syscall {
                    base: "accept".into(),
                    variant: Some(prefix.clone()),
                    params: vec![
                        fd(),
                        Param::new("addr", Type::ptr(Dir::Out, addr_ty())),
                        Param::new("len", Type::ptr(Dir::In, Type::int(IntBits::I32))),
                    ],
                    ret: Some(fd_res.clone()),
                },
                _ => continue,
            };
            push_unique_syscall(&mut items, call_sys);
        }
    }

    // Commands.
    let mut any_cmd = false;
    for f in facts {
        let Fact::Ident { name, arg, dir, .. } = f else {
            continue;
        };
        any_cmd = true;
        let d = Dir::from_keyword(dir).unwrap_or(Dir::InOut);
        let arg_ty = match arg {
            ArgSig::None => Type::Const {
                value: ConstExpr::Num(0),
                bits: IntBits::I64,
            },
            ArgSig::Int => Type::int(IntBits::I64),
            ArgSig::StructPtr(c) => Type::ptr(d, Type::Named(format!("{prefix}_{c}"))),
            ArgSig::IdPtr(res) => Type::ptr(d, Type::Named(res.clone())),
        };
        let ret = creates
            .iter()
            .find(|(cmd, _)| cmd == name)
            .map(|(_, res)| res.clone());
        let sys = match handler.kind {
            HandlerKind::Driver => Syscall {
                base: "ioctl".into(),
                variant: Some(name.clone()),
                params: vec![
                    Param::new("fd", Type::Resource(fd_res.clone())),
                    Param::new("cmd", Type::sym_const(name, IntBits::I64)),
                    Param::new("arg", arg_ty),
                ],
                ret,
            },
            HandlerKind::Socket => Syscall {
                base: "setsockopt".into(),
                variant: Some(name.clone()),
                params: vec![
                    Param::new("fd", Type::Resource(fd_res.clone())),
                    Param::new(
                        "level",
                        match &level_name {
                            Some(l) => Type::sym_const(l, IntBits::I64),
                            None => Type::Const {
                                value: ConstExpr::Num(0),
                                bits: IntBits::I64,
                            },
                        },
                    ),
                    Param::new("opt", Type::sym_const(name, IntBits::I64)),
                    Param::new("val", arg_ty),
                    Param::new(
                        "len",
                        Type::Bytesize {
                            target: "val".into(),
                            bits: IntBits::I64,
                        },
                    ),
                ],
                ret,
            },
        };
        push_unique_syscall(&mut items, sys);
    }

    // Types and flag sets.
    for f in facts {
        match f {
            Fact::SyzType { text, .. } => {
                if let Ok(parsed) = syz::parse("llm", text) {
                    for item in parsed.items {
                        let name = item.name();
                        if !items.iter().any(|i| i.name() == name) {
                            items.push(item);
                        }
                    }
                }
            }
            Fact::FlagSet { name, values } if !items.iter().any(|i| i.name() == *name) => {
                items.push(Item::Flags(syz::FlagsDef {
                    name: name.clone(),
                    values: values.iter().map(|v| ConstExpr::Sym(v.clone())).collect(),
                }));
            }
            _ => {}
        }
    }

    // Anonymous sub-handlers have no producer of their own; their fd is
    // produced by the parent's CreatesFd command. A spec with commands
    // but no producer is still useful in a merged suite.
    if !have_producer && !any_cmd {
        return None;
    }
    Some(SpecFile {
        name: format!("{prefix}_kgpt.txt"),
        items,
    })
}

fn push_unique_syscall(items: &mut Vec<Item>, sys: Syscall) {
    let name = sys.name();
    if !items
        .iter()
        .any(|i| matches!(i, Item::Syscall(s) if s.name() == name))
    {
        items.push(Item::Syscall(sys));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn driver_handler() -> OpHandler {
        OpHandler {
            kind: HandlerKind::Driver,
            ops_var: "_dm_fops".into(),
            file: "dm.c".into(),
            ioctl_fn: Some("dm_ctl_ioctl".into()),
            setsockopt_fn: None,
            open_fn: None,
            usage: vec![],
        }
    }

    #[test]
    fn assembles_driver_spec() {
        let facts = vec![
            Fact::DevPath("/dev/mapper/control".into()),
            Fact::Ident {
                name: "DM_VERSION".into(),
                handler: Some("dm_dm_version".into()),
                arg: ArgSig::StructPtr("dm_ioctl".into()),
                dir: "inout".into(),
            },
            Fact::SyzType {
                c_name: "dm_ioctl".into(),
                text: "dm_dm_ioctl {\n\tversion array[int32, 3]\n\tdata_size int32\n}".into(),
            },
        ];
        let spec = assemble_spec(&driver_handler(), &facts).unwrap();
        let names: Vec<String> = spec.syscalls().map(Syscall::name).collect();
        assert!(names.contains(&"openat$dm".to_string()));
        assert!(names.contains(&"ioctl$DM_VERSION".to_string()));
        assert_eq!(spec.structs().count(), 1);
        // And it round-trips through the printer.
        let text = syz::print_file(&spec);
        assert!(syz::parse("x", &text).is_ok(), "{text}");
    }

    #[test]
    fn no_facts_no_spec() {
        assert!(assemble_spec(&driver_handler(), &[]).is_none());
    }

    #[test]
    fn duplicate_idents_deduped() {
        let facts = vec![
            Fact::DevPath("/dev/x".into()),
            Fact::Ident {
                name: "A".into(),
                handler: None,
                arg: ArgSig::Int,
                dir: "in".into(),
            },
            Fact::Ident {
                name: "A".into(),
                handler: None,
                arg: ArgSig::Int,
                dir: "in".into(),
            },
        ];
        let spec = assemble_spec(&driver_handler(), &facts).unwrap();
        assert_eq!(spec.syscalls().count(), 2); // openat + one ioctl
    }

    #[test]
    fn creates_fd_sets_return_resource() {
        let facts = vec![
            Fact::DevPath("/dev/kvm".into()),
            Fact::CreatesFd {
                fops_var: "_kvm_vm_fops".into(),
                cmd: "KVM_CREATE_VM".into(),
            },
            Fact::Ident {
                name: "KVM_CREATE_VM".into(),
                handler: None,
                arg: ArgSig::Int,
                dir: "in".into(),
            },
        ];
        let mut h = driver_handler();
        h.ops_var = "_kvm_fops".into();
        let spec = assemble_spec(&h, &facts).unwrap();
        let create = spec
            .syscalls()
            .find(|s| s.name() == "ioctl$KVM_CREATE_VM")
            .unwrap();
        assert_eq!(create.ret.as_deref(), Some("fd_kvm_vm"));
        assert!(spec.resources().any(|r| r.name == "fd_kvm_vm"));
    }

    #[test]
    fn socket_assembly() {
        let h = OpHandler {
            kind: HandlerKind::Socket,
            ops_var: "rds_proto_ops".into(),
            file: "rds.c".into(),
            ioctl_fn: None,
            setsockopt_fn: Some("rds_setsockopt".into()),
            open_fn: None,
            usage: vec![],
        };
        let facts = vec![
            Fact::Socket {
                family_name: Some("AF_RDS".into()),
                sock_type: Some(5),
                proto: Some(0),
                level_name: Some("SOL_RDS".into()),
            },
            Fact::SockCallFn {
                call: "bind".into(),
                func: "rds_bind".into(),
            },
            Fact::SockCallFn {
                call: "sendmsg".into(),
                func: "rds_sendmsg".into(),
            },
            Fact::Ident {
                name: "RDS_RECVERR".into(),
                handler: None,
                arg: ArgSig::Int,
                dir: "in".into(),
            },
            Fact::SyzType {
                c_name: "sockaddr_rds".into(),
                text:
                    "rds_sockaddr_rds {\n\tfamily const[0x15, int16]\n\tport int16\n\taddr int32\n}"
                        .into(),
            },
        ];
        let spec = assemble_spec(&h, &facts).unwrap();
        let names: Vec<String> = spec.syscalls().map(Syscall::name).collect();
        assert!(names.contains(&"socket$rds".to_string()));
        assert!(names.contains(&"bind$rds".to_string()));
        assert!(names.contains(&"sendto$rds".to_string()));
        assert!(names.contains(&"setsockopt$RDS_RECVERR".to_string()));
    }

    #[test]
    fn opaque_family_yields_no_producer() {
        let h = OpHandler {
            kind: HandlerKind::Socket,
            ops_var: "x_proto_ops".into(),
            file: "x.c".into(),
            ioctl_fn: None,
            setsockopt_fn: Some("x_setsockopt".into()),
            open_fn: None,
            usage: vec![],
        };
        let facts = vec![Fact::Socket {
            family_name: None,
            sock_type: Some(1),
            proto: Some(0),
            level_name: Some("SOL_X".into()),
        }];
        // No commands and no producer → no spec.
        assert!(assemble_spec(&h, &facts).is_none());
    }
}
