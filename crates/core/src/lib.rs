//! # kgpt-core
//!
//! KernelGPT itself (paper §3): LLM-guided **iterative** syscall
//! specification generation, followed by validation and repair.
//!
//! For each operation handler found by the extractor, the pipeline runs
//! three staged analyses — identifier deduction, type recovery and
//! dependency analysis — each following Algorithm 1: query the LLM with
//! the currently-gathered source, collect `UNKNOWN` targets from the
//! completion, fetch their code with `ExtractCode`, and re-query until
//! nothing is missing or `MAX_ITER` is reached. The facts are then
//! assembled into a syzlang [`kgpt_syzlang::SpecFile`], validated with the
//! `kgpt-syzlang` validator (the syz-extract/syz-generate analogue),
//! and — if errors are reported — sent back to the LLM for one repair
//! round together with the error messages (§3.2).

pub mod assemble;
pub mod pipeline;

pub use assemble::assemble_spec;
pub use pipeline::{GenerationReport, HandlerOutcome, KernelGpt, Strategy, MAX_ITER};
