//! The KernelGPT pipeline: Algorithm 1 + staged analyses + repair.

use crate::assemble::assemble_spec;
use kgpt_csrc::Corpus;
use kgpt_extractor::{extract_code, HandlerKind, OpHandler};
use kgpt_llm::oracle::prefix_of_ops_var;
use kgpt_llm::protocol::{Fact, Prompt, Task};
use kgpt_llm::{ChatRequest, LanguageModel};
use kgpt_syzlang::{ConstDb, SpecCache, SpecFile};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Iteration cap of Algorithm 1 (paper default: 5).
pub const MAX_ITER: usize = 5;

/// Generation strategy — iterative multi-stage (the contribution) or
/// all-in-one (the §5.2.3 ablation baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Three staged analyses, each iterating on UNKNOWN targets.
    Iterative,
    /// Everything in one prompt, one completion.
    AllInOne,
}

/// Outcome of generating a spec for one handler.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HandlerOutcome {
    /// The ops-variable name of the handler.
    pub ops_var: String,
    /// Driver or socket.
    pub kind: HandlerKind,
    /// The assembled spec, if any.
    pub spec: Option<SpecFile>,
    /// LLM round-trips used.
    pub queries: usize,
    /// Algorithm 1 iterations used in the identifier stage.
    pub iterations: usize,
    /// Whether a repair round was needed **and** fixed the spec.
    pub repaired: bool,
    /// Whether the final spec validates (in the merged suite).
    pub valid: bool,
    /// Validation errors remaining (empty when valid).
    pub errors: Vec<String>,
}

impl HandlerOutcome {
    /// Number of syscalls described.
    #[must_use]
    pub fn syscall_count(&self) -> usize {
        self.spec.as_ref().map_or(0, |s| s.syscalls().count())
    }

    /// Number of struct/union types described.
    #[must_use]
    pub fn type_count(&self) -> usize {
        self.spec.as_ref().map_or(0, |s| s.structs().count())
    }
}

/// A full generation run over many handlers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GenerationReport {
    /// Per-handler outcomes, in input order.
    pub outcomes: Vec<HandlerOutcome>,
}

impl GenerationReport {
    /// All valid spec files.
    #[must_use]
    pub fn specs(&self) -> Vec<SpecFile> {
        self.outcomes
            .iter()
            .filter(|o| o.valid)
            .filter_map(|o| o.spec.clone())
            .collect()
    }

    /// Count of valid handlers (Table 1 "# Valid").
    #[must_use]
    pub fn valid_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.valid).count()
    }

    /// Count of valid handlers that needed the repair round
    /// (Table 1's parenthesised "Fixed").
    #[must_use]
    pub fn repaired_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.valid && o.repaired)
            .count()
    }

    /// Total syscalls described by valid specs (Table 2).
    #[must_use]
    pub fn total_syscalls(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.valid)
            .map(HandlerOutcome::syscall_count)
            .sum()
    }

    /// Total types described by valid specs (Table 2).
    #[must_use]
    pub fn total_types(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.valid)
            .map(HandlerOutcome::type_count)
            .sum()
    }
}

/// The KernelGPT engine.
pub struct KernelGpt<'a> {
    model: &'a dyn LanguageModel,
    corpus: &'a Corpus,
    strategy: Strategy,
    max_iter: usize,
    /// Worker threads for `generate_all` (0 = one per available CPU).
    threads: usize,
}

/// Compile-time proof that an engine can be shared by reference
/// across generation worker threads ([`LanguageModel`] is `Sync`, the
/// corpus is immutable).
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<KernelGpt<'_>>();
};

impl<'a> KernelGpt<'a> {
    /// Create an engine over a source corpus with a model.
    #[must_use]
    pub fn new(model: &'a dyn LanguageModel, corpus: &'a Corpus) -> KernelGpt<'a> {
        KernelGpt {
            model,
            corpus,
            strategy: Strategy::Iterative,
            max_iter: MAX_ITER,
            threads: 0,
        }
    }

    /// Switch strategy (ablation).
    #[must_use]
    pub fn with_strategy(mut self, strategy: Strategy) -> KernelGpt<'a> {
        self.strategy = strategy;
        self
    }

    /// Override the iteration cap.
    #[must_use]
    pub fn with_max_iter(mut self, max_iter: usize) -> KernelGpt<'a> {
        self.max_iter = max_iter;
        self
    }

    /// Set the worker thread count for [`KernelGpt::generate_all`]
    /// (0 = one per available CPU). Pure throughput knob: every
    /// handler's outcome is a deterministic function of the handler
    /// alone and results are merged in handler order, so the report
    /// is bit-identical at any thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> KernelGpt<'a> {
        self.threads = threads;
        self
    }

    /// Generate specs for a set of handlers, validate the merged suite,
    /// and repair invalid ones once.
    ///
    /// Handlers are partitioned into logical shards (one per handler)
    /// executed by the configured worker threads; the model and corpus
    /// are shared by reference. Mirrors `ShardedCampaign` in
    /// `kgpt-fuzzer`: the thread count never changes the report.
    pub fn generate_all(&self, handlers: &[OpHandler], consts: &ConstDb) -> GenerationReport {
        let mut outcomes: Vec<HandlerOutcome> =
            self.run_indexed(handlers.len(), |i| self.generate_one(&handlers[i], 0));
        // Merged validation (sub-handler fds are produced cross-file).
        self.validate_merged(&mut outcomes, consts);
        // Repair round for invalid handlers that did produce something.
        let to_repair: Vec<usize> = outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| !o.valid && o.spec.is_some())
            .map(|(i, _)| i)
            .collect();
        let repairs: Vec<Option<HandlerOutcome>> = self.run_indexed(to_repair.len(), |k| {
            let idx = to_repair[k];
            self.repair_one(&handlers[idx], &outcomes[idx].errors)
        });
        for (idx, new) in to_repair.into_iter().zip(repairs) {
            if let Some(new) = new {
                let queries = outcomes[idx].queries + new.queries;
                outcomes[idx] = HandlerOutcome {
                    queries,
                    repaired: true,
                    ..new
                };
            }
        }
        self.validate_merged(&mut outcomes, consts);
        // A handler that was valid on the first pass keeps repaired=false;
        // one that became valid after the repair pass keeps repaired=true.
        GenerationReport { outcomes }
    }

    /// Run `f` over indices `0..n` on the configured worker threads
    /// and return the results in index order. Each index is one
    /// logical shard pulled from a shared atomic counter; slot `i`
    /// only ever receives result `i`, so the merge is deterministic
    /// regardless of which thread computed what.
    fn run_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let threads = match self.threads {
            0 => std::thread::available_parallelism().map_or(1, usize::from),
            t => t,
        }
        .clamp(1, n.max(1));
        if threads <= 1 {
            return (0..n).map(f).collect();
        }
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(i);
                    *slots[i].lock().expect("generation slot poisoned") = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("generation slot poisoned")
                    .expect("shard ran")
            })
            .collect()
    }

    fn validate_merged(&self, outcomes: &mut [HandlerOutcome], consts: &ConstDb) {
        let files: Vec<SpecFile> = outcomes.iter().filter_map(|o| o.spec.clone()).collect();
        // Cached compile: when the repair round changed nothing (the
        // common case), the post-repair validation is a pure hit.
        let db = SpecCache::global().get_or_build(&files);
        let errors = kgpt_syzlang::validate::validate(&db, consts);
        for o in outcomes.iter_mut() {
            let Some(spec) = &o.spec else {
                o.valid = false;
                continue;
            };
            let own_names: BTreeSet<String> = spec.items.iter().map(|i| i.name()).collect();
            let mut own_errors: Vec<String> = errors
                .iter()
                .filter(|e| own_names.contains(&e.item))
                .map(ToString::to_string)
                .collect();
            // A description that recovered no commands at all (deep
            // runtime dispatch) is not a usable spec, even if the
            // producer line alone validates.
            let cmds = spec
                .syscalls()
                .filter(|s| s.base == "ioctl" || s.base == "setsockopt")
                .count();
            if cmds == 0 {
                own_errors.push(format!(
                    "in `{}`: no commands could be recovered",
                    o.ops_var
                ));
            }
            o.valid = own_errors.is_empty();
            o.errors = own_errors;
        }
    }

    /// Generate a spec for one handler (no merged validation).
    #[must_use]
    pub fn generate_one(&self, handler: &OpHandler, attempt: u32) -> HandlerOutcome {
        match self.strategy {
            Strategy::Iterative => self.generate_iterative(handler, attempt),
            Strategy::AllInOne => self.generate_all_in_one(handler, attempt),
        }
    }

    fn repair_one(&self, handler: &OpHandler, errors: &[String]) -> Option<HandlerOutcome> {
        // §3.2: re-consult the LLM with the error messages. The oracle
        // redoes its analysis without the first-pass defect; a real LLM
        // fixes the lines the validator complained about. The repair
        // round uses the same strategy as generation (the all-in-one
        // ablation must not be silently upgraded to iterative).
        let mut o = match self.strategy {
            Strategy::Iterative => self.generate_with_task_errors(handler, 1, errors),
            Strategy::AllInOne => self.generate_all_in_one(handler, 1),
        };
        o.repaired = true;
        Some(o)
    }

    fn generate_iterative(&self, handler: &OpHandler, attempt: u32) -> HandlerOutcome {
        self.generate_with_task_errors(handler, attempt, &[])
    }

    fn generate_with_task_errors(
        &self,
        handler: &OpHandler,
        attempt: u32,
        errors: &[String],
    ) -> HandlerOutcome {
        let mut queries = 0usize;
        let mut facts: Vec<Fact> = Vec::new();
        let mut sources = self.initial_sources(handler);
        let usage = self.usage_sources(handler);

        // ---- Stage 1: identifier deduction (Algorithm 1) ----
        let target = match handler.kind {
            HandlerKind::Driver => handler.ioctl_fn.clone(),
            HandlerKind::Socket => handler.setsockopt_fn.clone(),
        };
        let mut iterations = 0usize;
        let mut fetched: BTreeSet<String> = BTreeSet::new();
        for _ in 0..self.max_iter {
            iterations += 1;
            let prompt = Prompt {
                task: Some(if errors.is_empty() {
                    Task::Identifier
                } else {
                    Task::Repair
                }),
                target_func: target.clone(),
                handler_var: Some(handler.ops_var.clone()),
                want_structs: vec![],
                source: sources.clone(),
                usage: usage.clone(),
                known: facts.clone(),
                errors: errors.to_vec(),
            };
            let resp = self.chat(&prompt, attempt);
            queries += 1;
            let new_facts = kgpt_llm::protocol::parse_facts(&resp);
            let unknowns = self.fetch_unknowns(&new_facts, &mut sources, &mut fetched);
            merge_facts(&mut facts, new_facts);
            if unknowns == 0 {
                break;
            }
        }

        // ---- Stage 2: type recovery (Algorithm 1) ----
        let mut wants: BTreeSet<String> = facts
            .iter()
            .filter_map(|f| match f {
                Fact::Ident {
                    arg: kgpt_llm::protocol::ArgSig::StructPtr(c),
                    ..
                } => Some(c.clone()),
                _ => None,
            })
            .collect();
        if handler.kind == HandlerKind::Socket {
            let prefix = prefix_of_ops_var(&handler.ops_var);
            wants.insert(format!("sockaddr_{prefix}"));
        }
        // Gather macros from the handler's file so flag sets resolve,
        // plus the per-command handler functions for role inference.
        self.add_file_macros(handler, &mut sources);
        for f in &facts {
            if let Fact::Ident {
                handler: Some(hf), ..
            } = f
            {
                self.fetch(hf, &mut sources, &mut fetched);
            }
        }
        for _ in 0..self.max_iter {
            if wants.is_empty() {
                break;
            }
            for w in &wants {
                self.fetch(w, &mut sources, &mut fetched);
            }
            let prompt = Prompt {
                task: Some(Task::Types),
                target_func: None,
                handler_var: Some(handler.ops_var.clone()),
                want_structs: wants.iter().cloned().collect(),
                source: sources.clone(),
                usage: vec![],
                known: facts.clone(),
                errors: errors.to_vec(),
            };
            let resp = self.chat(&prompt, attempt);
            queries += 1;
            let new_facts = kgpt_llm::protocol::parse_facts(&resp);
            // New wants: structs the LLM flagged as unknown.
            let mut next: BTreeSet<String> = new_facts
                .iter()
                .filter_map(|f| match f {
                    Fact::UnknownStruct(n) => Some(n.clone()),
                    _ => None,
                })
                .collect();
            // Resolved structs are no longer wanted.
            for f in &new_facts {
                if let Fact::SyzType { c_name, .. } = f {
                    next.remove(c_name);
                }
            }
            merge_facts(&mut facts, new_facts);
            next.retain(|n| {
                !facts
                    .iter()
                    .any(|f| matches!(f, Fact::SyzType { c_name, .. } if c_name == n))
            });
            wants = next;
        }

        // ---- Stage 3: dependency analysis ----
        let prompt = Prompt {
            task: Some(Task::Dependency),
            target_func: target.clone(),
            handler_var: Some(handler.ops_var.clone()),
            want_structs: vec![],
            source: sources.clone(),
            usage: usage.clone(),
            known: facts.clone(),
            errors: errors.to_vec(),
        };
        let resp = self.chat(&prompt, attempt);
        queries += 1;
        merge_facts(&mut facts, kgpt_llm::protocol::parse_facts(&resp));

        let spec = assemble_spec(handler, &facts);
        HandlerOutcome {
            ops_var: handler.ops_var.clone(),
            kind: handler.kind,
            spec,
            queries,
            iterations,
            repaired: false,
            valid: false,
            errors: Vec::new(),
        }
    }

    fn generate_all_in_one(&self, handler: &OpHandler, attempt: u32) -> HandlerOutcome {
        // Stuff *everything* related into one prompt: the entire source
        // file of the handler. Big drivers overflow the context window.
        let mut sources = Vec::new();
        if let Some(file) = self.corpus.files().iter().find(|f| f.name == handler.file) {
            sources.extend(file.items.iter().map(|i| i.text.clone()));
        }
        let target = match handler.kind {
            HandlerKind::Driver => handler.ioctl_fn.clone(),
            HandlerKind::Socket => handler.setsockopt_fn.clone(),
        };
        let prompt = Prompt {
            task: Some(Task::AllInOne),
            target_func: target,
            handler_var: Some(handler.ops_var.clone()),
            want_structs: vec![],
            source: sources,
            usage: self.usage_sources(handler),
            known: vec![],
            errors: vec![],
        };
        let resp = self.chat(&prompt, attempt);
        let facts = kgpt_llm::protocol::parse_facts(&resp);
        let spec = assemble_spec(handler, &facts);
        HandlerOutcome {
            ops_var: handler.ops_var.clone(),
            kind: handler.kind,
            spec,
            queries: 1,
            iterations: 1,
            repaired: false,
            valid: false,
            errors: Vec::new(),
        }
    }

    fn chat(&self, prompt: &Prompt, attempt: u32) -> String {
        let mut req = ChatRequest::new(prompt.render());
        req.attempt = attempt;
        self.model.chat(&req).text
    }

    fn initial_sources(&self, handler: &OpHandler) -> Vec<String> {
        let mut out = Vec::new();
        let entry = match handler.kind {
            HandlerKind::Driver => handler.ioctl_fn.as_deref(),
            HandlerKind::Socket => handler.setsockopt_fn.as_deref(),
        };
        if let Some(f) = entry.and_then(|n| extract_code(self.corpus, n)) {
            out.push(f.to_string());
        }
        out
    }

    fn usage_sources(&self, handler: &OpHandler) -> Vec<String> {
        let mut usage = handler.usage.clone();
        if let Some(def) = extract_code(self.corpus, &handler.ops_var) {
            usage.push(def.to_string());
        }
        usage
    }

    fn add_file_macros(&self, handler: &OpHandler, sources: &mut Vec<String>) {
        if let Some(file) = self.corpus.files().iter().find(|f| f.name == handler.file) {
            for item in &file.items {
                if matches!(item.kind, kgpt_csrc::ast::CItemKind::Macro(_))
                    && !sources.contains(&item.text)
                {
                    sources.push(item.text.clone());
                }
            }
        }
    }

    fn fetch(&self, name: &str, sources: &mut Vec<String>, fetched: &mut BTreeSet<String>) -> bool {
        if !fetched.insert(name.to_string()) {
            return false;
        }
        if let Some(code) = extract_code(self.corpus, name) {
            if !sources.iter().any(|s| s == code) {
                sources.push(code.to_string());
                return true;
            }
        }
        false
    }

    /// Fetch code for every UNKNOWN target; returns how many new pieces
    /// of source were added.
    fn fetch_unknowns(
        &self,
        facts: &[Fact],
        sources: &mut Vec<String>,
        fetched: &mut BTreeSet<String>,
    ) -> usize {
        let mut added = 0;
        for f in facts {
            let name = match f {
                Fact::UnknownFunc { name, .. } | Fact::UnknownVar { name, .. } => {
                    Some(name.as_str())
                }
                Fact::UnknownStruct(n) => Some(n.as_str()),
                _ => None,
            };
            if let Some(n) = name {
                if self.fetch(n, sources, fetched) {
                    added += 1;
                }
            }
        }
        added
    }
}

fn fact_key(f: &Fact) -> Option<String> {
    Some(match f {
        Fact::DevPath(_) => "devpath".to_string(),
        Fact::Socket { .. } => "socket".to_string(),
        Fact::SockCallFn { call, .. } => format!("sockcall:{call}"),
        Fact::Transform { .. } => "transform".to_string(),
        Fact::Ident { name, .. } => format!("ident:{name}"),
        Fact::SyzType { c_name, .. } => format!("type:{c_name}"),
        Fact::FlagSet { name, .. } => format!("flags:{name}"),
        Fact::ResourceDef { name } => format!("res:{name}"),
        Fact::CreatesFd { cmd, .. } => format!("dep:{cmd}"),
        Fact::UnknownFunc { .. }
        | Fact::UnknownVar { .. }
        | Fact::UnknownStruct(_)
        | Fact::Note(_) => {
            return None;
        }
    })
}

/// Merge newly returned facts into the accumulator: later rounds
/// *refine* earlier ones (the re-analysis sees strictly more source),
/// so new facts replace old facts with the same key.
fn merge_facts(acc: &mut Vec<Fact>, new: Vec<Fact>) {
    for f in new {
        match fact_key(&f) {
            Some(key) => {
                if let Some(pos) = acc
                    .iter()
                    .position(|e| fact_key(e).as_deref() == Some(key.as_str()))
                {
                    acc[pos] = f;
                } else {
                    acc.push(f);
                }
            }
            None => {
                // Unknowns/notes are transient; keep them only if novel.
                if !acc.contains(&f) {
                    acc.push(f);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgpt_csrc::KernelCorpus;
    use kgpt_extractor::find_handlers;
    use kgpt_llm::{ModelKind, OracleModel};

    fn dm_only() -> (KernelCorpus, Vec<OpHandler>) {
        let kc = KernelCorpus::from_blueprints(vec![kgpt_csrc::flagship::dm()]);
        let handlers = find_handlers(kc.corpus());
        (kc, handlers)
    }

    #[test]
    fn dm_pipeline_end_to_end() {
        let (kc, handlers) = dm_only();
        let model = OracleModel::new(ModelKind::Gpt4, 0);
        let engine = KernelGpt::new(&model, kc.corpus());
        let report = engine.generate_all(&handlers, kc.consts());
        assert_eq!(report.outcomes.len(), 1);
        let o = &report.outcomes[0];
        assert!(o.valid, "errors: {:?}", o.errors);
        // 18 ioctls + openat.
        assert_eq!(o.syscall_count(), 19);
        assert!(o.type_count() >= 2, "types: {}", o.type_count());
        // Correct nodename-derived path in the spec.
        let text = kgpt_syzlang::print_file(o.spec.as_ref().unwrap());
        assert!(text.contains("/dev/mapper/control"), "{text}");
        assert!(text.contains("ioctl$DM_DEV_CREATE"), "{text}");
        assert!(text.contains("len[targets"), "{text}");
    }

    #[test]
    fn repair_fixes_injected_defects() {
        // Find a seed where the dm handler draws a first-pass defect;
        // the repair round must fix it.
        let (kc, handlers) = dm_only();
        let mut saw_repair = false;
        for seed in 0..40 {
            let model = OracleModel::new(ModelKind::Gpt4, seed);
            let engine = KernelGpt::new(&model, kc.corpus());
            let report = engine.generate_all(&handlers, kc.consts());
            let o = &report.outcomes[0];
            assert!(o.valid, "seed {seed}: {:?}", o.errors);
            if o.repaired {
                saw_repair = true;
                break;
            }
        }
        assert!(saw_repair, "no seed triggered the repair path");
    }

    #[test]
    fn kvm_chain_produces_subhandler_specs() {
        let kc = KernelCorpus::from_blueprints(vec![
            kgpt_csrc::flagship::kvm(),
            kgpt_csrc::flagship::kvm_vm(),
            kgpt_csrc::flagship::kvm_vcpu(),
        ]);
        let handlers = find_handlers(kc.corpus());
        assert_eq!(handlers.len(), 3);
        let model = OracleModel::new(ModelKind::Gpt4, 2);
        let engine = KernelGpt::new(&model, kc.corpus());
        let report = engine.generate_all(&handlers, kc.consts());
        assert_eq!(
            report.valid_count(),
            3,
            "{:?}",
            report
                .outcomes
                .iter()
                .map(|o| (&o.ops_var, &o.errors))
                .collect::<Vec<_>>()
        );
        let merged = report.specs();
        let db = kgpt_syzlang::SpecDb::from_files(merged);
        // The chain: openat$kvm → ioctl$KVM_CREATE_VM → fd_kvm_vm →
        // ioctl$KVM_CREATE_VCPU → fd_kvm_vcpu.
        let create_vm = db.syscall("ioctl$KVM_CREATE_VM").expect("create vm");
        assert_eq!(create_vm.ret.as_deref(), Some("fd_kvm_vm"));
        let create_vcpu = db.syscall("ioctl$KVM_CREATE_VCPU").expect("create vcpu");
        assert_eq!(create_vcpu.ret.as_deref(), Some("fd_kvm_vcpu"));
    }

    #[test]
    fn all_in_one_is_worse_on_big_drivers() {
        let kc = KernelCorpus::from_blueprints(vec![kgpt_csrc::flagship::dm()]);
        let handlers = find_handlers(kc.corpus());
        // A small context window makes the difference visible even on
        // one driver: use GPT-3.5 for the window, same seeds.
        let model = OracleModel::new(ModelKind::Gpt35, 0);
        let iter = KernelGpt::new(&model, kc.corpus()).generate_all(&handlers, kc.consts());
        let one = KernelGpt::new(&model, kc.corpus())
            .with_strategy(Strategy::AllInOne)
            .generate_all(&handlers, kc.consts());
        assert!(
            one.total_syscalls() <= iter.total_syscalls(),
            "all-in-one {} vs iterative {}",
            one.total_syscalls(),
            iter.total_syscalls()
        );
    }

    #[test]
    fn deep_delegation_fails_within_max_iter() {
        // A driver delegating through 7 hops cannot be resolved in 5
        // iterations (the synthetic `too_deep` population).
        let plan = kgpt_csrc::synth::SynthPlan {
            drivers_loaded_complete: 0,
            drivers_loaded_partial: 0,
            drivers_loaded_none: 1,
            drivers_unloaded: 0,
            drivers_friendly: 0,
            drivers_too_deep: 1,
            sockets_loaded_complete: 0,
            sockets_loaded_partial: 0,
            sockets_loaded_none: 0,
            sockets_unloaded: 0,
            sockets_opaque: 0,
        };
        let bps = kgpt_csrc::synth::generate(&plan, 0);
        assert_eq!(bps.len(), 1);
        let kc = KernelCorpus::from_blueprints(bps);
        let handlers = find_handlers(kc.corpus());
        let model = OracleModel::new(ModelKind::Gpt4, 0);
        let engine = KernelGpt::new(&model, kc.corpus());
        let report = engine.generate_all(&handlers, kc.consts());
        let o = &report.outcomes[0];
        // The spec (if any) has no ioctl commands — the producer alone
        // is not a useful description.
        assert_eq!(
            o.spec
                .as_ref()
                .map_or(0, |s| s.syscalls().filter(|c| c.base == "ioctl").count()),
            0,
            "deep delegation should yield no commands"
        );
    }

    #[test]
    fn parallel_generation_is_thread_count_invariant() {
        // Mixed workload: dm (repairable driver), the kvm chain
        // (cross-file sub-handler fds), rds (socket). The report must
        // be bit-identical at every thread count.
        let kc = KernelCorpus::from_blueprints(vec![
            kgpt_csrc::flagship::dm(),
            kgpt_csrc::flagship::kvm(),
            kgpt_csrc::flagship::kvm_vm(),
            kgpt_csrc::flagship::kvm_vcpu(),
            kgpt_csrc::flagship::rds(),
        ]);
        let handlers = find_handlers(kc.corpus());
        assert_eq!(handlers.len(), 5);
        let model = OracleModel::new(ModelKind::Gpt4, 0);
        let run = |threads: usize| {
            KernelGpt::new(&model, kc.corpus())
                .with_threads(threads)
                .generate_all(&handlers, kc.consts())
        };
        let base = run(1);
        assert!(
            base.valid_count() >= 4,
            "base valid: {}",
            base.valid_count()
        );
        for threads in [2, 4, 8] {
            assert_eq!(base, run(threads), "threads={threads}");
        }
    }

    #[test]
    fn parallel_repair_round_matches_sequential() {
        // A seed that injects a first-pass defect exercises the repair
        // round; the parallel repair merge must keep the sequential
        // outcome (queries accumulate, repaired flag set).
        let (kc, handlers) = dm_only();
        for seed in 0..40 {
            let model = OracleModel::new(ModelKind::Gpt4, seed);
            let engine = KernelGpt::new(&model, kc.corpus()).with_threads(1);
            let sequential = engine.generate_all(&handlers, kc.consts());
            if !sequential.outcomes[0].repaired {
                continue;
            }
            let model = OracleModel::new(ModelKind::Gpt4, seed);
            let parallel = KernelGpt::new(&model, kc.corpus())
                .with_threads(4)
                .generate_all(&handlers, kc.consts());
            assert_eq!(sequential, parallel, "seed {seed}");
            return;
        }
        panic!("no seed triggered the repair path");
    }

    #[test]
    fn socket_pipeline_rds() {
        let kc = KernelCorpus::from_blueprints(vec![kgpt_csrc::flagship::rds()]);
        let handlers = find_handlers(kc.corpus());
        let model = OracleModel::new(ModelKind::Gpt4, 1);
        let engine = KernelGpt::new(&model, kc.corpus());
        let report = engine.generate_all(&handlers, kc.consts());
        let o = &report.outcomes[0];
        assert!(o.valid, "{:?}", o.errors);
        let text = kgpt_syzlang::print_file(o.spec.as_ref().unwrap());
        assert!(text.contains("socket$rds"), "{text}");
        assert!(text.contains("sendto$rds"), "{text}");
        assert!(text.contains("setsockopt$RDS_GET_MR"), "{text}");
    }
}
