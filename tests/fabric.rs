//! Distributed-fabric properties: a coordinator merging worker deltas
//! over a transport produces a `CampaignResult` **bit-identical** to
//! the single-process `ShardedCampaign` of the same config — at any
//! worker count, under every cell of the failure matrix (worker
//! death, stalled leases, dropped / duplicated / corrupted frames).

use kernelgpt::csrc::{deepchain, KernelCorpus};
use kernelgpt::fabric::{
    run_worker, ChannelTransport, Coordinator, CoordinatorOpts, FabricStats, TcpTransport,
    Transport, WorkerOpts, WorkerSummary,
};
use kernelgpt::fuzzer::{CampaignConfig, CampaignResult, Fault, FaultPlan, ShardedCampaign};
use kernelgpt::syzlang::{ConstDb, SpecCache, SpecFile};
use kernelgpt::vkernel::VKernel;
use std::sync::{Arc, Mutex};
use std::time::Duration;

const SHARDS: u32 = 8;

fn deepchain_setup() -> (VKernel, Vec<SpecFile>, ConstDb) {
    let kc = KernelCorpus::from_blueprints(deepchain::suite());
    let suite: Vec<_> = kc
        .blueprints()
        .iter()
        .map(|bp| bp.ground_truth_spec())
        .collect();
    (
        VKernel::boot(deepchain::suite()),
        suite,
        kc.consts().clone(),
    )
}

fn cfg(seed: u64) -> CampaignConfig {
    CampaignConfig {
        execs: 3000,
        seed,
        max_prog_len: 10,
        hub_epoch: 125,
        hub_top_k: 4,
        ..CampaignConfig::default()
    }
}

fn assert_same(a: &CampaignResult, b: &CampaignResult, label: &str) {
    assert_eq!(a.coverage, b.coverage, "{label}: coverage");
    assert_eq!(a.crashes, b.crashes, "{label}: crashes");
    assert_eq!(a.corpus_size, b.corpus_size, "{label}: corpus_size");
    assert_eq!(a.triage, b.triage, "{label}: triage");
    assert_eq!(
        a.fuel_exhausted, b.fuel_exhausted,
        "{label}: fuel_exhausted"
    );
    assert_eq!(a.execs, b.execs, "{label}: execs");
}

struct Harness {
    lease_timeout: Duration,
    reply_timeout: Duration,
    /// Fault plan for the n-th *spawned* worker; replacements beyond
    /// the list run clean (so an injected fault cannot cascade into a
    /// livelock of its own replacement).
    plans: Vec<FaultPlan>,
    /// Ship every boundary as a full snapshot frame (the measurement
    /// baseline for the incremental-delta bandwidth win).
    force_full: bool,
}

impl Default for Harness {
    fn default() -> Harness {
        Harness {
            lease_timeout: Duration::from_secs(60),
            reply_timeout: Duration::from_millis(250),
            plans: Vec::new(),
            force_full: false,
        }
    }
}

/// Run a whole campaign through the real protocol stack —
/// coordinator and workers on in-memory channel transports, workers
/// spawned on demand exactly when the coordinator wants one (which is
/// also how lease reassignment gets its replacement registrant).
fn run_fabric(
    kernel: &VKernel,
    suite: &[SpecFile],
    consts: &ConstDb,
    config: &CampaignConfig,
    workers: u32,
    harness: Harness,
) -> (CampaignResult, FabricStats, Vec<WorkerSummary>) {
    let db = SpecCache::global().get_or_build(suite);
    let lowered = SpecCache::global().get_or_lower(&db, consts);
    let spec_fp = SpecCache::fingerprint(suite);
    let summaries = Mutex::new(Vec::new());
    let (result, stats) = std::thread::scope(|scope| {
        let coordinator = Coordinator::new(
            config.clone(),
            CoordinatorOpts {
                shards: SHARDS,
                workers,
                lease_timeout: harness.lease_timeout,
                spec_fp,
            },
        );
        let mut spawned = 0usize;
        let mut accept = || -> Option<Box<dyn Transport>> {
            let (coord_end, worker_end) = ChannelTransport::pair();
            let plan = harness.plans.get(spawned).cloned().unwrap_or_default();
            spawned += 1;
            let lowered = Arc::clone(&lowered);
            let summaries = &summaries;
            scope.spawn(move || {
                let opts = WorkerOpts {
                    faults: plan,
                    reply_timeout: harness.reply_timeout,
                    force_full_deltas: harness.force_full,
                    ..WorkerOpts::default()
                };
                let summary = run_worker(Box::new(worker_end), opts, |fp| {
                    (fp == spec_fp).then_some((kernel, lowered))
                })
                .expect("worker protocol violation");
                summaries.lock().unwrap().push(summary);
            });
            Some(Box::new(coord_end))
        };
        coordinator.run(&mut accept).expect("coordinator")
    });
    let summaries = summaries.into_inner().unwrap();
    (result, stats, summaries)
}

/// The tentpole invariant: the fabric result is bit-identical to the
/// single-process `ShardedCampaign` at 1, 2, and 4 workers across
/// three seeds, and every boundary was merged exactly once.
#[test]
fn fabric_result_is_bit_identical_at_1_2_4_workers_across_seeds() {
    let (kernel, suite, consts) = deepchain_setup();
    for seed in [1u64, 7, 0xDEAD_BEEF] {
        let config = cfg(seed);
        let reference = ShardedCampaign::new(&kernel, &suite, &consts, config.clone())
            .with_shards(SHARDS)
            .run();
        assert!(
            !reference.triage.is_empty(),
            "seed {seed}: no crash triaged — the equivalence would be vacuous"
        );
        for workers in [1u32, 2, 4] {
            let (result, stats, summaries) = run_fabric(
                &kernel,
                &suite,
                &consts,
                &config,
                workers,
                Harness::default(),
            );
            assert_same(&reference, &result, &format!("seed {seed} x{workers}"));
            // 3000 execs / 8 shards at hub_epoch 125 = 3 epochs.
            assert_eq!(stats.boundaries, 3, "seed {seed} x{workers}");
            assert_eq!(stats.expired_leases, 0, "seed {seed} x{workers}");
            assert_eq!(stats.rejected_frames, 0, "seed {seed} x{workers}");
            assert_eq!(summaries.len(), workers as usize);
            assert!(summaries.iter().all(|s| s.completed));
        }
    }
}

/// Incremental frames (the default) and forced-full frames merge to
/// the identical result, and the incremental wire cost is a small
/// fraction of the full cost — the whole point of true delta frames.
#[test]
fn incremental_frames_match_full_frames_and_cost_far_fewer_bytes() {
    let (kernel, suite, consts) = deepchain_setup();
    let config = cfg(7);
    let reference = ShardedCampaign::new(&kernel, &suite, &consts, config.clone())
        .with_shards(SHARDS)
        .run();
    let run = |force_full: bool| {
        run_fabric(
            &kernel,
            &suite,
            &consts,
            &config,
            2,
            Harness {
                force_full,
                ..Harness::default()
            },
        )
    };
    let (full_result, full_stats, _) = run(true);
    let (incr_result, incr_stats, _) = run(false);
    assert_same(&reference, &full_result, "forced-full");
    assert_same(&reference, &incr_result, "incremental");
    assert_eq!(full_stats.boundaries, incr_stats.boundaries);
    // Boundary 1 is full either way (no agreed baseline yet), so the
    // whole-campaign ratio understates the per-boundary win; even so,
    // increments must cut the accepted delta bytes at least in half
    // on this 3-boundary workload.
    assert!(
        incr_stats.delta_bytes * 2 < full_stats.delta_bytes,
        "incremental {} bytes vs full {} bytes",
        incr_stats.delta_bytes,
        full_stats.delta_bytes
    );
}

/// A worker killed mid-lease (dies without shipping its boundary)
/// surrenders the range; the replacement re-runs the uncommitted
/// epochs from the last committed boundary and the result does not
/// change.
#[test]
fn worker_death_mid_lease_reassigns_the_range_with_result_unchanged() {
    let (kernel, suite, consts) = deepchain_setup();
    let config = cfg(7);
    let reference = ShardedCampaign::new(&kernel, &suite, &consts, config.clone())
        .with_shards(SHARDS)
        .run();
    for boundary in [1u64, 2, 3] {
        let harness = Harness {
            plans: vec![FaultPlan::none().with(Fault::WorkerKill {
                worker: 0,
                boundary,
            })],
            ..Harness::default()
        };
        let (result, stats, summaries) = run_fabric(&kernel, &suite, &consts, &config, 2, harness);
        assert_same(&reference, &result, &format!("kill at boundary {boundary}"));
        assert!(
            stats.expired_leases >= 1,
            "kill at boundary {boundary}: the lost lease must be counted"
        );
        assert_eq!(summaries.iter().filter(|s| !s.completed).count(), 1);
        assert_eq!(summaries.iter().filter(|s| s.completed).count(), 2);
    }
}

/// A stalled worker (alive but silent past its lease deadline) is
/// expired and its range reassigned; when it finally wakes, its
/// connection is gone and it surrenders cleanly.
#[test]
fn stalled_lease_expires_and_the_range_is_reassigned() {
    let (kernel, suite, consts) = deepchain_setup();
    let config = cfg(1);
    let reference = ShardedCampaign::new(&kernel, &suite, &consts, config.clone())
        .with_shards(SHARDS)
        .run();
    let harness = Harness {
        lease_timeout: Duration::from_millis(400),
        plans: vec![
            FaultPlan::none(),
            FaultPlan::none().with(Fault::StallLease {
                worker: 1,
                boundary: 2,
            }),
        ],
        ..Harness::default()
    };
    let (result, stats, summaries) = run_fabric(&kernel, &suite, &consts, &config, 2, harness);
    assert_same(&reference, &result, "stalled lease");
    assert!(stats.expired_leases >= 1, "the stalled lease must expire");
    assert!(
        summaries.iter().any(|s| !s.completed),
        "the stalled worker must have surrendered"
    );
}

/// Dropped delta frames are recovered by resend; duplicated frames
/// are re-acked from cache, never re-merged.
#[test]
fn dropped_and_duplicated_frames_are_idempotent() {
    let (kernel, suite, consts) = deepchain_setup();
    let config = cfg(0xDEAD_BEEF);
    let reference = ShardedCampaign::new(&kernel, &suite, &consts, config.clone())
        .with_shards(SHARDS)
        .run();
    // Worker frame 0 is Register; frames 1.. are deltas. Worker 0
    // loses its first delta (resend recovers it); worker 1 duplicates
    // its first delta and loses its second.
    let harness = Harness {
        reply_timeout: Duration::from_millis(100),
        plans: vec![
            FaultPlan::none().with(Fault::DropFrame { nth: 1 }),
            FaultPlan::none()
                .with(Fault::DuplicateFrame { nth: 1 })
                .with(Fault::DropFrame { nth: 2 }),
        ],
        ..Harness::default()
    };
    let (result, stats, summaries) = run_fabric(&kernel, &suite, &consts, &config, 2, harness);
    assert_same(&reference, &result, "dropped+duplicated frames");
    assert_eq!(stats.boundaries, 3, "every boundary merged exactly once");
    assert!(
        stats.redelivered_frames >= 1,
        "the duplicated delta must be absorbed, not re-merged"
    );
    assert_eq!(
        stats.expired_leases, 0,
        "no lease should be lost to wire noise"
    );
    assert!(summaries.iter().all(|s| s.completed));
}

/// A transport that flips one byte in the n-th outbound frame —
/// corruption the checksum must catch end-to-end.
struct Corrupting<T: Transport> {
    inner: T,
    nth: u64,
    sent: u64,
}

impl<T: Transport> Transport for Corrupting<T> {
    fn send(&mut self, frame: &[u8]) -> std::io::Result<()> {
        let n = self.sent;
        self.sent += 1;
        if n == self.nth {
            let mut damaged = frame.to_vec();
            let mid = damaged.len() / 2;
            damaged[mid] ^= 0x40;
            return self.inner.send(&damaged);
        }
        self.inner.send(frame)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> std::io::Result<Option<Vec<u8>>> {
        self.inner.recv_timeout(timeout)
    }
}

/// A corrupted delta frame is rejected by the frame checksum (counted,
/// never decoded into the merge) and the worker's resend recovers it.
#[test]
fn corrupt_frames_are_checksum_rejected_and_recovered_by_resend() {
    let (kernel, suite, consts) = deepchain_setup();
    let config = cfg(7);
    let reference = ShardedCampaign::new(&kernel, &suite, &consts, config.clone())
        .with_shards(SHARDS)
        .run();
    let db = SpecCache::global().get_or_build(&suite);
    let lowered = SpecCache::global().get_or_lower(&db, &consts);
    let spec_fp = SpecCache::fingerprint(&suite);
    let (result, stats) = std::thread::scope(|scope| {
        let coordinator = Coordinator::new(
            config.clone(),
            CoordinatorOpts {
                shards: SHARDS,
                workers: 2,
                lease_timeout: Duration::from_secs(60),
                spec_fp,
            },
        );
        let mut spawned = 0u64;
        let mut accept = || -> Option<Box<dyn Transport>> {
            let (coord_end, worker_end) = ChannelTransport::pair();
            // The first worker's second outbound frame (its first
            // delta) arrives with a flipped bit; later workers clean.
            let corrupt_at = if spawned == 0 { 1 } else { u64::MAX };
            spawned += 1;
            let lowered = Arc::clone(&lowered);
            let kernel = &kernel;
            scope.spawn(move || {
                let transport = Corrupting {
                    inner: worker_end,
                    nth: corrupt_at,
                    sent: 0,
                };
                let opts = WorkerOpts {
                    reply_timeout: Duration::from_millis(100),
                    ..WorkerOpts::default()
                };
                run_worker(Box::new(transport), opts, |fp| {
                    (fp == spec_fp).then_some((kernel, lowered))
                })
                .expect("worker protocol violation");
            });
            Some(Box::new(coord_end))
        };
        coordinator.run(&mut accept).expect("coordinator")
    });
    assert_same(&reference, &result, "corrupt frame");
    assert!(
        stats.rejected_frames >= 1,
        "the flipped-bit frame must be rejected by checksum"
    );
    assert_eq!(stats.expired_leases, 0);
}

/// Seed-derived fabric fault plans (the whole failure matrix at
/// seed-chosen coordinates) never change the merged result.
#[test]
fn seeded_fabric_fault_plans_never_change_the_result() {
    let (kernel, suite, consts) = deepchain_setup();
    let config = cfg(1);
    let reference = ShardedCampaign::new(&kernel, &suite, &consts, config.clone())
        .with_shards(SHARDS)
        .run();
    for fault_seed in [3u64, 0xF00D] {
        let harness = Harness {
            lease_timeout: Duration::from_millis(500),
            reply_timeout: Duration::from_millis(100),
            plans: vec![
                FaultPlan::fabric_from_seed(fault_seed, 3, 2),
                FaultPlan::fabric_from_seed(fault_seed.wrapping_mul(31), 3, 2),
            ],
            ..Harness::default()
        };
        let (result, _stats, _summaries) =
            run_fabric(&kernel, &suite, &consts, &config, 2, harness);
        assert_same(&reference, &result, &format!("fault seed {fault_seed:#x}"));
    }
}

/// The same protocol over real sockets: coordinator and workers on
/// localhost TCP, frames length-prefixed on the stream — result still
/// bit-identical.
#[test]
fn tcp_fabric_run_is_bit_identical() {
    let (kernel, suite, consts) = deepchain_setup();
    let config = cfg(7);
    let reference = ShardedCampaign::new(&kernel, &suite, &consts, config.clone())
        .with_shards(SHARDS)
        .run();
    let db = SpecCache::global().get_or_build(&suite);
    let lowered = SpecCache::global().get_or_lower(&db, &consts);
    let spec_fp = SpecCache::fingerprint(&suite);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    listener.set_nonblocking(true).expect("nonblocking");
    let addr = listener.local_addr().expect("addr");
    let (result, stats) = std::thread::scope(|scope| {
        for _ in 0..2 {
            let lowered = Arc::clone(&lowered);
            let kernel = &kernel;
            scope.spawn(move || {
                let transport = TcpTransport::connect(addr).expect("connect");
                run_worker(Box::new(transport), WorkerOpts::default(), |fp| {
                    (fp == spec_fp).then_some((kernel, lowered))
                })
                .expect("worker protocol violation");
            });
        }
        let coordinator = Coordinator::new(
            config.clone(),
            CoordinatorOpts {
                shards: SHARDS,
                workers: 2,
                lease_timeout: Duration::from_secs(60),
                spec_fp,
            },
        );
        let mut accept = || -> Option<Box<dyn Transport>> {
            match listener.accept() {
                Ok((stream, _)) => Some(Box::new(TcpTransport::new(stream)) as Box<dyn Transport>),
                Err(_) => None,
            }
        };
        coordinator.run(&mut accept).expect("coordinator")
    });
    assert_same(&reference, &result, "tcp fabric");
    assert_eq!(stats.boundaries, 3);
    assert_eq!(stats.expired_leases, 0);
}
