//! Property-based tests over the core data structures and invariants.

use kernelgpt::csrc::cmacro;
use kernelgpt::syzlang::ast::{
    ArrayLen, ConstExpr, Dir, Field, FlagsDef, IntBits, Item, Param, Resource, SpecFile,
    StructDef, Syscall, Type,
};
use kernelgpt::syzlang::{parse, print_file, SpecDb};
use proptest::prelude::*;

fn ident_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,12}".prop_map(|s| s)
}

fn upper_ident() -> impl Strategy<Value = String> {
    "[A-Z][A-Z0-9_]{0,12}".prop_map(|s| s)
}

fn bits_strategy() -> impl Strategy<Value = IntBits> {
    prop_oneof![
        Just(IntBits::I8),
        Just(IntBits::I16),
        Just(IntBits::I32),
        Just(IntBits::I64),
    ]
}

fn dir_strategy() -> impl Strategy<Value = Dir> {
    prop_oneof![Just(Dir::In), Just(Dir::Out), Just(Dir::InOut)]
}

/// Scalar-ish type strategy (no unbounded recursion).
fn type_strategy() -> impl Strategy<Value = Type> {
    let leaf = prop_oneof![
        (bits_strategy(), proptest::option::of((0u64..100, 100u64..200)))
            .prop_map(|(bits, range)| Type::Int { bits, range }),
        (any::<u64>(), bits_strategy())
            .prop_map(|(v, bits)| Type::Const { value: ConstExpr::Num(v), bits }),
        upper_ident().prop_map(|s| Type::Const {
            value: ConstExpr::Sym(s),
            bits: IntBits::I64
        }),
        "[a-z/]{1,12}".prop_map(|s| Type::StringLit { values: vec![s] }),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            (dir_strategy(), inner.clone()).prop_map(|(dir, t)| Type::Ptr {
                dir,
                elem: Box::new(t)
            }),
            (inner, prop_oneof![
                Just(ArrayLen::Unsized),
                (1u64..8).prop_map(ArrayLen::Fixed),
                (1u64..4, 4u64..10).prop_map(|(a, b)| ArrayLen::Range(a, b)),
            ])
            .prop_map(|(t, len)| Type::Array {
                elem: Box::new(t),
                len
            }),
        ]
    })
}

fn field_strategy(i: usize) -> impl Strategy<Value = Field> {
    type_strategy().prop_map(move |ty| Field {
        name: format!("f{i}"),
        ty,
        dir: None,
    })
}

fn struct_strategy() -> impl Strategy<Value = StructDef> {
    (ident_strategy(), 1usize..6, any::<bool>()).prop_flat_map(|(name, n, is_union)| {
        let fields: Vec<_> = (0..n).map(field_strategy).collect();
        (Just(name), fields, Just(is_union)).prop_map(|(name, fields, is_union)| StructDef {
            name: format!("st_{name}"),
            fields,
            is_union,
            packed: false,
        })
    })
}

fn syscall_strategy() -> impl Strategy<Value = Syscall> {
    (upper_ident(), proptest::collection::vec(type_strategy(), 0..5)).prop_map(
        |(variant, tys)| Syscall {
            base: "fake".into(),
            variant: Some(variant),
            params: tys
                .into_iter()
                .enumerate()
                .map(|(i, ty)| Param::new(format!("a{i}"), ty))
                .collect(),
            ret: None,
        },
    )
}

fn spec_file_strategy() -> impl Strategy<Value = SpecFile> {
    (
        proptest::collection::vec(struct_strategy(), 0..4),
        proptest::collection::vec(syscall_strategy(), 0..4),
        proptest::collection::vec((ident_strategy(), 1u64..64), 0..3),
    )
        .prop_map(|(mut structs, calls, flags)| {
            // Deduplicate names so the file is well-formed.
            structs.sort_by(|a, b| a.name.cmp(&b.name));
            structs.dedup_by(|a, b| a.name == b.name);
            let mut items: Vec<Item> = Vec::new();
            items.push(Item::Resource(Resource {
                name: "res_x".into(),
                base: "int32".into(),
                values: vec![],
            }));
            for s in structs {
                items.push(Item::Struct(s));
            }
            let mut seen = std::collections::BTreeSet::new();
            for c in calls {
                if seen.insert(c.name()) {
                    items.push(Item::Syscall(c));
                }
            }
            let mut fseen = std::collections::BTreeSet::new();
            for (name, v) in flags {
                let fname = format!("fl_{name}");
                if fseen.insert(fname.clone()) {
                    items.push(Item::Flags(FlagsDef {
                        name: fname,
                        values: vec![ConstExpr::Num(v)],
                    }));
                }
            }
            SpecFile {
                name: "prop.txt".into(),
                items,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// print → parse is the identity on well-formed spec files.
    #[test]
    fn printer_parser_round_trip(file in spec_file_strategy()) {
        let printed = print_file(&file);
        let reparsed = parse("prop.txt", &printed)
            .unwrap_or_else(|e| panic!("{e}\n{printed}"));
        prop_assert_eq!(reparsed.items, file.items);
    }

    /// The _IOC encoding round-trips through its field extractors.
    #[test]
    fn ioc_encoding_round_trips(dir in 0u64..4, ty in 0u64..256, nr in 0u64..256, size in 0u64..16384) {
        let cmd = cmacro::ioc(dir, ty, nr, size);
        prop_assert_eq!(cmacro::ioc_dir(cmd), dir);
        prop_assert_eq!(cmacro::ioc_type(cmd), ty);
        prop_assert_eq!(cmacro::ioc_nr(cmd), nr);
        prop_assert_eq!(cmacro::ioc_size(cmd), size);
    }

    /// Struct layout sizes are always a multiple of alignment and
    /// fields never overlap (non-union).
    #[test]
    fn layout_invariants(def in struct_strategy()) {
        let db = SpecDb::from_files(vec![SpecFile {
            name: "t".into(),
            items: vec![Item::Struct(def.clone())],
        }]);
        if let Ok(l) = kernelgpt::syzlang::layout::struct_layout(&def, &db) {
            prop_assert!(l.align.is_power_of_two());
            prop_assert_eq!(l.size % l.align, 0);
            if !def.is_union {
                if let Ok((offsets, total)) = kernelgpt::syzlang::layout::field_offsets(&def, &db) {
                    let mut prev_end = 0u64;
                    for (f, off) in def.fields.iter().zip(&offsets) {
                        prop_assert!(*off >= prev_end, "field overlap");
                        if let Ok(fl) = kernelgpt::syzlang::layout::type_layout(&f.ty, &db) {
                            prev_end = off + fl.size;
                        }
                    }
                    prop_assert!(prev_end <= total);
                }
            }
        }
    }

    /// The encoder never panics on generator-produced values, and the
    /// memory image decodes to the encoded scalar for int fields.
    #[test]
    fn encode_zero_value_never_panics(def in struct_strategy()) {
        let db = SpecDb::from_files(vec![SpecFile {
            name: "t".into(),
            items: vec![Item::Struct(def.clone())],
        }]);
        let consts = kernelgpt::syzlang::ConstDb::new();
        let ty = Type::Named(def.name.clone());
        if let Ok(v) = kernelgpt::syzlang::value::zero_value(&ty, &db) {
            let mut mb = kernelgpt::syzlang::value::MemBuilder::new(&db, &consts);
            let _ = mb.encode_arg(
                &Type::Ptr { dir: Dir::In, elem: Box::new(ty) },
                &kernelgpt::syzlang::Value::ptr_to(v),
                &|r| r.fallback,
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Synthetic blueprints always emit parseable C whose macros agree
    /// with the blueprint's command values.
    #[test]
    fn synthetic_blueprints_are_coherent(seed in 0u64..500) {
        let plan = kernelgpt::csrc::synth::SynthPlan {
            drivers_loaded_complete: 1,
            drivers_loaded_partial: 1,
            drivers_loaded_none: 1,
            drivers_unloaded: 0,
            drivers_friendly: 1,
            drivers_too_deep: 0,
            sockets_loaded_complete: 1,
            sockets_loaded_partial: 1,
            sockets_loaded_none: 0,
            sockets_unloaded: 0,
            sockets_opaque: 0,
        };
        let bps = kernelgpt::csrc::synth::generate(&plan, seed);
        for bp in &bps {
            let src = kernelgpt::csrc::emit::emit_blueprint(bp);
            let file = kernelgpt::csrc::parser::cparse("p.c", &src)
                .unwrap_or_else(|e| panic!("{}: {e}\n{src}", bp.id));
            let corpus = kernelgpt::csrc::Corpus::build(vec![file]);
            for cmd in &bp.cmds {
                let v = cmacro::eval_const(&corpus, &cmd.name);
                prop_assert_eq!(v, Some(bp.cmd_value(cmd)));
            }
        }
    }
}
