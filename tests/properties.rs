//! Property-based tests over the core data structures and invariants.
//!
//! Cases are produced by a hand-rolled, seeded generator on the
//! workspace's deterministic `rand` (the offline environment has no
//! proptest); every failure message prints the case seed so a run can
//! be reproduced exactly.

use kernelgpt::csrc::cmacro;
use kernelgpt::fuzzer::{
    ast_execute_with, execute_with, AstGenerator, AstScratch, Corpus, ExecScratch, Generator,
    Program, SeedHub,
};
use kernelgpt::syzlang::ast::{
    ArrayLen, ConstExpr, Dir, Field, FlagsDef, IntBits, Item, Param, Resource, SpecFile, StructDef,
    Syscall, Type,
};
use kernelgpt::syzlang::LoweredDb;
use kernelgpt::syzlang::{parse, print_file, SpecDb};
use kernelgpt::vkernel::CoverageMap;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeSet;

/// A small strategy toolbox mirroring the shapes the old proptest
/// strategies produced.
struct Gen {
    rng: StdRng,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn ident(&mut self) -> String {
        let mut s = String::new();
        s.push((b'a' + self.rng.random_range(0..26u32) as u8) as char);
        for _ in 0..self.rng.random_range(0..12u32) {
            let c = match self.rng.random_range(0..3u32) {
                0 => b'a' + self.rng.random_range(0..26u32) as u8,
                1 => b'0' + self.rng.random_range(0..10u32) as u8,
                _ => b'_',
            };
            s.push(c as char);
        }
        s
    }

    fn upper_ident(&mut self) -> String {
        self.ident().to_uppercase()
    }

    fn bits(&mut self) -> IntBits {
        *[IntBits::I8, IntBits::I16, IntBits::I32, IntBits::I64]
            .choose(&mut self.rng)
            .expect("non-empty")
    }

    fn dir(&mut self) -> Dir {
        *[Dir::In, Dir::Out, Dir::InOut]
            .choose(&mut self.rng)
            .expect("non-empty")
    }

    fn leaf_type(&mut self) -> Type {
        match self.rng.random_range(0..4u32) {
            0 => Type::Int {
                bits: self.bits(),
                range: if self.rng.random_bool(0.5) {
                    Some((
                        self.rng.random_range(0..100u64),
                        self.rng.random_range(100..200u64),
                    ))
                } else {
                    None
                },
            },
            1 => Type::Const {
                value: ConstExpr::Num(self.rng.random()),
                bits: self.bits(),
            },
            2 => Type::Const {
                value: ConstExpr::Sym(self.upper_ident()),
                bits: IntBits::I64,
            },
            _ => {
                let n = self.rng.random_range(1..=12usize);
                let mut s = String::new();
                for _ in 0..n {
                    if self.rng.random_bool(0.15) {
                        s.push('/');
                    } else {
                        s.push((b'a' + self.rng.random_range(0..26u32) as u8) as char);
                    }
                }
                Type::StringLit { values: vec![s] }
            }
        }
    }

    fn ty(&mut self, depth: usize) -> Type {
        if depth == 0 || self.rng.random_bool(0.5) {
            return self.leaf_type();
        }
        if self.rng.random_bool(0.5) {
            Type::Ptr {
                dir: self.dir(),
                elem: Box::new(self.ty(depth - 1)),
            }
        } else {
            let len = match self.rng.random_range(0..3u32) {
                0 => ArrayLen::Unsized,
                1 => ArrayLen::Fixed(self.rng.random_range(1..8u64)),
                _ => ArrayLen::Range(
                    self.rng.random_range(1..4u64),
                    self.rng.random_range(4..10u64),
                ),
            };
            Type::Array {
                elem: Box::new(self.ty(depth - 1)),
                len,
            }
        }
    }

    fn struct_def(&mut self) -> StructDef {
        let n = self.rng.random_range(1..6usize);
        StructDef {
            name: format!("st_{}", self.ident()),
            fields: (0..n)
                .map(|i| Field {
                    name: format!("f{i}"),
                    ty: self.ty(3),
                    dir: None,
                })
                .collect(),
            is_union: self.rng.random_bool(0.5),
            packed: false,
        }
    }

    fn syscall(&mut self) -> Syscall {
        let n = self.rng.random_range(0..5usize);
        Syscall {
            base: "fake".into(),
            variant: Some(self.upper_ident()),
            params: (0..n)
                .map(|i| Param::new(format!("a{i}"), self.ty(3)))
                .collect(),
            ret: None,
        }
    }

    fn spec_file(&mut self) -> SpecFile {
        let mut structs: Vec<StructDef> = (0..self.rng.random_range(0..4usize))
            .map(|_| self.struct_def())
            .collect();
        structs.sort_by(|a, b| a.name.cmp(&b.name));
        structs.dedup_by(|a, b| a.name == b.name);
        let mut items: Vec<Item> = Vec::new();
        items.push(Item::Resource(Resource {
            name: "res_x".into(),
            base: "int32".into(),
            values: vec![],
        }));
        items.extend(structs.into_iter().map(Item::Struct));
        let mut seen = BTreeSet::new();
        for _ in 0..self.rng.random_range(0..4usize) {
            let c = self.syscall();
            if seen.insert(c.name()) {
                items.push(Item::Syscall(c));
            }
        }
        let mut fseen = BTreeSet::new();
        for _ in 0..self.rng.random_range(0..3usize) {
            let fname = format!("fl_{}", self.ident());
            let v = self.rng.random_range(1..64u64);
            if fseen.insert(fname.clone()) {
                items.push(Item::Flags(FlagsDef {
                    name: fname,
                    values: vec![ConstExpr::Num(v)],
                }));
            }
        }
        SpecFile {
            name: "prop.txt".into(),
            items,
        }
    }
}

/// print → parse is the identity on well-formed spec files.
#[test]
fn printer_parser_round_trip() {
    for seed in 0..128u64 {
        let file = Gen::new(seed).spec_file();
        let printed = print_file(&file);
        let reparsed =
            parse("prop.txt", &printed).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{printed}"));
        assert_eq!(reparsed.items, file.items, "seed {seed}\n{printed}");
    }
}

/// The _IOC encoding round-trips through its field extractors.
#[test]
fn ioc_encoding_round_trips() {
    let mut g = Gen::new(0xC0DE);
    for case in 0..256 {
        let dir = g.rng.random_range(0..4u64);
        let ty = g.rng.random_range(0..256u64);
        let nr = g.rng.random_range(0..256u64);
        let size = g.rng.random_range(0..16384u64);
        let cmd = cmacro::ioc(dir, ty, nr, size);
        assert_eq!(cmacro::ioc_dir(cmd), dir, "case {case}");
        assert_eq!(cmacro::ioc_type(cmd), ty, "case {case}");
        assert_eq!(cmacro::ioc_nr(cmd), nr, "case {case}");
        assert_eq!(cmacro::ioc_size(cmd), size, "case {case}");
    }
}

/// Struct layout sizes are always a multiple of alignment and fields
/// never overlap (non-union).
#[test]
fn layout_invariants() {
    for seed in 0..128u64 {
        let def = Gen::new(seed).struct_def();
        let db = SpecDb::from_files(vec![SpecFile {
            name: "t".into(),
            items: vec![Item::Struct(def.clone())],
        }]);
        let Ok(l) = kernelgpt::syzlang::layout::struct_layout(&def, &db) else {
            continue;
        };
        assert!(l.align.is_power_of_two(), "seed {seed}");
        assert_eq!(l.size % l.align, 0, "seed {seed}");
        if def.is_union {
            continue;
        }
        let Ok((offsets, total)) = kernelgpt::syzlang::layout::field_offsets(&def, &db) else {
            continue;
        };
        let mut prev_end = 0u64;
        for (f, off) in def.fields.iter().zip(&offsets) {
            assert!(*off >= prev_end, "seed {seed}: field overlap");
            if let Ok(fl) = kernelgpt::syzlang::layout::type_layout(&f.ty, &db) {
                prev_end = off + fl.size;
            }
        }
        assert!(prev_end <= total, "seed {seed}");
    }
}

/// The encoder never panics on generator-produced values, and always
/// accepts the zero value of any layoutable struct.
#[test]
fn encode_zero_value_never_panics() {
    for seed in 0..128u64 {
        let def = Gen::new(seed ^ 0xE17C0DE).struct_def();
        let db = SpecDb::from_files(vec![SpecFile {
            name: "t".into(),
            items: vec![Item::Struct(def.clone())],
        }]);
        let consts = kernelgpt::syzlang::ConstDb::new();
        let ty = Type::Named(def.name.clone());
        if let Ok(v) = kernelgpt::syzlang::value::zero_value(&ty, &db) {
            let mut mb = kernelgpt::syzlang::value::MemBuilder::new(&db, &consts);
            let _ = mb.encode_arg(
                &Type::Ptr {
                    dir: Dir::In,
                    elem: Box::new(ty),
                },
                &kernelgpt::syzlang::Value::ptr_to(v),
                &|r| r.fallback,
            );
        }
    }
}

/// `CoverageMap` agrees with `BTreeSet<u64>` semantics — insert,
/// contains, len, union/merge, disjointness, and sorted iteration —
/// on random block sets shaped like real kernel coverage.
#[test]
fn coverage_map_matches_btreeset() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9));
        let mut map_a = CoverageMap::new();
        let mut map_b = CoverageMap::new();
        let mut set_a: BTreeSet<u64> = BTreeSet::new();
        let mut set_b: BTreeSet<u64> = BTreeSet::new();
        for _ in 0..rng.random_range(0..400u32) {
            // Same id-space shape as the kernel: per-handler 4096-block
            // strata with small offsets.
            let block = u64::from(rng.random_range(1..6u32)) * 4096 + rng.random_range(0..4100u64);
            if rng.random_bool(0.5) {
                assert_eq!(map_a.insert(block), set_a.insert(block), "seed {seed}");
            } else {
                assert_eq!(map_b.insert(block), set_b.insert(block), "seed {seed}");
            }
        }
        assert_eq!(map_a.len(), set_a.len(), "seed {seed}");
        assert_eq!(
            map_a.is_disjoint(&map_b),
            set_a.is_disjoint(&set_b),
            "seed {seed}"
        );
        for &b in &set_a {
            assert!(map_a.contains(b), "seed {seed}: missing {b}");
        }
        // Diff helpers agree with set difference, without mutation.
        let diff: BTreeSet<u64> = set_b.difference(&set_a).copied().collect();
        assert_eq!(map_a.diff_in(&map_b).to_btree_set(), diff, "seed {seed}");
        assert_eq!(map_a.to_btree_set(), set_a, "seed {seed}: diff_in mutated");
        let mut merged = map_a.clone();
        assert_eq!(
            merged.merge_diff(&map_b).to_btree_set(),
            diff,
            "seed {seed}"
        );
        // Merge = set union, and the return value counts new blocks.
        let old_len = map_a.len();
        let newly = map_a.merge(&map_b);
        let union: BTreeSet<u64> = set_a.union(&set_b).copied().collect();
        assert_eq!(merged, map_a, "seed {seed}: merge_diff union differs");
        assert_eq!(map_a.len(), union.len(), "seed {seed}");
        assert_eq!(newly, union.len() - old_len, "seed {seed}");
        // Iteration is sorted and complete; the BTreeSet view matches.
        let from_iter: Vec<u64> = map_a.iter().collect();
        let expect: Vec<u64> = union.iter().copied().collect();
        assert_eq!(from_iter, expect, "seed {seed}");
        assert_eq!(map_a.to_btree_set(), union, "seed {seed}");
        // Round trip through FromIterator preserves equality.
        let rebuilt: CoverageMap = union.iter().copied().collect();
        assert_eq!(rebuilt, map_a, "seed {seed}");
    }
}

/// The seed hub's epoch-boundary exchange is pinned to shard-id
/// order: on random shard corpora, hub contents match an independent
/// `BTreeSet`-based first-publisher-wins fold over shards 0..n — and
/// publishing in a different order attributes contested coverage
/// differently, which is exactly why the sharded driver publishes in
/// ascending shard-id order at every boundary.
#[test]
fn seed_hub_exchange_order_is_pinned() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x005E_ED4B));
        let shards = rng.random_range(2..6u32);
        // Random per-shard corpora. Entries within one corpus have
        // disjoint contributions by construction; overlap across
        // shards comes from the shared small block range.
        let mut corpora: Vec<Corpus> = Vec::new();
        let mut published_sets: Vec<Vec<BTreeSet<u64>>> = Vec::new();
        let mut max_entries = 0usize;
        for s in 0..shards {
            let mut corpus = Corpus::new(64, u64::from(s));
            let mut sets = Vec::new();
            for _ in 0..rng.random_range(1..6u32) {
                let blocks: BTreeSet<u64> = (0..rng.random_range(1..5u32))
                    .map(|_| rng.random_range(0..24u64))
                    .collect();
                let cov = blocks.iter().copied().collect();
                if corpus.observe(Program::default(), &cov, None) > 0 {
                    sets.push(blocks);
                }
            }
            max_entries = max_entries.max(corpus.len());
            // The recorded per-entry claims are the corpus's own
            // contribution keys, in admission order.
            let recorded: Vec<BTreeSet<u64>> = (0..corpus.len())
                .map(|i| corpus.entry(i).contributed.to_btree_set())
                .collect();
            corpora.push(corpus);
            published_sets.push(recorded);
        }
        // top_k ≥ every corpus size: ranking only picks which seeds
        // fill the k slots, so with all slots available the hub must
        // retain exactly the first-publisher-wins claims.
        let mut hub = SeedHub::new(max_entries.max(1));
        for (s, corpus) in corpora.iter().enumerate() {
            hub.publish(s as u32, corpus);
        }
        // Reference fold in shard-id order over BTreeSets. Claims
        // within one shard are disjoint, so intra-shard order is
        // irrelevant and only the shard order is load-bearing.
        let mut reference: Vec<(u32, BTreeSet<u64>)> = Vec::new();
        let mut claimed: BTreeSet<u64> = BTreeSet::new();
        for (s, sets) in published_sets.iter().enumerate() {
            for blocks in sets {
                let novel: BTreeSet<u64> = blocks.difference(&claimed).copied().collect();
                if !novel.is_empty() {
                    claimed.extend(&novel);
                    reference.push((s as u32, novel));
                }
            }
        }
        let mut got: Vec<(u32, BTreeSet<u64>)> = hub
            .seeds()
            .iter()
            .map(|h| (h.shard, h.contributed.to_btree_set()))
            .collect();
        let mut want = reference.clone();
        got.sort();
        want.sort();
        assert_eq!(got, want, "seed {seed}");
        assert_eq!(hub.coverage().to_btree_set(), claimed, "seed {seed}");
        // Publishing in reverse shard order attributes contested
        // blocks to the *other* first publisher — matching the same
        // reference fold run in reverse. The claimed union is order-
        // independent, the attribution is not: that is why the driver
        // pins ascending shard-id order at every boundary.
        let mut reversed = SeedHub::new(max_entries.max(1));
        for (s, corpus) in corpora.iter().enumerate().rev() {
            reversed.publish(s as u32, corpus);
        }
        assert_eq!(
            reversed.coverage().to_btree_set(),
            claimed,
            "seed {seed}: claimed union must be order-independent"
        );
        let mut rev_reference: Vec<(u32, BTreeSet<u64>)> = Vec::new();
        let mut rev_claimed: BTreeSet<u64> = BTreeSet::new();
        for (s, sets) in published_sets.iter().enumerate().rev() {
            for blocks in sets {
                let novel: BTreeSet<u64> = blocks.difference(&rev_claimed).copied().collect();
                if !novel.is_empty() {
                    rev_claimed.extend(&novel);
                    rev_reference.push((s as u32, novel));
                }
            }
        }
        let mut rev_got: Vec<(u32, BTreeSet<u64>)> = reversed
            .seeds()
            .iter()
            .map(|h| (h.shard, h.contributed.to_btree_set()))
            .collect();
        rev_got.sort();
        rev_reference.sort();
        assert_eq!(rev_got, rev_reference, "seed {seed} (reverse order)");
        // After import, every shard knows the full claimed union.
        for (s, corpus) in corpora.iter_mut().enumerate() {
            let mut want_cov = corpus.coverage().to_btree_set();
            want_cov.extend(&claimed);
            hub.import_into(s as u32, corpus);
            assert_eq!(
                corpus.coverage().to_btree_set(),
                want_cov,
                "seed {seed}: shard {s} missing imported coverage"
            );
        }
    }
}

/// The lowered-IR generator is bit-identical to the pre-lowering AST
/// walk — same RNG draw sequence, same program streams, same mutation
/// chains — across seeds, on both the dm ground-truth suite and a
/// merged multi-blueprint suite (drivers and sockets, shared builtin
/// resources, cross-file name spaces). Execution outcomes through the
/// lowered encode→dispatch path match the AST executor on the same
/// kernels.
#[test]
fn lowered_pipeline_is_bit_identical_to_ast_walk() {
    use kernelgpt::csrc::{flagship, KernelCorpus};
    use kernelgpt::syzlang::SpecDb;
    use kernelgpt::vkernel::VKernel;

    let suites: Vec<(&str, Vec<kernelgpt::csrc::blueprint::Blueprint>)> = vec![
        ("dm ground truth", vec![flagship::dm()]),
        (
            "merged multi-blueprint",
            vec![
                flagship::dm(),
                flagship::cec(),
                flagship::rds(),
                flagship::caif_stream(),
            ],
        ),
    ];
    for (label, blueprints) in suites {
        let kc = KernelCorpus::from_blueprints(blueprints.clone());
        let suite: Vec<_> = kc
            .blueprints()
            .iter()
            .map(|bp| bp.ground_truth_spec())
            .collect();
        let db = SpecDb::from_files(suite);
        let kernel = VKernel::boot(blueprints);
        // Lower once per suite and execute through reused scratches,
        // like the campaign loop does (the one-shot `execute` wrapper
        // would re-lower per call).
        let lowered_db = std::sync::Arc::new(LoweredDb::build(&db, kc.consts()));
        let mut low_scratch = ExecScratch::from_lowered(std::sync::Arc::clone(&lowered_db));
        let mut ast_scratch = AstScratch::new(&db, kc.consts());
        for seed in [1u64, 42, 0xDEAD_BEEF] {
            let mut lowered = Generator::from_lowered(std::sync::Arc::clone(&lowered_db), seed);
            let mut ast = AstGenerator::new(&db, kc.consts(), seed);
            let mut lp = Program::default();
            let mut ap = Program::default();
            for step in 0..120u32 {
                // Interleave fresh generation and chained mutation,
                // like the campaign loop does.
                let (l, a) = if step % 4 == 0 {
                    (lowered.gen_program(8), ast.gen_program(8))
                } else {
                    (lowered.mutate(&lp, 8), ast.mutate(&ap, 8))
                };
                assert_eq!(l, a, "{label}: seed {seed} step {step}");
                if step % 3 == 0 {
                    execute_with(&kernel, &l, &mut low_scratch);
                    ast_execute_with(&kernel, &l, &mut ast_scratch);
                    assert_eq!(
                        low_scratch.rets, ast_scratch.rets,
                        "{label}: seed {seed} step {step}"
                    );
                    assert_eq!(
                        low_scratch.state.coverage, ast_scratch.state.coverage,
                        "{label}: seed {seed} step {step}"
                    );
                    assert_eq!(
                        low_scratch.state.crash, ast_scratch.state.crash,
                        "{label}: seed {seed} step {step}"
                    );
                }
                lp = l;
                ap = a;
            }
        }
    }
}

/// The crash-triage report of a sharded campaign is a pure function
/// of `(config, shards)`: on the deep-chain suite — whose crashes sit
/// behind 3-4-call producer chains, so shards genuinely race to
/// discover them — the full [`TriageReport`] (signatures, first-seen
/// epoch/shard, dedup counts, raw and ddmin-minimized reproducers) is
/// bit-identical at 1/2/4/8 worker threads, across seeds. Capture
/// happens inside the deterministic shard loops; minimization runs at
/// epoch boundaries in shard-id order on the driving thread — the
/// same discipline the seed hub is pinned to above.
#[test]
fn triage_report_is_bit_identical_at_any_thread_count() {
    use kernelgpt::csrc::{deepchain, KernelCorpus};
    use kernelgpt::fuzzer::{CampaignConfig, ShardedCampaign};
    use kernelgpt::vkernel::VKernel;

    let kc = KernelCorpus::from_blueprints(deepchain::suite());
    let suite: Vec<_> = kc
        .blueprints()
        .iter()
        .map(|bp| bp.ground_truth_spec())
        .collect();
    let kernel = VKernel::boot(deepchain::suite());
    for seed in [1u64, 7, 0xDEAD_BEEF] {
        let cfg = CampaignConfig {
            execs: 3000,
            seed,
            max_prog_len: 10,
            hub_epoch: 125,
            hub_top_k: 4,
            ..CampaignConfig::default()
        };
        let run = |threads: usize| {
            ShardedCampaign::new(&kernel, &suite, kc.consts(), cfg.clone())
                .with_shards(8)
                .with_threads(threads)
                .run()
        };
        let base = run(1);
        assert!(
            !base.triage.is_empty(),
            "seed {seed}: no crash triaged on the deep-chain suite"
        );
        for threads in [2usize, 4, 8] {
            let r = run(threads);
            assert_eq!(base.coverage, r.coverage, "seed {seed} threads {threads}");
            assert_eq!(base.crashes, r.crashes, "seed {seed} threads {threads}");
            assert_eq!(base.triage, r.triage, "seed {seed} threads {threads}");
        }
    }
}

/// Campaign-produced minimized reproducers are 1-minimal against the
/// real kernel: each still triggers its signature through the lowered
/// dispatch path, and removing **any single call** (with resource
/// references remapped) loses the crash.
#[test]
fn triage_minimized_reproducers_are_one_minimal() {
    use kernelgpt::csrc::{deepchain, KernelCorpus};
    use kernelgpt::fuzzer::{CampaignConfig, ShardedCampaign};
    use kernelgpt::triage::without_call;
    use kernelgpt::vkernel::VKernel;

    let kc = KernelCorpus::from_blueprints(deepchain::suite());
    let suite: Vec<_> = kc
        .blueprints()
        .iter()
        .map(|bp| bp.ground_truth_spec())
        .collect();
    let kernel = VKernel::boot(deepchain::suite());
    let cfg = CampaignConfig {
        execs: 8000,
        seed: 1,
        max_prog_len: 12,
        hub_epoch: 250,
        hub_top_k: 4,
        ..CampaignConfig::default()
    };
    let r = ShardedCampaign::new(&kernel, &suite, kc.consts(), cfg).run();
    assert!(
        r.triage.len() >= 2,
        "expected several signatures, got {}",
        r.triage.len()
    );
    let (db, lowered) =
        kernelgpt::syzlang::SpecCache::global().get_or_build_lowered(&suite, kc.consts());
    let _ = db;
    let mut scratch = ExecScratch::from_lowered(lowered);
    for e in r.triage.entries() {
        execute_with(&kernel, &e.minimized, &mut scratch);
        assert_eq!(
            scratch.crash().map(|c| c.signature),
            Some(e.signature),
            "{}: minimized reproducer lost its crash",
            e.title
        );
        for i in 0..e.minimized.len() {
            let probe = without_call(&e.minimized, i);
            execute_with(&kernel, &probe, &mut scratch);
            assert_ne!(
                scratch.crash().map(|c| c.signature),
                Some(e.signature),
                "{}: still crashes without call {i} — not 1-minimal",
                e.title
            );
        }
    }
}

/// Synthetic blueprints always emit parseable C whose macros agree
/// with the blueprint's command values.
#[test]
fn synthetic_blueprints_are_coherent() {
    for seed in 0..32u64 {
        let plan = kernelgpt::csrc::synth::SynthPlan {
            drivers_loaded_complete: 1,
            drivers_loaded_partial: 1,
            drivers_loaded_none: 1,
            drivers_unloaded: 0,
            drivers_friendly: 1,
            drivers_too_deep: 0,
            sockets_loaded_complete: 1,
            sockets_loaded_partial: 1,
            sockets_loaded_none: 0,
            sockets_unloaded: 0,
            sockets_opaque: 0,
        };
        let bps = kernelgpt::csrc::synth::generate(&plan, seed * 17);
        for bp in &bps {
            let src = kernelgpt::csrc::emit::emit_blueprint(bp);
            let file = kernelgpt::csrc::parser::cparse("p.c", &src)
                .unwrap_or_else(|e| panic!("seed {seed} {}: {e}\n{src}", bp.id));
            let corpus = kernelgpt::csrc::Corpus::build(vec![file]);
            for cmd in &bp.cmds {
                let v = cmacro::eval_const(&corpus, &cmd.name);
                assert_eq!(v, Some(bp.cmd_value(cmd)), "seed {seed} {}", bp.id);
            }
        }
    }
}
