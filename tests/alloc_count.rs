//! Heap-allocation accounting for the execution hot path.
//!
//! Installs a counting global allocator and measures how many
//! allocations one steady-state `execute_with` pass performs on the
//! lowered-IR path versus the pre-lowering AST walk. The AST encoder
//! clones a `StructDef` per struct-typed encode and resolves symbolic
//! constants and flag sets through name-keyed maps; the lowered path
//! only allocates what the program's values force on any path (the
//! kernel's `read_cstring` for `openat`, byte-buffer clones for
//! `array[int8]` payloads). The measured numbers are recorded in
//! EXPERIMENTS.md — rerun this test with `--nocapture` to refresh
//! them.

use kernelgpt::csrc::KernelCorpus;
use kernelgpt::fuzzer::{
    ast_execute_with, execute_with, AstScratch, ExecScratch, Generator, Program,
};
use kernelgpt::syzlang::SpecDb;
use kernelgpt::vkernel::VKernel;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts allocation events (alloc + realloc); frees are not counted
/// — the metric is allocator traffic, not live bytes.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates everything to `System`; the counter is a relaxed
// atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn events() -> u64 {
    ALLOC_EVENTS.load(Ordering::Relaxed)
}

/// Single test (so no parallel test thread pollutes the counters):
/// at steady state the lowered exec loop performs strictly fewer
/// allocations per exec than the AST walk, with identical outcomes.
#[test]
fn lowered_exec_allocates_less_than_ast_walk() {
    let kc = KernelCorpus::from_blueprints(vec![kernelgpt::csrc::flagship::dm()]);
    let db = SpecDb::from_files(vec![kc.blueprints()[0].ground_truth_spec()]);
    let kernel = VKernel::boot(vec![kernelgpt::csrc::flagship::dm()]);
    let mut g = Generator::new(&db, kc.consts(), 17);
    let progs: Vec<Program> = (0..256).map(|_| g.gen_program(8)).collect();
    let execs = progs.len() as u64;

    let mut low = ExecScratch::new(&db, kc.consts());
    let mut ast = AstScratch::new(&db, kc.consts());
    // Warm-up: let every pooled buffer reach its high-water mark.
    for p in &progs {
        execute_with(&kernel, p, &mut low);
        ast_execute_with(&kernel, p, &mut ast);
    }

    let before = events();
    for p in &progs {
        execute_with(&kernel, p, &mut low);
    }
    let lowered_events = events() - before;

    let before = events();
    for p in &progs {
        ast_execute_with(&kernel, p, &mut ast);
    }
    let ast_events = events() - before;

    println!(
        "alloc events over {execs} execs: lowered {lowered_events} ({:.1}/exec) vs ast {ast_events} ({:.1}/exec)",
        lowered_events as f64 / execs as f64,
        ast_events as f64 / execs as f64,
    );
    // The remaining lowered-path allocations are value-driven (path
    // strings decoded by the kernel, buffer growth past high-water
    // marks), not per-exec bookkeeping: well under the AST walk's.
    assert!(
        lowered_events < ast_events,
        "lowered path must allocate less: {lowered_events} vs {ast_events}"
    );
}
