//! Cross-crate integration tests: corpus → extractor → KernelGPT →
//! validator → fuzzer → virtual kernel, end to end.

use kernelgpt::core::{KernelGpt, Strategy};
use kernelgpt::csrc::{flagship, KernelCorpus};
use kernelgpt::extractor::find_handlers;
use kernelgpt::fuzzer::{Campaign, CampaignConfig, ShardedCampaign};
use kernelgpt::llm::{ModelKind, OracleModel};
use kernelgpt::syzlang::{validate::validate, SpecDb};
use kernelgpt::vkernel::VKernel;

/// The full pipeline on the paper's running example finds the
/// device-mapper CVE that motivates the paper (Figure 2d's
/// "WARNING: kmalloc bug in ctl_ioctl").
#[test]
fn kernelgpt_spec_finds_dm_cve() {
    let kc = KernelCorpus::from_blueprints(vec![flagship::dm()]);
    let handlers = find_handlers(kc.corpus());
    let model = OracleModel::new(ModelKind::Gpt4, 0);
    let report = KernelGpt::new(&model, kc.corpus()).generate_all(&handlers, kc.consts());
    assert_eq!(report.valid_count(), 1);

    let kernel = VKernel::boot(vec![flagship::dm()]);
    let cfg = CampaignConfig {
        execs: 8_000,
        seed: 0,
        ..CampaignConfig::default()
    };
    let result = Campaign::new(&kernel, &report.specs(), kc.consts(), cfg).run();
    assert!(
        result.crashes.contains_key("kmalloc bug in ctl_ioctl"),
        "crashes: {:?}",
        result.crashes
    );
    let (_, cve) = &result.crashes["kmalloc bug in ctl_ioctl"];
    assert_eq!(cve.as_deref(), Some("CVE-2024-23851"));
}

/// The sharded engine drives the same full pipeline: KernelGPT specs,
/// parallel workers sharing one booted kernel, and the dm CVE found —
/// with a result that is independent of the worker thread count.
#[test]
fn sharded_kernelgpt_campaign_finds_dm_cve_thread_invariantly() {
    let kc = KernelCorpus::from_blueprints(vec![flagship::dm()]);
    let handlers = find_handlers(kc.corpus());
    let model = OracleModel::new(ModelKind::Gpt4, 0);
    let report = KernelGpt::new(&model, kc.corpus()).generate_all(&handlers, kc.consts());
    let kernel = VKernel::boot(vec![flagship::dm()]);
    let cfg = CampaignConfig {
        execs: 8_000,
        seed: 0,
        // Exchange on: seeds flow between shards every 1000 execs, in
        // shard-id order, so the result stays thread-count invariant.
        hub_epoch: 1_000,
        hub_top_k: 4,
        ..CampaignConfig::default()
    };
    let run = |threads: usize| {
        ShardedCampaign::new(&kernel, &report.specs(), kc.consts(), cfg.clone())
            .with_shards(8)
            .with_threads(threads)
            .run()
    };
    let parallel = run(8);
    assert!(
        parallel.crashes.contains_key("kmalloc bug in ctl_ioctl"),
        "crashes: {:?}",
        parallel.crashes
    );
    let serial = run(1);
    assert_eq!(serial.coverage, parallel.coverage);
    assert_eq!(serial.crashes, parallel.crashes);
}

/// The same campaign under the SyzDescribe spec finds nothing: wrong
/// device path (`.name` instead of `.nodename`) and invisible
/// lookup-table dispatch (the paper's Figure 2c).
#[test]
fn syzdescribe_spec_finds_nothing_on_dm() {
    let kc = KernelCorpus::from_blueprints(vec![flagship::dm()]);
    let handlers = find_handlers(kc.corpus());
    let outs = kernelgpt::syzdescribe::describe_all(kc.corpus(), &handlers, kc.consts());
    let suite: Vec<_> = outs.into_iter().filter_map(|o| o.spec).collect();
    let kernel = VKernel::boot(vec![flagship::dm()]);
    if suite.is_empty() {
        return; // nothing recovered at all — consistent with the paper
    }
    let cfg = CampaignConfig {
        execs: 5_000,
        seed: 0,
        ..CampaignConfig::default()
    };
    let result = Campaign::new(&kernel, &suite, kc.consts(), cfg).run();
    assert_eq!(result.blocks(), 0, "SyzDescribe should reach nothing on dm");
    assert_eq!(result.unique_crashes(), 0);
}

/// Every flagship ground-truth spec drives real coverage: the corpus,
/// encoder, and kernel agree on layouts and command values.
#[test]
fn ground_truth_specs_cover_every_flagship() {
    let kc = KernelCorpus::flagship_only();
    let kernel = VKernel::boot(kc.blueprints().to_vec());
    for bp in kc.blueprints() {
        // Anonymous sub-handlers have no direct producer; their
        // coverage arrives via the parent (tested elsewhere).
        if bp
            .driver()
            .is_some_and(|d| matches!(d.reg, kernelgpt::csrc::blueprint::RegStyle::Anon))
        {
            continue;
        }
        let cfg = CampaignConfig {
            execs: 600,
            seed: 7,
            max_prog_len: 6,
            ..CampaignConfig::default()
        };
        let r = Campaign::new(&kernel, &[bp.ground_truth_spec()], kc.consts(), cfg).run();
        assert!(
            r.blocks() >= 4,
            "{}: ground truth reaches only {} blocks",
            bp.id,
            r.blocks()
        );
    }
}

/// Generated specs for the whole flagship set validate as one suite.
#[test]
fn flagship_generation_validates_as_suite() {
    let kc = KernelCorpus::flagship_only();
    let handlers = find_handlers(kc.corpus());
    let model = OracleModel::new(ModelKind::Gpt4, 0);
    let report = KernelGpt::new(&model, kc.corpus()).generate_all(&handlers, kc.consts());
    // The vast majority of flagship handlers must come out valid.
    assert!(
        report.valid_count() >= handlers.len() - 4,
        "valid {}/{}: {:?}",
        report.valid_count(),
        handlers.len(),
        report
            .outcomes
            .iter()
            .filter(|o| !o.valid)
            .map(|o| (&o.ops_var, &o.errors))
            .collect::<Vec<_>>()
    );
    let db = SpecDb::from_files(report.specs());
    let errors = validate(&db, kc.consts());
    assert!(errors.is_empty(), "{errors:?}");
}

/// The KVM dependency chain works end to end through generated specs:
/// coverage lands in all three handlers.
#[test]
fn kvm_chain_coverage_spans_subhandlers() {
    let bps = vec![flagship::kvm(), flagship::kvm_vm(), flagship::kvm_vcpu()];
    let kc = KernelCorpus::from_blueprints(bps.clone());
    let handlers = find_handlers(kc.corpus());
    let model = OracleModel::new(ModelKind::Gpt4, 2);
    let report = KernelGpt::new(&model, kc.corpus()).generate_all(&handlers, kc.consts());
    let kernel = VKernel::boot(bps);
    let cfg = CampaignConfig {
        execs: 12_000,
        seed: 3,
        max_prog_len: 10,
        ..CampaignConfig::default()
    };
    let r = Campaign::new(&kernel, &report.specs(), kc.consts(), cfg).run();
    // Handlers get disjoint 4096-block strata; seeing blocks in three
    // strata proves the fd chain was exercised.
    let strata: std::collections::BTreeSet<u64> = r.coverage.iter().map(|b| b / 4096).collect();
    assert!(
        strata.len() >= 3,
        "expected coverage in kvm, kvm_vm and kvm_vcpu strata; got {strata:?}"
    );
}

/// Weak-model generation is strictly worse, as in the §5.2.3 ablation.
#[test]
fn gpt35_produces_fewer_syscalls_than_gpt4() {
    let kc = KernelCorpus::from_blueprints(vec![flagship::dm(), flagship::sg(), flagship::cec()]);
    let handlers = find_handlers(kc.corpus());
    let strong = OracleModel::new(ModelKind::Gpt4, 0);
    let weak = OracleModel::new(ModelKind::Gpt35, 0);
    let strong_n = KernelGpt::new(&strong, kc.corpus())
        .generate_all(&handlers, kc.consts())
        .total_syscalls();
    let weak_n = KernelGpt::new(&weak, kc.corpus())
        .with_strategy(Strategy::Iterative)
        .generate_all(&handlers, kc.consts())
        .total_syscalls();
    assert!(weak_n < strong_n, "weak {weak_n} vs strong {strong_n}");
}
