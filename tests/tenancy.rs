//! Multi-tenant fabric service properties: N named campaigns share
//! one coordinator process and one worker pool, and every tenant's
//! merged result stays **bit-identical** to its own single-process
//! reference — under fair-share scheduling, per-tenant budgets
//! (graceful boundary-aligned termination), worker quarantine, and
//! the full seeded chaos matrix at once.

use kernelgpt::csrc::{deepchain, KernelCorpus};
use kernelgpt::fabric::{
    flap_worker, run_worker, ChannelTransport, FlapOutcome, HealthOpts, ServiceOpts, ServiceStats,
    TenantQuota, TenantResult, TenantService, TenantSpec, Transport, WorkerOpts, WorkerSummary,
};
use kernelgpt::fuzzer::{
    reference_run, CampaignConfig, CampaignResult, Fault, FaultPlan, ShardedCampaign,
};
use kernelgpt::syzlang::{ConstDb, SpecCache, SpecFile};
use kernelgpt::vkernel::VKernel;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const SHARDS: u32 = 8;

fn deepchain_setup() -> (VKernel, Vec<SpecFile>, ConstDb) {
    let kc = KernelCorpus::from_blueprints(deepchain::suite());
    let suite: Vec<_> = kc
        .blueprints()
        .iter()
        .map(|bp| bp.ground_truth_spec())
        .collect();
    (
        VKernel::boot(deepchain::suite()),
        suite,
        kc.consts().clone(),
    )
}

/// 3000 execs / 8 shards at hub_epoch 125 = exactly 3 boundaries,
/// with `CampaignMerge::execs_done` = 1000 / 2000 / 3000 after
/// boundaries 1 / 2 / 3.
fn cfg(seed: u64) -> CampaignConfig {
    CampaignConfig {
        execs: 3000,
        seed,
        max_prog_len: 10,
        hub_epoch: 125,
        hub_top_k: 4,
        ..CampaignConfig::default()
    }
}

fn assert_same(a: &CampaignResult, b: &CampaignResult, label: &str) {
    assert_eq!(a.coverage, b.coverage, "{label}: coverage");
    assert_eq!(a.crashes, b.crashes, "{label}: crashes");
    assert_eq!(a.corpus_size, b.corpus_size, "{label}: corpus_size");
    assert_eq!(a.triage, b.triage, "{label}: triage");
    assert_eq!(
        a.fuel_exhausted, b.fuel_exhausted,
        "{label}: fuel_exhausted"
    );
    assert_eq!(a.execs, b.execs, "{label}: execs");
}

/// What the n-th accepted connection should run.
#[derive(Clone)]
enum Spawn {
    /// A real worker session under this fault plan.
    Worker(FaultPlan),
    /// One flap cycle under this worker id: register, take whatever
    /// reply comes, drop the connection.
    Flap(u64),
    /// Like `Flap`, but held back until some worker has an
    /// acknowledged boundary — by which point every earlier flap's
    /// disconnect has long been polled and struck, so the outcome is
    /// deterministic at any slot count.
    FlapAfterBoundary(u64),
}

/// Run a whole multi-tenant service through the real protocol stack —
/// service and workers on in-memory channel transports, workers
/// spawned on demand per `script` (indices beyond it run clean).
fn run_service(
    kernel: &VKernel,
    suite: &[SpecFile],
    consts: &ConstDb,
    tenants: &[(CampaignConfig, u32, TenantQuota)],
    opts: ServiceOpts,
    script: &[Spawn],
) -> (
    Vec<TenantResult>,
    ServiceStats,
    Vec<WorkerSummary>,
    Vec<FlapOutcome>,
) {
    let db = SpecCache::global().get_or_build(suite);
    let lowered = SpecCache::global().get_or_lower(&db, consts);
    let spec_fp = SpecCache::fingerprint(suite);
    let summaries = Mutex::new(Vec::new());
    let flaps = Mutex::new(Vec::new());
    let boundary_seen = Arc::new(AtomicU64::new(0));
    let (results, stats) = std::thread::scope(|scope| {
        let mut service = TenantService::new(opts);
        for (i, (config, workers, quota)) in tenants.iter().enumerate() {
            service.admit(TenantSpec {
                name: format!("tenant-{i}"),
                config: config.clone(),
                shards: SHARDS,
                workers: *workers,
                spec_fp,
                quota: *quota,
            });
        }
        let mut spawned = 0usize;
        let mut held_flap: Option<u64> = None;
        let mut accept = || -> Option<Box<dyn Transport>> {
            let gate_open = boundary_seen.load(Ordering::SeqCst) > 0;
            let spawn = if gate_open && held_flap.is_some() {
                Spawn::Flap(held_flap.take().unwrap())
            } else {
                loop {
                    let next = script
                        .get(spawned)
                        .cloned()
                        .unwrap_or_else(|| Spawn::Worker(FaultPlan::none()));
                    spawned += 1;
                    match next {
                        // Stash it and keep serving the rest of the
                        // script so the pool never starves waiting on
                        // the gate.
                        Spawn::FlapAfterBoundary(id) if !gate_open => held_flap = Some(id),
                        Spawn::FlapAfterBoundary(id) => break Spawn::Flap(id),
                        other => break other,
                    }
                }
            };
            let (service_end, worker_end) = ChannelTransport::pair();
            let lowered = Arc::clone(&lowered);
            let summaries = &summaries;
            let flaps = &flaps;
            let boundary_seen = Arc::clone(&boundary_seen);
            scope.spawn(move || match spawn {
                Spawn::Worker(plan) => {
                    let opts = WorkerOpts {
                        faults: plan,
                        reply_timeout: Duration::from_millis(250),
                        on_boundary: Some(Box::new(move |b| {
                            boundary_seen.fetch_max(b, Ordering::SeqCst);
                        })),
                        ..WorkerOpts::default()
                    };
                    let summary = run_worker(Box::new(worker_end), opts, |fp| {
                        (fp == spec_fp).then_some((kernel, lowered))
                    })
                    .expect("worker protocol violation");
                    summaries.lock().unwrap().push(summary);
                }
                Spawn::Flap(worker_id) | Spawn::FlapAfterBoundary(worker_id) => {
                    let outcome =
                        flap_worker(Box::new(worker_end), worker_id, Duration::from_secs(10));
                    flaps.lock().unwrap().push(outcome);
                }
            });
            Some(Box::new(service_end))
        };
        service.run(&mut accept).expect("service")
    });
    (
        results,
        stats,
        summaries.into_inner().unwrap(),
        flaps.into_inner().unwrap(),
    )
}

/// Three tenants with different seeds and different worker counts
/// (1, 2, and 4) share one pool: every tenant's result is
/// bit-identical to its single-process `ShardedCampaign`, and the
/// round-robin grant ledger matches each tenant's demand exactly.
#[test]
fn three_tenants_at_mixed_worker_counts_are_each_bit_identical() {
    let (kernel, suite, consts) = deepchain_setup();
    let seeds = [1u64, 7, 0xDEAD_BEEF];
    let workers = [1u32, 2, 4];
    let tenants: Vec<_> = seeds
        .iter()
        .zip(workers)
        .map(|(&seed, w)| (cfg(seed), w, TenantQuota::unlimited()))
        .collect();
    let (results, stats, summaries, flaps) = run_service(
        &kernel,
        &suite,
        &consts,
        &tenants,
        ServiceOpts {
            lease_timeout: Duration::from_secs(60),
            ..ServiceOpts::default()
        },
        &[],
    );
    assert_eq!(results.len(), 3);
    for (i, (&seed, result)) in seeds.iter().zip(&results).enumerate() {
        let reference = ShardedCampaign::new(&kernel, &suite, &consts, cfg(seed))
            .with_shards(SHARDS)
            .run();
        assert_same(&reference, &result.result, &format!("tenant {i}"));
        assert_eq!(result.tenant, u32::try_from(i).unwrap());
        assert_eq!(result.name, format!("tenant-{i}"));
        assert!(!result.budget_exhausted, "tenant {i}: unlimited quota");
        assert_eq!(result.boundaries, 3, "tenant {i}");
        assert_eq!(result.stats.rejected_frames, 0, "tenant {i}");
        assert_eq!(result.stats.expired_leases, 0, "tenant {i}");
    }
    assert_eq!(stats.grants, 7, "one grant per requested range slot");
    assert_eq!(
        stats.grants_per_tenant,
        vec![1, 2, 4],
        "round-robin must match each tenant's demand"
    );
    assert_eq!(stats.parked, 0);
    assert_eq!(stats.quarantines, 0);
    assert_eq!(summaries.len(), 7);
    assert!(summaries.iter().all(|s| s.completed));
    assert!(flaps.is_empty());
}

/// A tenant whose exec quota dries up mid-campaign terminates
/// gracefully at the next boundary: its workers all receive `Finish`
/// (no surrender), the result is marked `budget_exhausted`, and it is
/// bit-identical to an unlimited run halted at the same boundary —
/// while the co-tenant runs to natural completion untouched.
#[test]
fn budget_starved_tenant_terminates_gracefully_at_a_boundary() {
    let (kernel, suite, consts) = deepchain_setup();
    let db = SpecCache::global().get_or_build(&suite);
    let lowered = SpecCache::global().get_or_lower(&db, &consts);
    // Quota 1500 is crossed by the boundary-2 commit (execs_done
    // 2000): the tenant must stop there, one boundary short.
    let quota = TenantQuota::execs(1500);
    let starved_ref = reference_run(&kernel, &lowered, &cfg(7), SHARDS, Some(1500));
    assert!(starved_ref.budget_exhausted);
    assert_eq!(starved_ref.boundaries, 2);
    let tenants = vec![(cfg(1), 2, TenantQuota::unlimited()), (cfg(7), 2, quota)];
    let (results, stats, summaries, _) = run_service(
        &kernel,
        &suite,
        &consts,
        &tenants,
        ServiceOpts {
            lease_timeout: Duration::from_secs(60),
            ..ServiceOpts::default()
        },
        &[],
    );
    let unlimited_ref = ShardedCampaign::new(&kernel, &suite, &consts, cfg(1))
        .with_shards(SHARDS)
        .run();
    assert_same(&unlimited_ref, &results[0].result, "unlimited tenant");
    assert!(!results[0].budget_exhausted);
    assert_eq!(results[0].boundaries, 3);

    assert_same(&starved_ref.result, &results[1].result, "starved tenant");
    assert!(
        results[1].budget_exhausted,
        "the starved tenant must be marked budget_exhausted"
    );
    assert_eq!(results[1].boundaries, starved_ref.boundaries);
    assert_eq!(
        results[1].usage.execs, 2000,
        "execs charged at the terminating boundary"
    );
    assert!(results[1].usage.utilization_permille() >= 1000);
    assert_eq!(
        results[1].stats.expired_leases, 0,
        "graceful termination releases leases without expiring them"
    );
    assert_eq!(summaries.len(), 4);
    assert!(
        summaries.iter().all(|s| s.completed),
        "every worker must exit via Finish, not surrender: {summaries:?}"
    );
    assert_eq!(stats.quarantines, 0);
}

/// A worker that flaps (registers, takes a lease, disconnects)
/// accumulates strikes and is quarantined: its next registration is
/// refused with `Retry {{ quarantined: true }}` and the exact
/// cooldown, while a healthy replacement finishes the campaign with
/// the result unchanged.
#[test]
fn flapping_worker_is_quarantined_and_refused_for_the_cooldown() {
    let (kernel, suite, consts) = deepchain_setup();
    let reference = ShardedCampaign::new(&kernel, &suite, &consts, cfg(1))
        .with_shards(SHARDS)
        .run();
    let tenants = vec![(cfg(1), 1, TenantQuota::unlimited())];
    // Three flaps trip the strike limit; the fourth registration must
    // be refused. Everything after the script runs clean.
    let script = vec![
        Spawn::Flap(77),
        Spawn::Flap(77),
        Spawn::Flap(77),
        Spawn::Flap(77),
    ];
    let (results, stats, summaries, flaps) = run_service(
        &kernel,
        &suite,
        &consts,
        &tenants,
        ServiceOpts {
            lease_timeout: Duration::from_secs(60),
            health: HealthOpts {
                strike_limit: 3,
                quarantine_grants: 8,
                worker_cap: 0,
                park_grants: 2,
            },
        },
        &script,
    );
    assert_same(&reference, &results[0].result, "flapped campaign");
    assert_eq!(flaps.len(), 4);
    assert!(
        flaps[..3]
            .iter()
            .all(|f| matches!(f, FlapOutcome::Granted { .. })),
        "the first three flaps must each take (and abandon) a lease: {flaps:?}"
    );
    match flaps[3] {
        FlapOutcome::Refused(advice) => {
            assert!(advice.quarantined, "the refusal must name the quarantine");
            // Quarantined at grant cycle 3 for 8 cycles; refused
            // before any further grant: exactly 8 remaining.
            assert_eq!(advice.after_grants, 8);
        }
        ref other => panic!("fourth flap must be refused, got {other:?}"),
    }
    assert_eq!(stats.quarantines, 1);
    assert!(stats.quarantine_refusals >= 1);
    assert!(
        results[0].stats.expired_leases >= 3,
        "each abandoned lease must be revoked"
    );
    assert!(summaries.iter().any(|s| s.completed));
}

/// Registrations beyond the worker cap are parked with a retry-after
/// grant — the worker gets `Retry {{ quarantined: false }}` and the
/// declared park delay, never a silent drop — and the pool still
/// drives every tenant to its bit-identical result.
#[test]
fn registrations_beyond_the_worker_cap_are_parked_with_retry_advice() {
    let (kernel, suite, consts) = deepchain_setup();
    let db = SpecCache::global().get_or_build(&suite);
    let lowered = SpecCache::global().get_or_lower(&db, &consts);
    let spec_fp = SpecCache::fingerprint(&suite);
    let tenants = [(cfg(1), 1u32), (cfg(7), 1u32)];
    let summaries = Mutex::new(Vec::<WorkerSummary>::new());
    let first_done = AtomicBool::new(false);
    let (results, stats) = std::thread::scope(|scope| {
        let mut service = TenantService::new(ServiceOpts {
            lease_timeout: Duration::from_secs(60),
            health: HealthOpts {
                strike_limit: 3,
                quarantine_grants: 8,
                worker_cap: 1,
                park_grants: 2,
            },
        });
        for (i, (config, workers)) in tenants.iter().enumerate() {
            service.admit(TenantSpec {
                name: format!("tenant-{i}"),
                config: config.clone(),
                shards: SHARDS,
                workers: *workers,
                spec_fp,
                quota: TenantQuota::unlimited(),
            });
        }
        let mut spawned = 0usize;
        let mut accept = || -> Option<Box<dyn Transport>> {
            // Worker A seats tenant 0 (the cap of one is now full);
            // worker B registers while A holds the only seat and must
            // be parked; worker C arrives only after A finished, so
            // the freed cap admits it for tenant 1.
            if spawned == 2 && !first_done.load(Ordering::SeqCst) {
                return None;
            }
            let (service_end, worker_end) = ChannelTransport::pair();
            spawned += 1;
            let lowered = Arc::clone(&lowered);
            let kernel = &kernel;
            let summaries = &summaries;
            let first_done = &first_done;
            scope.spawn(move || {
                let opts = WorkerOpts {
                    reply_timeout: Duration::from_millis(250),
                    ..WorkerOpts::default()
                };
                let summary = run_worker(Box::new(worker_end), opts, |fp| {
                    (fp == spec_fp).then_some((kernel, lowered))
                })
                .expect("worker protocol violation");
                if summary.completed {
                    first_done.store(true, Ordering::SeqCst);
                }
                summaries.lock().unwrap().push(summary);
            });
            Some(Box::new(service_end))
        };
        service.run(&mut accept).expect("service")
    });
    for (i, (config, _)) in tenants.iter().enumerate() {
        let reference = ShardedCampaign::new(&kernel, &suite, &consts, config.clone())
            .with_shards(SHARDS)
            .run();
        assert_same(&reference, &results[i].result, &format!("tenant {i}"));
    }
    assert!(
        stats.parked >= 1,
        "the over-cap registration must be parked"
    );
    let summaries = summaries.into_inner().unwrap();
    let parked: Vec<_> = summaries.iter().filter_map(|s| s.retry).collect();
    assert_eq!(
        parked.len(),
        1,
        "exactly one worker was shed: {summaries:?}"
    );
    assert!(!parked[0].quarantined, "parked, not quarantined");
    assert_eq!(parked[0].after_grants, 2, "the declared park retry-after");
    assert_eq!(summaries.iter().filter(|s| s.completed).count(), 2);
}

/// The whole fault matrix at once, from a fixed seed layout: three
/// concurrent tenants; a flapping worker that earns quarantine (and a
/// refused re-registration); byzantine frames; dropped + duplicated
/// frames; a worker kill mid-campaign; and one tenant budget-starved.
/// Every tenant's result stays bit-identical to its single-process
/// reference — at one worker per tenant and at two.
#[test]
fn seeded_chaos_soak_preserves_every_tenants_result() {
    let (kernel, suite, consts) = deepchain_setup();
    let db = SpecCache::global().get_or_build(&suite);
    let lowered = SpecCache::global().get_or_lower(&db, &consts);
    let seeds = [1u64, 7, 0xDEAD_BEEF];
    let references: Vec<_> = seeds
        .iter()
        .enumerate()
        .map(|(i, &seed)| {
            let quota = if i == 1 { Some(1500) } else { None };
            reference_run(&kernel, &lowered, &cfg(seed), SHARDS, quota)
        })
        .collect();
    assert!(references[1].budget_exhausted);
    assert_eq!(references[1].boundaries, 2);
    assert!(
        references.iter().any(|r| !r.result.triage.is_empty()),
        "no crash triaged — the soak equivalence would be vacuous"
    );

    for workers in [1u32, 2] {
        let tenants: Vec<_> = seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| {
                let quota = if i == 1 {
                    TenantQuota::execs(1500)
                } else {
                    TenantQuota::unlimited()
                };
                (cfg(seed), workers, quota)
            })
            .collect();
        // Spawns 0..3: flapper 77 takes one lease per tenant and
        // abandons it — three strikes, quarantined. The next three
        // spawns carry the wire faults (the kill plan covers every
        // slot so the worker dies at boundary 2 wherever it is
        // seated). The comeback flap is gated on boundary progress:
        // by the time any boundary commits, every flap disconnect
        // has been polled and struck, so it is refused at any slot
        // count. Replacements beyond the script run clean.
        let kill_everywhere = (0..workers).fold(FaultPlan::none(), |plan, slot| {
            plan.with(Fault::WorkerKill {
                worker: slot,
                boundary: 2,
            })
        });
        let script = vec![
            Spawn::Flap(77),
            Spawn::Flap(77),
            Spawn::Flap(77),
            Spawn::Worker(FaultPlan::none().with(Fault::ByzantineFrames {
                from_nth: 1,
                count: 1,
            })),
            Spawn::Worker(
                FaultPlan::none()
                    .with(Fault::DropFrame { nth: 1 })
                    .with(Fault::DuplicateFrame { nth: 2 }),
            ),
            Spawn::Worker(kill_everywhere),
            Spawn::FlapAfterBoundary(77),
        ];
        let (results, stats, _summaries, flaps) = run_service(
            &kernel,
            &suite,
            &consts,
            &tenants,
            ServiceOpts {
                lease_timeout: Duration::from_secs(60),
                health: HealthOpts {
                    strike_limit: 3,
                    quarantine_grants: 64,
                    worker_cap: 0,
                    park_grants: 2,
                },
            },
            &script,
        );
        for (i, (reference, result)) in references.iter().zip(&results).enumerate() {
            assert_same(
                &reference.result,
                &result.result,
                &format!("soak x{workers} tenant {i}"),
            );
            assert_eq!(
                result.boundaries, reference.boundaries,
                "soak x{workers} tenant {i}"
            );
            assert_eq!(
                result.budget_exhausted, reference.budget_exhausted,
                "soak x{workers} tenant {i}"
            );
        }
        assert!(
            results[1].budget_exhausted,
            "soak x{workers}: the starved tenant must be cut at its boundary"
        );
        assert_eq!(flaps.len(), 4, "soak x{workers}");
        assert_eq!(
            flaps
                .iter()
                .filter(|f| matches!(f, FlapOutcome::Granted { .. }))
                .count(),
            3,
            "soak x{workers}: three leases taken and abandoned: {flaps:?}"
        );
        match flaps[3] {
            FlapOutcome::Refused(advice) => {
                assert!(advice.quarantined, "soak x{workers}");
                assert!(
                    advice.after_grants >= 1,
                    "soak x{workers}: cooldown must still be running"
                );
            }
            ref other => panic!("soak x{workers}: comeback must be refused, got {other:?}"),
        }
        assert_eq!(stats.quarantines, 1, "soak x{workers}");
        assert!(stats.quarantine_refusals >= 1, "soak x{workers}");
        assert_eq!(stats.grants_per_tenant.len(), 3);
        assert!(
            stats
                .grants_per_tenant
                .iter()
                .all(|&g| g >= u64::from(workers)),
            "soak x{workers}: every tenant must get at least its demand: {stats:?}"
        );
        let rejected: u64 = results.iter().map(|r| r.stats.rejected_frames).sum();
        assert!(
            rejected >= 1,
            "soak x{workers}: the byzantine frame must be checksum-rejected"
        );
        let expired: u64 = results.iter().map(|r| r.stats.expired_leases).sum();
        assert!(
            expired >= 4,
            "soak x{workers}: three flaps and one kill must all be revoked, got {expired}"
        );
    }
}
