//! Campaign durability properties: crash-safe checkpoint/resume,
//! deterministic fault injection, and the exec fuel watchdog.
//!
//! The central invariant (the reason checkpoints snapshot *boundary*
//! state and nothing else): **interrupting a campaign at any epoch
//! boundary and resuming it is bit-identical to the uninterrupted
//! run, at any thread count, under any injected fault plan.**

use kernelgpt::csrc::{deepchain, KernelCorpus};
use kernelgpt::fuzzer::{
    Campaign, CampaignConfig, CampaignResult, Fault, FaultPlan, ShardedCampaign,
};
use kernelgpt::syzlang::{ConstDb, SpecFile};
use kernelgpt::vkernel::VKernel;
use std::path::PathBuf;

fn deepchain_setup() -> (VKernel, Vec<SpecFile>, ConstDb) {
    let kc = KernelCorpus::from_blueprints(deepchain::suite());
    let suite: Vec<_> = kc
        .blueprints()
        .iter()
        .map(|bp| bp.ground_truth_spec())
        .collect();
    (
        VKernel::boot(deepchain::suite()),
        suite,
        kc.consts().clone(),
    )
}

fn cfg(seed: u64) -> CampaignConfig {
    CampaignConfig {
        execs: 3000,
        seed,
        max_prog_len: 10,
        hub_epoch: 125,
        hub_top_k: 4,
        ..CampaignConfig::default()
    }
}

/// Fresh per-test scratch path for a checkpoint file.
fn ckpt_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kgpt-durability-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(format!("{tag}.ckpt"))
}

fn assert_same(a: &CampaignResult, b: &CampaignResult, label: &str) {
    assert_eq!(a.coverage, b.coverage, "{label}: coverage");
    assert_eq!(a.crashes, b.crashes, "{label}: crashes");
    assert_eq!(a.corpus_size, b.corpus_size, "{label}: corpus_size");
    assert_eq!(a.triage, b.triage, "{label}: triage");
    assert_eq!(
        a.fuel_exhausted, b.fuel_exhausted,
        "{label}: fuel_exhausted"
    );
    assert_eq!(a.execs, b.execs, "{label}: execs");
}

/// Interrupt-at-a-boundary + resume is bit-identical to the
/// uninterrupted run at 1/2/4/8 worker threads across three seeds.
/// With `execs = 3000` over 8 shards and `hub_epoch = 125` each shard
/// runs 3 epochs, so checkpoints land at boundaries 1 and 2 — the run
/// is interrupted at both (alternating with thread count) to prove
/// resume works from *any* boundary, not just the first.
#[test]
fn interrupt_plus_resume_is_bit_identical_at_any_thread_count() {
    let (kernel, suite, consts) = deepchain_setup();
    for seed in [1u64, 7, 0xDEAD_BEEF] {
        let reference = ShardedCampaign::new(&kernel, &suite, &consts, cfg(seed))
            .with_shards(8)
            .run();
        assert!(
            !reference.triage.is_empty(),
            "seed {seed}: no crash triaged on the deep-chain suite"
        );
        for (i, threads) in [1usize, 2, 4, 8].into_iter().enumerate() {
            let halt_after = 1 + (i as u64 % 2);
            let path = ckpt_path(&format!("resume-{seed}-{threads}"));
            let partial = ShardedCampaign::new(&kernel, &suite, &consts, cfg(seed))
                .with_shards(8)
                .with_threads(threads)
                .with_checkpoint(&path)
                .with_halt_after(halt_after)
                .run();
            // The halt really interrupted the campaign mid-flight.
            assert!(
                partial.coverage != reference.coverage || partial.triage != reference.triage,
                "seed {seed} threads {threads}: halt_after={halt_after} did not interrupt"
            );
            let resumed = ShardedCampaign::new(&kernel, &suite, &consts, cfg(seed))
                .with_shards(8)
                .with_threads(threads)
                .resume(&path)
                .expect("resume");
            assert_same(
                &reference,
                &resumed,
                &format!("seed {seed} threads {threads} halt {halt_after}"),
            );
            let _ = std::fs::remove_file(&path);
        }
    }
}

/// Every fault kind — write failures (both recoverable and
/// boundary-skipping), torn writes, bitrot, mid-epoch shard aborts,
/// and a seed-derived composite plan — leaves the campaign result
/// bit-identical, and interrupt+resume still holds underneath it.
#[test]
fn resume_is_bit_identical_under_every_fault_plan() {
    let (kernel, suite, consts) = deepchain_setup();
    let seed = 7u64;
    let reference = ShardedCampaign::new(&kernel, &suite, &consts, cfg(seed))
        .with_shards(8)
        .run();
    let plans: Vec<(&str, FaultPlan)> = vec![
        (
            "write-fail-recoverable",
            FaultPlan::none().with(Fault::WriteFail {
                epoch: 0,
                attempts: 2,
            }),
        ),
        (
            // All attempts fail at boundary 0: that boundary is
            // skipped, the boundary-1 checkpoint is the first one
            // written, and the halt lands there instead.
            "write-fail-skips-boundary",
            FaultPlan::none().with(Fault::WriteFail {
                epoch: 0,
                attempts: 3,
            }),
        ),
        (
            // The boundary-1 snapshot is torn after install; resume
            // must fall back to the boundary-0 previous-good rotation.
            "torn-write-falls-back",
            FaultPlan::none().with(Fault::TruncateSnapshot { epoch: 1 }),
        ),
        (
            "bitrot-falls-back",
            FaultPlan::none().with(Fault::CorruptSnapshot { epoch: 1, byte: 97 }),
        ),
        (
            "shard-abort-requarantined",
            FaultPlan::none().with(Fault::ShardAbort { epoch: 1, shard: 3 }),
        ),
        (
            // All four fault kinds stacked on boundary 0 (write
            // retries, then damage on the installed snapshot, plus a
            // shard abort); boundary 1 stays clean so resume has a
            // good generation to land on. (Spreading damage faults
            // over *every* boundary before the halt is the one plan
            // that legitimately cannot be survived — there is no
            // intact generation left by construction.)
            "seeded-composite",
            FaultPlan::from_seed(0xC0FFEE, 1, 8),
        ),
    ];
    for (tag, plan) in plans {
        // The faulted run, uninterrupted, matches the clean reference.
        let path = ckpt_path(&format!("fault-{tag}-full"));
        let full = ShardedCampaign::new(&kernel, &suite, &consts, cfg(seed))
            .with_shards(8)
            .with_checkpoint(&path)
            .with_faults(plan.clone())
            .run();
        assert_same(&reference, &full, &format!("{tag}: faulted full run"));
        let _ = std::fs::remove_file(&path);

        // Interrupt at the *last* checkpoint the plan lets through,
        // then resume: still bit-identical.
        let path = ckpt_path(&format!("fault-{tag}-halt"));
        let halt_after = if plan
            .faults()
            .iter()
            .any(|f| matches!(f, Fault::WriteFail { attempts: 3, .. }))
        {
            1 // boundary 0 is skipped; the 1st successful write is at boundary 1
        } else {
            2
        };
        let _partial = ShardedCampaign::new(&kernel, &suite, &consts, cfg(seed))
            .with_shards(8)
            .with_checkpoint(&path)
            .with_faults(plan)
            .with_halt_after(halt_after)
            .run();
        let resumed = ShardedCampaign::new(&kernel, &suite, &consts, cfg(seed))
            .with_shards(8)
            .resume(&path)
            .unwrap_or_else(|e| panic!("{tag}: resume under faults: {e}"));
        assert_same(&reference, &resumed, &format!("{tag}: resumed run"));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(path.with_extension("ckpt.prev"));
    }
}

/// A one-shard checkpoint written by [`ShardedCampaign`] resumes
/// through [`Campaign::resume`] — the sequential front-end — and the
/// result is bit-identical to the uninterrupted one-shard run. (The
/// reference is the one-shard *sharded* run: with the hub on, triage
/// drains at epoch boundaries, so first-seen epochs legitimately
/// differ from the single-drain `Campaign::run` loop.)
#[test]
fn sequential_campaign_resumes_a_one_shard_checkpoint() {
    let (kernel, suite, consts) = deepchain_setup();
    let config = CampaignConfig {
        execs: 1000,
        seed: 3,
        max_prog_len: 10,
        hub_epoch: 250,
        hub_top_k: 4,
        ..CampaignConfig::default()
    };
    let reference = ShardedCampaign::new(&kernel, &suite, &consts, config.clone())
        .with_shards(1)
        .run();
    let path = ckpt_path("sequential-resume");
    let _partial = ShardedCampaign::new(&kernel, &suite, &consts, config.clone())
        .with_shards(1)
        .with_checkpoint(&path)
        .with_halt_after(1)
        .run();
    let resumed = Campaign::new(&kernel, &suite, &consts, config)
        .resume(&path)
        .expect("sequential resume");
    assert_same(&reference, &resumed, "sequential resume");
    let _ = std::fs::remove_file(&path);
}

/// Resume refuses snapshots from a different campaign identity: a
/// changed config (fingerprint mismatch) and a changed spec suite are
/// both named errors, not silent divergence.
#[test]
fn resume_rejects_mismatched_config_and_spec() {
    let (kernel, suite, consts) = deepchain_setup();
    let path = ckpt_path("mismatch");
    let _ = ShardedCampaign::new(&kernel, &suite, &consts, cfg(1))
        .with_shards(8)
        .with_checkpoint(&path)
        .with_halt_after(1)
        .run();

    let other_cfg = CampaignConfig { seed: 2, ..cfg(1) };
    let err = ShardedCampaign::new(&kernel, &suite, &consts, other_cfg)
        .with_shards(8)
        .resume(&path)
        .expect_err("config mismatch must be rejected");
    assert!(err.to_string().contains("config"), "got: {err}");

    let err = ShardedCampaign::new(&kernel, &suite[..1], &consts, cfg(1))
        .with_shards(8)
        .resume(&path)
        .expect_err("spec mismatch must be rejected");
    assert!(err.to_string().contains("spec"), "got: {err}");

    let err = ShardedCampaign::new(&kernel, &suite, &consts, cfg(1))
        .with_shards(8)
        .resume(&path.with_extension("missing"))
        .expect_err("missing snapshot must be rejected");
    assert!(err.to_string().contains("read"), "got: {err}");

    let _ = std::fs::remove_file(&path);
}

/// The exec fuel watchdog: a starved budget terminates programs
/// gracefully (counted in `fuel_exhausted`, never a crash or a hang),
/// the count is a pure function of the config, and thread count stays
/// a pure throughput knob even with the watchdog tripping constantly.
#[test]
fn fuel_exhaustion_is_deterministic_and_never_corrupts_the_merge() {
    let (kernel, suite, consts) = deepchain_setup();
    let starved = CampaignConfig {
        exec_fuel: 48,
        ..cfg(5)
    };
    let run = |threads: usize| {
        ShardedCampaign::new(&kernel, &suite, &consts, starved.clone())
            .with_shards(8)
            .with_threads(threads)
            .run()
    };
    let base = run(1);
    assert!(
        base.fuel_exhausted > 0,
        "a 48-unit budget must starve some programs"
    );
    for threads in [2usize, 4, 8] {
        let r = run(threads);
        assert_same(&base, &r, &format!("starved run, threads {threads}"));
    }
    // An unlimited budget never trips the watchdog.
    let unlimited = ShardedCampaign::new(
        &kernel,
        &suite,
        &consts,
        CampaignConfig {
            exec_fuel: 0,
            ..cfg(5)
        },
    )
    .with_shards(8)
    .run();
    assert_eq!(unlimited.fuel_exhausted, 0);
}
